#!/usr/bin/env python
"""Watch individual instructions move through the pipeline.

Runs the dependence-free copy loop twice — under no speculation and
under oracle disambiguation — capturing a window of committed
instructions with a :class:`TimelineRecorder`. In the NAS/NO view each
load sits in the LSQ (``-`` marks) until every older store has issued;
under the oracle the same loads go straight to memory.

Run::

    python examples/pipeline_view.py
"""

from repro.config import (
    continuous_window_128,
    SchedulingModel,
    SpeculationPolicy,
)
from repro.core import Processor, TimelineRecorder
from repro.workloads import kernel_trace


def main() -> None:
    trace = kernel_trace("memcopy", words=400)
    # Capture a slice from the middle of the run (steady state).
    start_seq = len(trace) // 2

    for policy in (SpeculationPolicy.NO, SpeculationPolicy.ORACLE):
        recorder = TimelineRecorder(start_seq=start_seq, limit=21)
        config = continuous_window_128(SchedulingModel.NAS, policy)
        result = Processor(config, trace, timeline=recorder).run()
        print(f"=== {config.label}  (IPC {result.ipc:.2f}, "
              f"mean residency {recorder.mean_latency():.1f} cycles) ===")
        print(recorder.render(max_width=72))
        print()

    print(
        "Marks: D dispatch, I issue, - waiting in the LSQ, M memory "
        "access, = executing, C complete, R retire."
    )


if __name__ == "__main__":
    main()
