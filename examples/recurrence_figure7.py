#!/usr/bin/env python
"""The paper's Figure 7 story, executed.

The loop ``a[i] = a[i-1] + k`` carries a memory dependence from each
iteration's store to the next iteration's load. This script runs it on:

1. a *centralized, continuous-window* machine with a 0-cycle
   address-based scheduler and naive speculation (AS/NAV), and
2. a *distributed, split-window* machine with the same scheduler,

and shows exactly what Section 3.7 argues: the continuous window's
program-order fetch means the store's address is always posted before
the dependent load asks, so nothing miss-speculates — while the split
window fetches iterations concurrently on different units, the load
races ahead, and squashes follow.

Run::

    python examples/recurrence_figure7.py
"""

from repro.config import (
    continuous_window_128,
    split_window,
    SchedulingModel,
    SpeculationPolicy,
)
from repro.core import simulate
from repro.splitwindow import simulate_split
from repro.workloads import kernel_trace


def main() -> None:
    trace = kernel_trace("recurrence", n=1024)
    print(f"recurrence loop: {len(trace):,} dynamic instructions, "
          "one true dependence per iteration\n")

    cont = simulate(
        continuous_window_128(
            SchedulingModel.AS, SpeculationPolicy.NAIVE
        ),
        trace,
    )
    split = simulate_split(
        split_window(
            SchedulingModel.AS, SpeculationPolicy.NAIVE,
            num_units=4, task_size=32,
        ),
        trace,
    )

    print("continuous window (AS/NAV, 0-cycle scheduler):")
    print(f"  IPC              {cont.ipc:.2f}")
    print(f"  miss-speculations {cont.misspeculations}")
    print(f"  squashed instrs   {cont.squashed_instructions}")

    print("\nsplit window, 4 units (AS/NAV, 0-cycle scheduler):")
    print(f"  IPC              {split.ipc:.2f}")
    print(f"  miss-speculations {split.misspeculations} "
          f"({split.misspeculation_rate:.1%} of loads)")
    print(f"  squashed instrs   {split.squashed_instructions}")

    print(
        "\nSame trace, same 0-cycle address scheduler — only the window "
        "organisation differs.\nThe split window cannot inspect store "
        "addresses its other units have not fetched yet."
    )


if __name__ == "__main__":
    main()
