#!/usr/bin/env python
"""Write your own workload in assembly and run it through the machine.

The library ships a small MIPS-like assembler and functional VM; any
program you write produces a trace the timing simulator accepts. This
example builds a producer/consumer ring buffer — a workload whose
dependences are real but *predictable per PC* — and shows the MDPT
(speculation/synchronization) learning them.

Run::

    python examples/custom_workload.py
"""

from repro.config import (
    continuous_window_128,
    SchedulingModel,
    SpeculationPolicy,
)
from repro.core import simulate
from repro.vm import run_program

RING_BUFFER = """
    li   r1, 0x1000       # ring base
    li   r2, 0            # producer index
    li   r3, 0            # iteration
    li   r4, 512          # iterations
    li   r5, 15           # ring mask (16 slots)
    li   r9, 0            # checksum
loop:
    and  r6, r3, r5       # slot = i & 15
    slli r6, r6, 2
    add  r7, r1, r6       # &ring[slot]
    mul  r8, r3, r3       # produce a value (multi-cycle: late data)
    sw   r8, 0(r7)        # producer store
    lw   r10, 0(r7)       # consumer load  <- same slot, same iteration
    add  r9, r9, r10      # consume
    addi r3, r3, 1
    blt  r3, r4, loop
    halt
"""


def main() -> None:
    trace = run_program(RING_BUFFER, name="ring_buffer")
    print(f"assembled and executed: {len(trace):,} dynamic instructions")

    for policy in (
        SpeculationPolicy.NO,
        SpeculationPolicy.NAIVE,
        SpeculationPolicy.SYNC,
        SpeculationPolicy.ORACLE,
    ):
        config = continuous_window_128(SchedulingModel.NAS, policy)
        result = simulate(config, trace)
        print(
            f"  {config.label:11s} IPC={result.ipc:5.2f} "
            f"miss-spec={result.misspeculation_rate:7.4%} "
            f"forwards={result.load_forwards}"
        )

    print(
        "\nNAS/NAV squashes on the producer->consumer pair every "
        "iteration;\nNAS/SYNC miss-speculates once, allocates an MDPT "
        "synonym for the\n(store PC, load PC) pair, and synchronizes "
        "from then on."
    )


if __name__ == "__main__":
    main()
