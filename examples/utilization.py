#!/usr/bin/env python
"""Machine utilisation under different speculation policies.

Samples per-cycle window occupancy, issue bandwidth and memory-port
usage while the same workload runs under NAS/NO and NAS/ORACLE, then
prints both utilisation reports. The contrast explains *where* the
performance goes under no speculation: the window fills with loads
blocked behind stores, and issue bandwidth sits idle.

Run::

    python examples/utilization.py [benchmark]
"""

import argparse

from repro.config import (
    continuous_window_128,
    SchedulingModel,
    SpeculationPolicy,
)
from repro.core import Processor, Telemetry
from repro.trace.dependences import compute_dependence_info
from repro.trace.sampling import SamplingPlan, Segment
from repro.workloads import get_trace


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("benchmark", nargs="?", default="101.tomcatv")
    parser.add_argument("--length", type=int, default=22_000)
    args = parser.parse_args()

    trace = get_trace(args.benchmark, args.length)
    dep_info = compute_dependence_info(trace)
    warm = min(8_000, len(trace) // 3)
    plan = SamplingPlan(
        (Segment(0, warm, timing=False),
         Segment(warm, len(trace), timing=True)),
        len(trace),
    )

    for policy in (SpeculationPolicy.NO, SpeculationPolicy.ORACLE):
        telemetry = Telemetry()
        config = continuous_window_128(SchedulingModel.NAS, policy)
        result = Processor(
            config, trace, dep_info, telemetry=telemetry
        ).run(plan)
        print(f"=== {config.label}  (IPC {result.ipc:.2f}) ===")
        print(telemetry.render(
            issue_width=config.window.issue_width,
            ports=config.window.memory_ports,
        ))
        print()


if __name__ == "__main__":
    main()
