#!/usr/bin/env python
"""Compare every memory dependence speculation policy on one workload.

This is the paper's whole design space on a single benchmark: the two
scheduling models (with/without an address-based scheduler) crossed
with the speculation policies of Section 2.1. Pick the workload and
trace length from the command line::

    python examples/policy_comparison.py 129.compress
    python examples/policy_comparison.py recurrence --length 4000
"""

import argparse

from repro.config import (
    continuous_window_128,
    SchedulingModel,
    SpeculationPolicy,
)
from repro.core import Processor
from repro.stats.format import render_table
from repro.trace.dependences import compute_dependence_info
from repro.trace.sampling import SamplingPlan, Segment
from repro.workloads import get_trace

CONFIGS = (
    (SchedulingModel.NAS, SpeculationPolicy.NO),
    (SchedulingModel.NAS, SpeculationPolicy.NAIVE),
    (SchedulingModel.NAS, SpeculationPolicy.SELECTIVE),
    (SchedulingModel.NAS, SpeculationPolicy.STORE_BARRIER),
    (SchedulingModel.NAS, SpeculationPolicy.SYNC),
    (SchedulingModel.NAS, SpeculationPolicy.ORACLE),
    (SchedulingModel.AS, SpeculationPolicy.NO),
    (SchedulingModel.AS, SpeculationPolicy.NAIVE),
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("workload", nargs="?", default="129.compress")
    parser.add_argument("--length", type=int, default=26_000)
    parser.add_argument("--warmup", type=int, default=10_000)
    args = parser.parse_args()

    trace = get_trace(args.workload, args.length)
    dep_info = compute_dependence_info(trace)
    warmup = min(args.warmup, max(0, len(trace) - 1000))
    segments = []
    if warmup:
        segments.append(Segment(0, warmup, timing=False))
    segments.append(Segment(warmup, len(trace), timing=True))
    plan = SamplingPlan(tuple(segments), len(trace))

    rows = []
    baseline_ipc = None
    for scheduling, policy in CONFIGS:
        config = continuous_window_128(scheduling, policy)
        result = Processor(config, trace, dep_info).run(plan)
        if baseline_ipc is None:
            baseline_ipc = result.ipc
        rows.append((
            config.label,
            f"{result.ipc:.3f}",
            f"{result.ipc / baseline_ipc - 1:+.1%}",
            f"{result.misspeculation_rate:.4%}",
            f"{result.load_forwards}",
            f"{result.squashed_instructions}",
        ))

    print(f"workload: {trace.name} ({len(trace):,} instructions, "
          f"{warmup:,} warm-up)")
    print(render_table(
        ("config", "IPC", "vs NAS/NO", "miss-spec", "forwards",
         "squashed"),
        rows,
    ))


if __name__ == "__main__":
    main()
