#!/usr/bin/env python
"""Inspect a workload before simulating it.

Prints a full trace profile (instruction mix, dependence-distance
histogram, working sets) and an ASCII chart of how every speculation
policy performs on it — the "know your workload first" workflow.

Run::

    python examples/workload_report.py 147.vortex
    python examples/workload_report.py histogram
"""

import argparse

from repro.config import (
    continuous_window_128,
    SchedulingModel,
    SpeculationPolicy,
)
from repro.core import Processor
from repro.stats.bars import render_bars
from repro.trace.analysis import profile_trace
from repro.trace.dependences import compute_dependence_info
from repro.trace.sampling import SamplingPlan, Segment
from repro.workloads import get_trace


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("workload", nargs="?", default="147.vortex")
    parser.add_argument("--length", type=int, default=24_000)
    args = parser.parse_args()

    trace = get_trace(args.workload, args.length)
    print(profile_trace(trace).render())

    dep_info = compute_dependence_info(trace)
    warm = min(9_000, len(trace) // 3)
    plan = SamplingPlan(
        (Segment(0, warm, timing=False),
         Segment(warm, len(trace), timing=True)),
        len(trace),
    )

    ipcs = {}
    for policy in (
        SpeculationPolicy.NO,
        SpeculationPolicy.NAIVE,
        SpeculationPolicy.SELECTIVE,
        SpeculationPolicy.STORE_BARRIER,
        SpeculationPolicy.SYNC,
        SpeculationPolicy.STORE_SETS,
        SpeculationPolicy.ORACLE,
    ):
        config = continuous_window_128(SchedulingModel.NAS, policy)
        ipcs[config.label] = Processor(config, trace, dep_info).run(
            plan
        ).ipc

    print("\nIPC by speculation policy (128-entry continuous window):")
    print(render_bars(ipcs, unit=" IPC"))


if __name__ == "__main__":
    main()
