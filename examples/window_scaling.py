#!/usr/bin/env python
"""Window-size scaling: how the value of load/store parallelism grows.

Figure 1 of the paper compares 64- and 128-entry windows; this example
extends the sweep (32..256 entries) and reports the NAS/ORACLE-over-
NAS/NO speedup at each size — the paper's observation is that the
speedup *grows* with the window, because false dependences accumulate
with every additional in-flight store.

Run::

    python examples/window_scaling.py [benchmark]
"""

import argparse
from dataclasses import replace

from repro.config import (
    continuous_window_128,
    SchedulingModel,
    SpeculationPolicy,
)
from repro.config.processor import WindowConfig
from repro.core import Processor
from repro.stats.format import render_table
from repro.trace.dependences import compute_dependence_info
from repro.trace.sampling import SamplingPlan, Segment
from repro.workloads import get_trace


def _window(size: int) -> WindowConfig:
    """Scale issue resources with the window, as the paper's 64-entry
    machine does (half the window -> half the width/ports/units)."""
    scale = max(1, size // 32)
    return WindowConfig(
        size=size,
        issue_width=min(8, 2 * scale),
        lsq_size=size,
        lsq_input_ports=min(4, scale),
        lsq_output_ports=min(4, scale),
        memory_ports=min(4, scale),
        fu_copies=min(8, 2 * scale),
        store_buffer_size=size,
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("benchmark", nargs="?", default="101.tomcatv")
    parser.add_argument("--length", type=int, default=22_000)
    args = parser.parse_args()

    trace = get_trace(args.benchmark, args.length)
    dep_info = compute_dependence_info(trace)
    warm = min(8_000, len(trace) // 3)
    plan = SamplingPlan(
        (Segment(0, warm, timing=False),
         Segment(warm, len(trace), timing=True)),
        len(trace),
    )

    rows = []
    for size in (32, 64, 128, 256):
        ipcs = {}
        for policy in (SpeculationPolicy.NO, SpeculationPolicy.ORACLE):
            config = replace(
                continuous_window_128(SchedulingModel.NAS, policy),
                window=_window(size),
            )
            ipcs[policy] = Processor(config, trace, dep_info).run(plan).ipc
        speedup = ipcs[SpeculationPolicy.ORACLE] / ipcs[
            SpeculationPolicy.NO
        ]
        rows.append((
            size,
            f"{ipcs[SpeculationPolicy.NO]:.2f}",
            f"{ipcs[SpeculationPolicy.ORACLE]:.2f}",
            f"{speedup - 1:+.1%}",
        ))

    print(f"benchmark: {trace.name}")
    print(render_table(
        ("window", "NAS/NO IPC", "NAS/ORACLE IPC", "oracle speedup"),
        rows,
    ))


if __name__ == "__main__":
    main()
