#!/usr/bin/env python
"""Quickstart: simulate one workload on two machines and compare.

Builds the paper's default 128-entry continuous-window processor
(Table 2), runs the ``102.swim`` SPEC'95 stand-in under no speculation
(NAS/NO) and under speculation/synchronization (NAS/SYNC), and prints
the headline numbers.

Run::

    python examples/quickstart.py
"""

from repro.config import (
    continuous_window_128,
    SchedulingModel,
    SpeculationPolicy,
)
from repro.core import Processor
from repro.trace.dependences import compute_dependence_info
from repro.trace.sampling import SamplingPlan, Segment
from repro.workloads import get_trace


def main() -> None:
    # 1. A deterministic workload trace (10k warm-up + 16k timed).
    trace = get_trace("102.swim", 26_000)
    dep_info = compute_dependence_info(trace)
    plan = SamplingPlan(
        (Segment(0, 10_000, timing=False),
         Segment(10_000, 26_000, timing=True)),
        len(trace),
    )

    # 2. Two machines: identical except for the speculation policy.
    configs = {
        "NAS/NO  (no speculation)": continuous_window_128(
            SchedulingModel.NAS, SpeculationPolicy.NO
        ),
        "NAS/SYNC (spec/sync)    ": continuous_window_128(
            SchedulingModel.NAS, SpeculationPolicy.SYNC
        ),
    }

    # 3. Simulate and report.
    results = {}
    for label, config in configs.items():
        result = Processor(config, trace, dep_info).run(plan)
        results[label] = result
        print(
            f"{label}  IPC={result.ipc:5.2f}  "
            f"cycles={result.cycles:6d}  "
            f"miss-spec={result.misspeculation_rate:7.4%}  "
            f"D$ miss={result.dcache_miss_rate:6.2%}"
        )

    base, sync = results.values()
    print(
        f"\nspeculation/synchronization speedup over no speculation: "
        f"{sync.ipc / base.ipc - 1:+.1%}"
    )


if __name__ == "__main__":
    main()
