"""Wires the I-cache, D-cache, unified L2, and main memory together.

The L2 of Table 2 has an "8 cycle + #4-word-transfer * 1 cycle" hit time;
we fold the transfer term into the hit latency for the 32-byte L1 block
(32 bytes = 2 four-word bursts = 2 extra cycles).
"""

from __future__ import annotations

from repro.config.processor import ProcessorConfig
from repro.memory.cache import SetAssocCache
from repro.memory.main_memory import MainMemory


class MemoryHierarchy:
    """Instruction and data paths through the cache hierarchy."""

    def __init__(self, config: ProcessorConfig) -> None:
        self.config = config
        self.main_memory = MainMemory(
            config.main_memory, block_bytes=config.l2.block_bytes
        )
        self.l2 = SetAssocCache(config.l2, self.main_memory.access)
        self.dcache = SetAssocCache(config.dcache, self._l2_access)
        self.icache = SetAssocCache(config.icache, self._l2_access)
        # L1 block transfer out of L2: 1 cycle per 4-word burst.
        l1_words = config.dcache.block_bytes // 4
        self._l2_transfer = (l1_words + 3) // 4

    def _l2_access(self, addr: int, cycle: int, write: bool) -> int:
        result = self.l2.access(addr, cycle, write)
        return result.complete_cycle + self._l2_transfer

    # -- public access points ------------------------------------------------

    def load(self, addr: int, cycle: int) -> int:
        """Completion cycle of a data load issued at *cycle*."""
        return self.dcache.access(addr, cycle, write=False).complete_cycle

    def store(self, addr: int, cycle: int) -> int:
        """Completion cycle of a data store issued at *cycle*."""
        return self.dcache.access(addr, cycle, write=True).complete_cycle

    def fetch(self, addr: int, cycle: int) -> int:
        """Completion cycle of an instruction fetch issued at *cycle*."""
        return self.icache.access(addr, cycle, write=False).complete_cycle

    def warm(self, addresses, instructions=()) -> None:
        """Pre-touch *addresses* (data) and *instructions* (code).

        Used by the sampling machinery: during functional-only intervals
        the caches keep being exercised so that timing intervals start
        warm, mirroring the paper's methodology ("during the functional
        portion ... I-cache, D-cache and branch prediction" are
        simulated). Blocks install immediately, with no timing effects.
        """
        for addr in addresses:
            self.dcache.touch(addr)
            self.l2.touch(addr)
        for addr in instructions:
            self.icache.touch(addr)
            self.l2.touch(addr)
