"""Banked, lockup-free, set-associative cache with LRU replacement.

Timing model: an access first arbitrates for its bank (each bank services
one new access per cycle), then probes the tags. Hits complete after the
configured hit latency. Misses either merge into a pending fill (secondary
miss, via the MSHRs) or allocate a primary MSHR and request the block from
the next level; the access completes when the fill returns.
"""

from __future__ import annotations

from typing import Callable, List

from repro.config.processor import CacheConfig
from repro.memory.mshr import MSHRFile

#: Signature of the next level's access function:
#: (block_address, start_cycle, is_write) -> completion cycle.
NextLevel = Callable[[int, int, bool], int]


class AccessResult:
    """Outcome of one cache access.

    A plain slotted class rather than a frozen dataclass: one is built
    per access and ``object.__setattr__`` (the frozen-init path) is
    measurable there.
    """

    __slots__ = ("complete_cycle", "hit")

    def __init__(self, complete_cycle: int, hit: bool) -> None:
        self.complete_cycle = complete_cycle
        self.hit = hit

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"AccessResult(complete_cycle={self.complete_cycle}, "
            f"hit={self.hit})"
        )


class SetAssocCache:
    """One cache level. Use :meth:`access` for all traffic."""

    def __init__(self, config: CacheConfig, next_level: NextLevel) -> None:
        self.config = config
        self._next_level = next_level
        self._block_shift = config.block_bytes.bit_length() - 1
        self._bank_mask = config.banks - 1
        if config.banks & self._bank_mask:
            raise ValueError("bank count must be a power of two")
        self._set_mask = config.sets_per_bank - 1
        self._set_shift = self._bank_mask.bit_length()
        # Hot-path copies of immutable config values.
        self._hit_latency = config.hit_latency
        self._fill_delta = config.miss_latency - config.hit_latency
        self._assoc = config.assoc
        # tags[bank][set] = list of block tags in LRU order (front = MRU).
        self._tags: List[List[List[int]]] = [
            [[] for _ in range(config.sets_per_bank)]
            for _ in range(config.banks)
        ]
        self._mshrs = MSHRFile(
            config.banks,
            config.mshr_primary_per_bank,
            config.mshr_secondary_per_primary,
        )
        # Bank is busy with a new access until this cycle (1 new/cycle).
        self._bank_free: List[int] = [0] * config.banks
        self.hits = 0
        self.misses = 0
        self.bank_conflicts = 0

    # -- geometry ---------------------------------------------------------

    def block_address(self, addr: int) -> int:
        return addr >> self._block_shift

    def _bank_of(self, block: int) -> int:
        return block & self._bank_mask

    def _set_of(self, block: int) -> int:
        return (block >> (self._bank_mask.bit_length())) & self._set_mask

    # -- access -----------------------------------------------------------

    def access(self, addr: int, cycle: int, write: bool = False) -> AccessResult:
        """Access *addr* starting no earlier than *cycle*.

        Returns the completion cycle (data available / write accepted) and
        whether the access hit. The tag array is updated (allocate-on-miss
        for both reads and writes; LRU).
        """
        block = addr >> self._block_shift
        bank = block & self._bank_mask

        start = cycle
        bank_free = self._bank_free
        if bank_free[bank] > start:
            self.bank_conflicts += 1
            start = bank_free[bank]
        bank_free[bank] = start + 1

        ways = self._tags[bank][(block >> self._set_shift) & self._set_mask]
        tag = block
        mshr_bank = self._mshrs.bank(bank)
        # MRU fast path first: locality makes ``ways[0]`` the common
        # case, and it needs neither the membership scan nor a reorder.
        if ways and ways[0] == tag:
            hit = True
        elif tag in ways:
            ways.insert(0, ways.pop(ways.index(tag)))
            hit = True
        else:
            hit = False
        if hit:
            # The tag is installed when the fill is *requested*; if
            # the fill is still in flight this access merges into it
            # (a secondary miss) rather than hitting instantly. Most
            # hits find an idle MSHR bank — skip the merge lookup then.
            if mshr_bank._entries:
                pending = mshr_bank.lookup(tag, start)
                if pending is not None:
                    self.misses += 1
                    return AccessResult(max(pending, start + 1), False)
            self.hits += 1
            return AccessResult(start + self._hit_latency, True)

        self.misses += 1

        # Primary miss: request from the next level.
        fill_done = self._next_level(
            block << self._block_shift, start + self._hit_latency, write
        )
        fill_done += self._fill_delta
        ready = mshr_bank.allocate(tag, fill_done, start)
        # Install without the membership re-scan: the miss path has
        # just proven the tag absent, and ``_next_level`` cannot
        # re-enter this level's tag array.
        ways.insert(0, tag)
        if len(ways) > self._assoc:
            ways.pop()
        return AccessResult(max(ready, start + 1), False)

    def _install(self, ways: List[int], tag: int) -> None:
        if tag in ways:
            return
        ways.insert(0, tag)
        if len(ways) > self._assoc:
            ways.pop()

    def touch(self, addr: int) -> None:
        """Install the block holding *addr* with no timing side effects.

        Used by functional warm-up: the block becomes resident
        immediately, without occupying a bank slot or an MSHR.
        """
        block = addr >> self._block_shift
        ways = self._tags[block & self._bank_mask][
            (block >> self._set_shift) & self._set_mask
        ]
        if ways and ways[0] == block:
            return
        self._install(ways, block)

    # -- introspection ------------------------------------------------------

    def contains(self, addr: int) -> bool:
        """True if the block holding *addr* is resident (tests only)."""
        block = self.block_address(addr)
        ways = self._tags[self._bank_of(block)][self._set_of(block)]
        return block in ways

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    @property
    def mshr_stalls(self) -> int:
        return self._mshrs.stalls

    @property
    def mshr_merges(self) -> int:
        return self._mshrs.merged

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0
        self.bank_conflicts = 0
