"""Miss-status holding registers (MSHRs) for lockup-free caches.

Table 2 gives per-cache limits on primary misses per bank and secondary
misses per primary (e.g. the data cache allows "8 primary miss per bank, 8
secondary misses per primary"). A *primary* miss allocates an MSHR and
starts a fill; a *secondary* miss to the same block merges into the
existing MSHR and completes when the fill returns. When every MSHR in a
bank is busy, further misses stall until one retires.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple


class MSHRBank:
    """MSHRs of a single cache bank."""

    __slots__ = ("_primary_limit", "_secondary_limit", "_entries",
                 "_next_expire", "merged", "stalls")

    def __init__(self, primary_limit: int, secondary_limit: int) -> None:
        if primary_limit < 1:
            raise ValueError("need at least one primary MSHR")
        if secondary_limit < 0:
            raise ValueError("secondary limit must be non-negative")
        self._primary_limit = primary_limit
        self._secondary_limit = secondary_limit
        # block address -> (fill ready cycle, merged secondary count)
        self._entries: Dict[int, Tuple[int, int]] = {}
        # Earliest outstanding fill-ready cycle; meaningful only while
        # ``_entries`` is non-empty. Lets ``_expire`` answer the common
        # "nothing retires yet" case without walking the dict.
        self._next_expire = 0
        self.merged = 0
        self.stalls = 0

    def _expire(self, cycle: int) -> None:
        """Retire entries whose fill has completed by *cycle*."""
        entries = self._entries
        if not entries or cycle < self._next_expire:
            return
        done = [b for b, (ready, _) in entries.items() if ready <= cycle]
        for block in done:
            del entries[block]
        if entries:
            self._next_expire = min(
                ready for ready, _ in entries.values()
            )

    def lookup(self, block: int, cycle: int) -> Optional[int]:
        """If *block* has a pending fill, merge and return its ready cycle.

        Returns None if there is no pending fill (or the secondary-merge
        limit is already reached, in which case the caller must treat the
        access as needing a stall-and-retry: we model that by returning
        the ready cycle anyway but counting a stall).
        """
        self._expire(cycle)
        entry = self._entries.get(block)
        if entry is None:
            return None
        ready, merged = entry
        if merged < self._secondary_limit:
            self._entries[block] = (ready, merged + 1)
            self.merged += 1
            return ready
        # Secondary limit hit: access must wait for the fill to retire
        # and then re-issue; approximate as completing one cycle later.
        self.stalls += 1
        return ready + 1

    def allocate(self, block: int, ready_cycle: int, cycle: int) -> int:
        """Allocate a primary MSHR for *block*.

        Returns the cycle at which the fill completes. If the bank is out
        of primary MSHRs the allocation is delayed until the earliest
        outstanding fill retires (a structural stall).
        """
        self._expire(cycle)
        delay = 0
        if len(self._entries) >= self._primary_limit:
            earliest = min(ready for ready, _ in self._entries.values())
            delay = max(0, earliest - cycle)
            self.stalls += 1
            self._expire(earliest)
            # If still full (several fills end at the same cycle expire
            # together), _expire above freed them all.
        ready = ready_cycle + delay
        if not self._entries or ready < self._next_expire:
            self._next_expire = ready
        self._entries[block] = (ready, 0)
        return ready

    def outstanding(self, cycle: int) -> int:
        """Number of fills in flight at *cycle*."""
        self._expire(cycle)
        return len(self._entries)


class MSHRFile:
    """Per-bank MSHR banks for one cache."""

    def __init__(
        self, banks: int, primary_per_bank: int, secondary_per_primary: int
    ) -> None:
        self._banks: List[MSHRBank] = [
            MSHRBank(primary_per_bank, secondary_per_primary)
            for _ in range(banks)
        ]

    def bank(self, index: int) -> MSHRBank:
        return self._banks[index]

    @property
    def merged(self) -> int:
        return sum(b.merged for b in self._banks)

    @property
    def stalls(self) -> int:
        return sum(b.stalls for b in self._banks)
