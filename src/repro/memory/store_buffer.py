"""Store buffer with load forwarding (Table 2).

"128-entry. Does not combine store requests to L1 data cache. Combines
store requests for load forwarding."

Committed and issued-but-not-yet-written stores live here. Loads search
the buffer youngest-older-than-me first; a full overlap forwards the
value, a partial overlap forces the load to wait for the store to drain
(the classic partial-forwarding replay case, modelled as a wait).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import List, Optional, Tuple


@dataclass
class StoreBufferEntry:
    """One buffered store."""

    seq: int
    addr: int
    size: int
    value: Optional[int]
    #: Cycle at which the store's data is available for forwarding.
    data_ready_cycle: int
    #: Cycle at which the store has drained to the data cache.
    drain_cycle: Optional[int] = None


class StoreBuffer:
    """Bounded buffer of stores awaiting write-back, with forwarding."""

    def __init__(self, capacity: int = 128) -> None:
        if capacity < 1:
            raise ValueError("store buffer needs at least one entry")
        self.capacity = capacity
        self._entries: List[StoreBufferEntry] = []
        self.forwards = 0
        self.partial_overlaps = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    def insert(self, entry: StoreBufferEntry) -> None:
        """Insert a store, keeping entries sorted by program order.

        Stores *execute* out of order, so insertion is by binary search
        on the sequence number rather than append.
        """
        if self.full:
            raise RuntimeError("store buffer overflow")
        index = bisect.bisect_left(
            [e.seq for e in self._entries], entry.seq
        )
        if (
            index < len(self._entries)
            and self._entries[index].seq == entry.seq
        ):
            raise ValueError(f"duplicate store seq {entry.seq}")
        self._entries.insert(index, entry)

    def search(
        self, seq: int, addr: int, size: int
    ) -> Tuple[Optional[StoreBufferEntry], bool]:
        """Find the youngest older store overlapping [addr, addr+size).

        Returns ``(entry, full_overlap)``. ``entry`` is None when no older
        buffered store overlaps. ``full_overlap`` is True when the store
        covers every byte of the load (so its value can be forwarded).
        """
        for entry in reversed(self._entries):
            if entry.seq >= seq:
                continue
            if entry.addr < addr + size and addr < entry.addr + entry.size:
                full = entry.addr <= addr and (
                    entry.addr + entry.size >= addr + size
                )
                if full:
                    self.forwards += 1
                else:
                    self.partial_overlaps += 1
                return entry, full
        return None, False

    def drain_older_than(self, seq: int) -> None:
        """Remove entries older than *seq* that have drained (commit)."""
        self._entries = [
            e
            for e in self._entries
            if e.seq >= seq or e.drain_cycle is None
        ]

    def remove(self, seq: int) -> None:
        """Remove the entry with sequence number *seq*, if present."""
        self._entries = [e for e in self._entries if e.seq != seq]

    def squash_younger(self, seq: int) -> None:
        """Drop all stores with sequence number >= *seq* (mis-speculation)."""
        self._entries = [e for e in self._entries if e.seq < seq]

    def entries(self) -> Tuple[StoreBufferEntry, ...]:
        """Snapshot of buffered stores in program order."""
        return tuple(self._entries)

    def clear(self) -> None:
        self._entries.clear()
