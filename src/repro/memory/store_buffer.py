"""Store buffer with load forwarding (Table 2).

"128-entry. Does not combine store requests to L1 data cache. Combines
store requests for load forwarding."

Committed and issued-but-not-yet-written stores live here. Loads search
the buffer youngest-older-than-me first; a full overlap forwards the
value, a partial overlap forces the load to wait for the store to drain
(the classic partial-forwarding replay case, modelled as a wait).
"""

from __future__ import annotations

import bisect
from typing import List, Optional, Tuple


class StoreBufferEntry:
    """One buffered store.

    A plain slotted class rather than a dataclass: one entry is built
    per executed store, and the dataclass ``__init__`` plus the
    per-instance dict are measurable on that path (``slots=True`` would
    do, but the py3.9 leg predates it).

    ``data_ready_cycle`` is when the store's data is available for
    forwarding; ``drain_cycle`` is when it has drained to the data
    cache (None while still buffered).
    """

    __slots__ = (
        "seq", "addr", "size", "value", "data_ready_cycle", "drain_cycle",
    )

    def __init__(
        self,
        seq: int,
        addr: int,
        size: int,
        value: Optional[int],
        data_ready_cycle: int,
        drain_cycle: Optional[int] = None,
    ) -> None:
        self.seq = seq
        self.addr = addr
        self.size = size
        self.value = value
        self.data_ready_cycle = data_ready_cycle
        self.drain_cycle = drain_cycle

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"StoreBufferEntry(seq={self.seq}, addr={self.addr}, "
            f"size={self.size}, value={self.value}, "
            f"data_ready_cycle={self.data_ready_cycle}, "
            f"drain_cycle={self.drain_cycle})"
        )


class StoreBuffer:
    """Bounded buffer of stores awaiting write-back, with forwarding."""

    def __init__(self, capacity: int = 128, observer=None) -> None:
        if capacity < 1:
            raise ValueError("store buffer needs at least one entry")
        self.capacity = capacity
        #: Optional observability bus (repro.observe): occupancy
        #: high-water and forward/partial counters.
        self.observer = observer
        self._entries: List[StoreBufferEntry] = []
        #: Parallel seq list so insert/search bisect instead of building
        #: a key list (insert) or scanning younger entries (search).
        self._seqs: List[int] = []
        #: Count of buffered stores covering each 8-byte block. Most
        #: load searches find no overlapping store at all; this filter
        #: answers those without scanning the buffer (block-granular, so
        #: a hit only means "scan to be sure").
        self._blocks: dict = {}
        self.forwards = 0
        self.partial_overlaps = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    def insert(self, entry: StoreBufferEntry) -> None:
        """Insert a store, keeping entries sorted by program order.

        Stores *execute* out of order, so insertion is by binary search
        on the sequence number rather than append.
        """
        if self.full:
            raise RuntimeError("store buffer overflow")
        seqs = self._seqs
        index = bisect.bisect_left(seqs, entry.seq)
        if index < len(seqs) and seqs[index] == entry.seq:
            raise ValueError(f"duplicate store seq {entry.seq}")
        self._entries.insert(index, entry)
        seqs.insert(index, entry.seq)
        if self.observer is not None:
            self.observer.note_depth(
                "store-buffer", len(self._entries)
            )
        blocks = self._blocks
        for block in range(
            entry.addr >> 3, ((entry.addr + entry.size - 1) >> 3) + 1
        ):
            blocks[block] = blocks.get(block, 0) + 1

    def _uncover(self, entry: StoreBufferEntry) -> None:
        blocks = self._blocks
        for block in range(
            entry.addr >> 3, ((entry.addr + entry.size - 1) >> 3) + 1
        ):
            count = blocks[block] - 1
            if count:
                blocks[block] = count
            else:
                del blocks[block]

    def search(
        self, seq: int, addr: int, size: int
    ) -> Tuple[Optional[StoreBufferEntry], bool]:
        """Find the youngest older store overlapping [addr, addr+size).

        Returns ``(entry, full_overlap)``. ``entry`` is None when no older
        buffered store overlaps. ``full_overlap`` is True when the store
        covers every byte of the load (so its value can be forwarded).
        """
        blocks = self._blocks
        end = addr + size
        for block in range(addr >> 3, ((end - 1) >> 3) + 1):
            if block in blocks:
                break
        else:
            return None, False
        entries = self._entries
        # Entries are seq-sorted: everything before this index is older,
        # so the youngest-first scan starts there (younger stores are
        # never even touched).
        for index in range(bisect.bisect_left(self._seqs, seq) - 1, -1, -1):
            entry = entries[index]
            entry_addr = entry.addr
            if entry_addr < end and addr < entry_addr + entry.size:
                full = entry_addr <= addr and (
                    entry_addr + entry.size >= end
                )
                if full:
                    self.forwards += 1
                    if self.observer is not None:
                        self.observer.note("store-buffer.forward")
                else:
                    self.partial_overlaps += 1
                    if self.observer is not None:
                        self.observer.note("store-buffer.partial")
                return entry, full
        return None, False

    def drain_older_than(self, seq: int) -> None:
        """Remove entries older than *seq* that have drained (commit)."""
        kept = [
            e
            for e in self._entries
            if e.seq >= seq or e.drain_cycle is None
        ]
        if len(kept) != len(self._entries):
            for entry in self._entries:
                if entry.seq < seq and entry.drain_cycle is not None:
                    self._uncover(entry)
            self._entries = kept
            self._seqs = [e.seq for e in kept]

    def evict_oldest_before(self, seq: int) -> bool:
        """Drop the oldest buffered store if it is older than *seq*.

        Entries are seq-sorted, so the head is the only candidate. The
        processor uses this to free a slot when the buffer is full:
        only stores already retired past the window head may be evicted.
        """
        if self._entries and self._seqs[0] < seq:
            self._uncover(self._entries[0])
            del self._entries[0]
            del self._seqs[0]
            return True
        return False

    def remove(self, seq: int) -> None:
        """Remove the entry with sequence number *seq*, if present."""
        seqs = self._seqs
        index = bisect.bisect_left(seqs, seq)
        if index < len(seqs) and seqs[index] == seq:
            self._uncover(self._entries[index])
            del self._entries[index]
            del seqs[index]

    def squash_younger(self, seq: int) -> None:
        """Drop all stores with sequence number >= *seq* (mis-speculation)."""
        cut = bisect.bisect_left(self._seqs, seq)
        for entry in self._entries[cut:]:
            self._uncover(entry)
        del self._entries[cut:]
        del self._seqs[cut:]

    def entries(self) -> Tuple[StoreBufferEntry, ...]:
        """Snapshot of buffered stores in program order."""
        return tuple(self._entries)

    def clear(self) -> None:
        self._entries.clear()
        self._seqs.clear()
        self._blocks.clear()
