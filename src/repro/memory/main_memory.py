"""Infinite main memory (Table 2): 34 cycles + 2 cycles per 4-word burst."""

from __future__ import annotations

from repro.config.processor import MainMemoryConfig


class MainMemory:
    """Flat main memory with fixed access plus transfer time."""

    def __init__(
        self, config: MainMemoryConfig, block_bytes: int = 128
    ) -> None:
        self.config = config
        self.block_bytes = block_bytes
        self.accesses = 0

    def transfer_cycles(self, bytes_moved: int) -> int:
        """Burst-transfer time for *bytes_moved* bytes."""
        words = (bytes_moved + 3) // 4
        bursts = (words + self.config.transfer_words - 1) // (
            self.config.transfer_words
        )
        return bursts * self.config.cycles_per_transfer

    def access(self, addr: int, cycle: int, write: bool = False) -> int:
        """Completion cycle for a block access starting at *cycle*."""
        del addr, write  # flat memory: uniform latency
        self.accesses += 1
        return cycle + self.config.base_latency + self.transfer_cycles(
            self.block_bytes
        )
