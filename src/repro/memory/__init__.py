"""Memory hierarchy (Table 2): banked lockup-free caches, store buffer."""

from repro.memory.mshr import MSHRBank, MSHRFile
from repro.memory.cache import SetAssocCache, AccessResult
from repro.memory.main_memory import MainMemory
from repro.memory.hierarchy import MemoryHierarchy
from repro.memory.store_buffer import StoreBuffer, StoreBufferEntry

__all__ = [
    "MSHRBank",
    "MSHRFile",
    "SetAssocCache",
    "AccessResult",
    "MainMemory",
    "MemoryHierarchy",
    "StoreBuffer",
    "StoreBufferEntry",
]
