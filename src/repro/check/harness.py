"""Run a simulation with every checker attached, plus the self-test.

:func:`check_run` is the one entry point used by the CLI, the tests
and the fuzzer's deep mode: it wires a
:class:`~repro.check.differential.DifferentialChecker`, an
:class:`~repro.check.invariants.InvariantChecker` and (optionally) a
:class:`~repro.observe.stalls.StallAccountant` onto one observer bus,
runs the processor, then applies post-run cross-checks that need the
aggregate :class:`~repro.core.result.SimResult`:

* committed instructions must equal the plan's timed instructions, and
  the committed load/store/branch mix must equal the timed trace
  regions' composition;
* NO and ORACLE must report zero miss-speculations and zero squashed
  instructions (the paper's Section 2.1/3.4.1 definitions);
* zero miss-speculations must imply zero squashed instructions;
* the stall accountant's conservation law (``commit_slots +
  stall_slots == width x cycles``, ``commit_slots == committed``,
  ``cycles == result.cycles``) when stall accounting is attached.

:func:`selftest` proves the whole subsystem works by seeding every
registered fault (:mod:`repro.check.faults`) into its scenario and
asserting the named check catches it — and that the same scenario is
violation-free without the fault.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.config.processor import ProcessorConfig, SpeculationPolicy
from repro.core.processor import Processor
from repro.core.result import SimResult
from repro.observe.bus import ObserverBus
from repro.check.differential import DifferentialChecker
from repro.check.faults import FAULTS, fault_names
from repro.check.invariants import InvariantChecker
from repro.check.report import CheckError, CheckReport
from repro.check.reference import independent_trace
from repro.trace.events import Trace
from repro.trace.sampling import SamplingPlan, make_sampling_plan

_NO_MISSPECULATION = (SpeculationPolicy.NO, SpeculationPolicy.ORACLE)


@dataclass
class CheckOutcome:
    """A checked simulation: its result (if it finished) and report."""

    report: CheckReport
    result: Optional[SimResult] = None
    #: Non-checker exception text if the simulator itself crashed.
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.report.ok and self.error is None


def check_run(
    config: ProcessorConfig,
    trace: Trace,
    plan: Optional[SamplingPlan] = None,
    dep_info=None,
    reference_trace: Optional[Trace] = None,
    stride: int = 1,
    fault: Optional[str] = None,
    fail_fast: bool = False,
    stalls: bool = False,
) -> CheckOutcome:
    """Simulate *trace* under *config* with all checkers attached."""
    report = CheckReport(fail_fast=fail_fast)
    sinks = []
    if fault is not None:
        sinks.append(FAULTS[fault].sink())  # patch before checkers bind
    differential = DifferentialChecker(
        trace, report, reference_trace=reference_trace
    )
    invariants = InvariantChecker(trace, report, stride=stride)
    sinks += [differential, invariants]
    if stalls:
        from repro.observe.stalls import StallAccountant

        sinks.append(StallAccountant(config))
    if plan is None:
        plan = make_sampling_plan(len(trace))
    processor = Processor(
        config, trace, dep_info, observer=ObserverBus(sinks)
    )
    result: Optional[SimResult] = None
    error: Optional[str] = None
    try:
        result = processor.run(plan)
    except CheckError:
        pass  # already recorded in the (fail-fast) report
    except Exception as exc:  # noqa: BLE001 - a crash IS a detection
        error = f"{type(exc).__name__}: {exc}"
        fail = report.fail_fast
        report.fail_fast = False
        report.add(
            "simulator-crash", "harness",
            f"simulation aborted with {error}",
        )
        report.fail_fast = fail
    if result is not None:
        # Post-run checks never fail-fast: the run is over, so collect
        # everything they have to say.
        fail = report.fail_fast
        report.fail_fast = False
        differential.finalize()
        _post_checks(result, plan, trace, config, report, stalls)
        report.fail_fast = fail
    return CheckOutcome(report=report, result=result, error=error)


def _post_checks(
    result: SimResult,
    plan: SamplingPlan,
    trace: Trace,
    config: ProcessorConfig,
    report: CheckReport,
    stalls: bool,
) -> None:
    timed = expected_loads = expected_stores = expected_branches = 0
    for segment in plan.segments:
        if not segment.timing:
            continue
        timed += len(segment)
        for inst in trace.slice(segment.start, segment.stop):
            if inst.is_load:
                expected_loads += 1
            elif inst.is_store:
                expected_stores += 1
            elif inst.is_branch:
                expected_branches += 1

    if result.committed != timed:
        report.add(
            "commit-count", "harness",
            f"result reports {result.committed} committed "
            f"instructions but the plan timed {timed}",
        )
    for name, got, want in (
        ("loads", result.committed_loads, expected_loads),
        ("stores", result.committed_stores, expected_stores),
        ("branches", result.committed_branches, expected_branches),
    ):
        if got != want:
            report.add(
                "commit-mix", "harness",
                f"result reports {got} committed {name} but the timed "
                f"trace regions contain {want}",
            )

    policy = config.memdep.policy
    if policy in _NO_MISSPECULATION and (
        result.misspeculations or result.squashed_instructions
    ):
        report.add(
            "policy-misspeculation", "harness",
            f"policy {policy.value} reports "
            f"{result.misspeculations} miss-speculations and "
            f"{result.squashed_instructions} squashed instructions; "
            f"both must be zero",
        )
    if not result.misspeculations and result.squashed_instructions:
        report.add(
            "squash-without-misspeculation", "harness",
            f"{result.squashed_instructions} instructions squashed "
            f"with zero miss-speculations recorded",
        )

    if stalls:
        summary = result.extra.get("observe", {}).get("stalls")
        if summary is None:
            report.add(
                "stall-conservation", "harness",
                "stall accounting requested but no summary attached",
            )
        else:
            conserved = (
                summary["commit_slots"] + summary["stall_slots"]
                == summary["slots"]
            )
            if not conserved:
                report.add(
                    "stall-conservation", "harness",
                    f"commit_slots {summary['commit_slots']} + "
                    f"stall_slots {summary['stall_slots']} != slots "
                    f"{summary['slots']}",
                )
            if summary["commit_slots"] != result.committed:
                report.add(
                    "stall-conservation", "harness",
                    f"stall accountant saw {summary['commit_slots']} "
                    f"commits; the result reports {result.committed}",
                )
            if summary["cycles"] != result.cycles:
                report.add(
                    "stall-conservation", "harness",
                    f"stall accountant saw {summary['cycles']} cycles; "
                    f"the result reports {result.cycles}",
                )


def check_benchmark(
    name: str,
    config: ProcessorConfig,
    settings=None,
    reference: bool = True,
    stride: int = 1,
    fault: Optional[str] = None,
    fail_fast: bool = False,
    stalls: bool = False,
) -> CheckOutcome:
    """Checked run of a catalog benchmark under *settings*."""
    from repro.experiments.runner import (
        DEFAULT_SETTINGS,
        _dependences_for_length,
        _plan_for,
    )
    from repro.workloads.catalog import get_trace

    if settings is None:
        settings = DEFAULT_SETTINGS
    plan = _plan_for(name, settings)
    request_length = plan.length
    trace = get_trace(name, request_length, settings.seed)
    if len(trace) != plan.length:
        # Kernels run to natural completion, so the trace may be
        # shorter than requested; rebuild the plan over what exists.
        from repro.trace.sampling import Segment

        warm = min(settings.warmup_instructions, max(len(trace) - 1, 0))
        segments = (
            [Segment(0, warm, timing=False)] if warm else []
        ) + [Segment(warm, len(trace), timing=True)]
        plan = SamplingPlan(tuple(segments), len(trace))
    dep_info = _dependences_for_length(
        name, len(trace), settings.seed, trace=trace
    )
    reference_trace = (
        independent_trace(name, request_length, settings.seed)
        if reference else None
    )
    return check_run(
        config,
        trace,
        plan=plan,
        dep_info=dep_info,
        reference_trace=reference_trace,
        stride=stride,
        fault=fault,
        fail_fast=fail_fast,
        stalls=stalls,
    )


def selftest() -> dict:
    """Seed every registered fault; assert each is caught.

    Returns a JSON-serialisable record per fault: whether the clean
    scenario is violation-free and whether the seeded bug was detected
    by one of the checks the fault declares.
    """
    faults = {}
    ok = True
    for name in fault_names():
        fault = FAULTS[name]
        config, trace = fault.scenario()
        clean = check_run(config, trace)
        faulted = check_run(config, trace, fault=name, fail_fast=True)
        caught_by = sorted(
            check for check in faulted.report.counts
            if check in fault.expect_checks
        )
        entry = {
            "description": fault.description,
            "clean_ok": clean.ok,
            "clean_violations": clean.report.total,
            "expected_checks": list(fault.expect_checks),
            "caught": bool(caught_by),
            "caught_by": caught_by,
            "all_checks_hit": faulted.report.checks_hit(),
        }
        if not clean.ok:
            entry["clean_report"] = clean.report.to_dict()
        faults[name] = entry
        ok = ok and clean.ok and bool(caught_by)
    return {"ok": ok, "faults": faults}
