"""Commit-stream differential checker.

A ``wants_raw`` observer sink that replays every committed instruction
against functional references and reports any architectural
divergence:

* **commit order** — committed seqs must walk each timing segment
  contiguously from the segment's start (duplicates, skips and
  out-of-order commits all diverge from the functional program order);
* **trace identity** — the committed :class:`DynInst` must be the
  trace's instruction for that seq, and (when an independently
  regenerated reference trace is supplied) must match it field by
  field — pc, operands, effective address, value, branch outcome;
* **shadow memory** — committed stores are applied to a word-granular
  shadow image and every committed load's value is checked against it;
* **forwarded values** — a load that forwarded from the store buffer
  must name an older committed store that fully covers its access and
  carries the same value;
* **stale loads** — a load that read memory before its producing store
  wrote (and was neither forwarded from that store, silently-equal,
  nor corrected afterwards) means a squash/replay was skipped;
* **PC continuity** — within a segment, each committed pc must follow
  from its predecessor (branch target, else pc+4). Enabled only when
  a prescan proves the trace itself has the property, so hand-built
  discontinuous traces don't false-positive;
* **lifecycle sanity** — a committed entry must actually be done
  (write/complete cycle at or before the commit cycle, issue after
  dispatch).

The checker recomputes its own dependence map with
:func:`repro.trace.dependences.compute_dependence_info` rather than
trusting the one handed to the processor, so a corrupted dependence
analysis cannot vouch for itself.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.observe.bus import RawObserverSink
from repro.check.reference import ShadowMemory, diff_instructions
from repro.check.report import CheckReport, StoreRecord
from repro.trace.dependences import compute_dependence_info
from repro.trace.events import Trace


def _trace_is_pc_continuous(trace: Trace) -> bool:
    """Does every instruction follow its predecessor's control flow?"""
    instructions = trace.instructions
    for index in range(1, len(instructions)):
        prev = instructions[index - 1]
        expect = prev.target if prev.is_branch else prev.pc + 4
        if expect is None or instructions[index].pc != expect:
            return False
    return True


class DifferentialChecker(RawObserverSink):
    """Replays the commit stream against the functional reference."""

    wants_cycles = True  # for on_segment (segment boundaries)
    summary_key = "differential"

    def __init__(
        self,
        trace: Trace,
        report: CheckReport,
        reference_trace: Optional[Trace] = None,
    ) -> None:
        self.trace = trace
        self.report = report
        self.reference = reference_trace
        if reference_trace is not None and (
            len(reference_trace) != len(trace)
        ):
            report.add(
                "reference-length", "differential",
                f"trace has {len(trace)} instructions but the "
                f"regenerated reference has {len(reference_trace)}",
            )
            self.reference = None
        self._info = compute_dependence_info(trace)
        self._shadow = ShadowMemory()
        self._stores: Dict[int, StoreRecord] = {}
        self._check_pc = _trace_is_pc_continuous(trace)
        self._expect: Optional[int] = None
        self._seg_stop: Optional[int] = None
        self._prev_inst = None
        self._as_mode = False
        self.commits_checked = 0

    # -- segment boundaries ------------------------------------------------

    def on_segment(self, processor) -> None:
        self._as_mode = processor.as_mode
        cursor = processor.cursor
        if self._seg_stop is not None and self._expect != self._seg_stop:
            self.report.add(
                "segment-commit-count", "differential",
                f"previous timing segment committed up to seq "
                f"{self._expect} but its boundary was {self._seg_stop}",
            )
        self._expect = cursor.position
        self._seg_stop = cursor.stop
        self._prev_inst = None

    def on_cycle(self, processor) -> None:
        pass

    def on_squash(self, resume_cycle: int) -> None:
        pass

    def finalize(self) -> None:
        """Close out the last timing segment (call after ``run()``)."""
        if self._seg_stop is not None and self._expect != self._seg_stop:
            self.report.add(
                "segment-commit-count", "differential",
                f"final timing segment committed up to seq "
                f"{self._expect} but its boundary was {self._seg_stop}",
            )
        self._seg_stop = None

    # -- the commit stream -------------------------------------------------

    def raw_commit(self, entry, cycle: int) -> None:
        report = self.report
        self.commits_checked += 1
        seq = entry.seq
        inst = entry.inst

        # Commit order: contiguous program order within the segment.
        if self._expect is None:
            report.add(
                "commit-order", "differential",
                f"commit of seq {seq} outside any timing segment",
                cycle=cycle, seq=seq,
            )
        elif seq != self._expect:
            report.add(
                "commit-order", "differential",
                f"committed seq {seq} but program order expects "
                f"{self._expect}",
                cycle=cycle, seq=seq,
            )
        # Resync so one slip does not cascade into thousands of reports.
        self._expect = seq + 1

        # Trace identity + reference-trace field comparison.
        if 0 <= seq < len(self.trace):
            if inst is not self.trace.instructions[seq]:
                report.add(
                    "trace-identity", "differential",
                    f"committed entry for seq {seq} does not carry the "
                    f"trace's instruction object",
                    cycle=cycle, seq=seq,
                )
            if self.reference is not None:
                ref = self.reference.instructions[seq]
                for field, got, want in diff_instructions(inst, ref):
                    report.add(
                        "reference-divergence", "differential",
                        f"seq {seq} field {field!r}: simulated trace has "
                        f"{got!r}, functional reference has {want!r}",
                        cycle=cycle, seq=seq,
                    )
        else:
            report.add(
                "commit-order", "differential",
                f"committed seq {seq} is outside the trace "
                f"(0..{len(self.trace) - 1})",
                cycle=cycle, seq=seq,
            )

        # Lifecycle sanity: the entry must actually be finished.
        done = entry.write_cycle if entry.is_store else entry.complete_cycle
        if done is None or done > cycle:
            report.add(
                "commit-unfinished", "differential",
                f"seq {seq} committed at cycle {cycle} but its done "
                f"cycle is {done}",
                cycle=cycle, seq=seq,
            )
        if entry.issue_cycle is not None and (
            entry.issue_cycle < entry.dispatch_cycle
        ):
            report.add(
                "lifecycle-order", "differential",
                f"seq {seq} issued at {entry.issue_cycle} before its "
                f"dispatch at {entry.dispatch_cycle}",
                cycle=cycle, seq=seq,
            )

        # PC continuity inside the segment.
        prev = self._prev_inst
        if self._check_pc and prev is not None:
            expect_pc = prev.target if prev.is_branch else prev.pc + 4
            if inst.pc != expect_pc:
                report.add(
                    "pc-continuity", "differential",
                    f"seq {seq} committed pc {inst.pc:#x} but control "
                    f"flow from seq {prev.seq} leads to {expect_pc:#x}",
                    cycle=cycle, seq=seq,
                )
        self._prev_inst = inst

        if entry.is_store:
            self._commit_store(entry, inst, cycle)
        elif entry.is_load:
            self._commit_load(entry, inst, cycle)

    # -- stores ------------------------------------------------------------

    def _commit_store(self, entry, inst, cycle: int) -> None:
        self._shadow.store(inst.addr, inst.size, inst.value)
        self._stores[entry.seq] = StoreRecord(
            seq=entry.seq,
            addr=inst.addr,
            size=inst.size,
            value=inst.value,
            write_cycle=entry.write_cycle,
            commit_cycle=cycle,
        )

    # -- loads -------------------------------------------------------------

    def _commit_load(self, entry, inst, cycle: int) -> None:
        report = self.report
        seq = entry.seq

        # Shadow-memory value check.
        expected = self._shadow.load(inst.addr, inst.size, inst.value)
        if expected is not None and inst.value is not None and (
            expected != inst.value
        ):
            report.add(
                "shadow-memory", "differential",
                f"load seq {seq} at addr {inst.addr:#x} carries value "
                f"{inst.value} but the committed store stream left "
                f"{expected}",
                cycle=cycle, seq=seq,
            )

        # Forwarded-value check.
        fwd = entry.forwarded_from
        if fwd is not None:
            rec = self._stores.get(fwd)
            if rec is None:
                report.add(
                    "forward-source", "differential",
                    f"load seq {seq} forwarded from store {fwd} which "
                    f"never committed",
                    cycle=cycle, seq=seq,
                )
            else:
                if fwd >= seq:
                    report.add(
                        "forward-source", "differential",
                        f"load seq {seq} forwarded from younger store "
                        f"{fwd}",
                        cycle=cycle, seq=seq,
                    )
                covers = (
                    rec.addr <= inst.addr
                    and inst.addr + inst.size <= rec.addr + rec.size
                )
                if not covers:
                    report.add(
                        "forward-coverage", "differential",
                        f"load seq {seq} [{inst.addr:#x}+{inst.size}] "
                        f"forwarded from store {fwd} "
                        f"[{rec.addr:#x}+{rec.size}] which does not "
                        f"cover it",
                        cycle=cycle, seq=seq,
                    )
                elif rec.value is not None and inst.value is not None and (
                    rec.value != inst.value
                ):
                    report.add(
                        "forward-value", "differential",
                        f"load seq {seq} expects value {inst.value} but "
                        f"forwarded store {fwd} wrote {rec.value}",
                        cycle=cycle, seq=seq,
                    )

        # Stale-load check: a premature read that escaped recovery.
        # The committed entry is the *final* execution of that seq, so
        # under NAS any commit still carrying a pre-write read (and not
        # forwarded from the producer) means the squash/replay that
        # should have re-executed it was skipped. Under AS, hardware
        # may legitimately keep a premature read when no consumer saw
        # the stale value (silent re-forward) or when a silent store
        # made the stale value correct — so the checker replays the
        # paper's propagation condition over the load's consumers.
        info = self._info.get(seq)
        if info is None:
            return
        rec = self._stores.get(info.store_seq)
        if rec is None or rec.write_cycle is None:
            return  # Producer outside the simulated timing segments.
        mem_issue = entry.mem_issue_cycle
        if mem_issue is None or mem_issue >= rec.write_cycle:
            return  # Read at/after the producer's write: never stale.
        if fwd == info.store_seq:
            return  # Forwarded the correct value from the producer.
        if self._as_mode:
            if info.stale_equal:
                return  # Silent store: stale value was correct anyway.
            propagated = any(
                not waiter.squashed
                and waiter.issue_cycle is not None
                and waiter.issue_cycle <= rec.write_cycle
                for waiter, _ in entry.consumers + entry.waiters
            )
            if not propagated:
                return  # Silent re-forward: no consumer saw the value.
        report.add(
            "stale-load", "differential",
            f"load seq {seq} read at cycle {mem_issue}, before its "
            f"producing store {info.store_seq} wrote at "
            f"{rec.write_cycle}, and was never squashed, replayed or "
            f"forwarded (miss-speculation escaped recovery)",
            cycle=cycle, seq=seq,
        )

    # -- summary -----------------------------------------------------------

    def summary(self) -> dict:
        return {
            "commits_checked": self.commits_checked,
            "shadow_checked_loads": self._shadow.checked_loads,
            "shadow_adopted_words": self._shadow.adopted,
            "reference_attached": self.reference is not None,
            "pc_check_enabled": self._check_pc,
            "violations": self.report.counts.copy(),
        }
