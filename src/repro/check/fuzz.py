"""Metamorphic design-space fuzzer.

Samples random (workload, window, scheduling, policy-family, latency,
run-length) cells, runs every policy of the family on the *same* cell,
and asserts the paper's cross-policy relations:

* **R1 commit-equality** (exact) — speculation policy changes timing,
  never the committed instruction stream: ``committed``,
  ``committed_loads``, ``committed_stores`` and ``committed_branches``
  must be identical across all policies of a cell;
* **R2 non-speculative cleanliness** (exact) — NO and ORACLE never
  miss-speculate: zero miss-speculations and zero squashed
  instructions (Section 2.1 / 3.4.1);
* **R3 oracle dominance** (toleranced) — ORACLE's IPC is an upper
  bound for every real policy. Second-order timing effects (e.g. a
  squash that prefetches) let a policy land a fraction of a percent
  above ORACLE on tiny traces, so the relation is asserted within a
  small ``tolerance`` (default 2%; the worst legitimate excursion
  observed across the calibrated design space is 0.42%);
* **R4 squash accounting** (exact) — zero miss-speculations implies
  zero squashed instructions, for every policy;
* **R5 AS/NAV miss-speculation rate** (threshold) — with address
  scheduling, naive speculation's miss-speculation rate is "virtually
  non-existent" (Section 3.3): bounded by ``nav_rate_threshold``
  (default 1% of committed loads; observed < 0.5%).
* **R6 split-window loophole** (Section 3.7 / Figure 7) — sampled
  split-window cells (``split_units > 0``, AS/NAV only) assert that
  (a) the split machine's miss-speculation rate is no lower than the
  continuous machine's at the same design point (within
  ``nav_rate_threshold`` slack — the continuous AS/NAV rate is itself
  bounded by R5), and (b) miss-speculations are non-decreasing in
  scheduler latency across the latency pool, within
  :data:`SPLIT_MONO_TOLERANCE` (squash feedback on short traces lets
  counts dip a few percent between adjacent latencies; the worst
  legitimate excursion observed across the calibrated design space is
  17.4%). The committed instruction stream must stay latency-invariant
  exactly (R1's argument applied to a timing-only knob). Cells with
  ``split_bandwidth > 0`` run on the event-driven backend
  (:mod:`repro.eventsim`), so corpus replay also exercises that engine.

A failing cell is minimised by halving its run lengths while the
failure persists, and can be saved as a JSON corpus entry; the
checked-in regression corpus under ``tests/corpus/`` is replayed by CI
and the test suite (see docs/TESTING.md for the reproduction flow).
"""

from __future__ import annotations

import json
import random
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.config.presets import (
    continuous_window_64,
    continuous_window_128,
    split_window,
)
from repro.config.processor import (
    ProcessorConfig,
    SchedulingModel,
    SpeculationPolicy,
)

#: Policy families per scheduling model (config validation only admits
#: the predictor policies under NAS).
NAS_POLICIES = ("NO", "NAV", "SEL", "STORE", "SYNC", "ORACLE", "SSET")
AS_POLICIES = ("NO", "NAV", "ORACLE")

#: Default sampling pools. SPEC'95 stand-ins only: they are generated
#: to the exact requested length for any seed, which kernels are not.
DEFAULT_BENCHMARKS = (
    "099.go", "126.gcc", "129.compress", "130.li", "132.ijpeg",
    "102.swim", "104.hydro2d", "107.mgrid", "110.applu", "141.apsi",
)
_TIMING_POOL = (1_500, 2_500, 4_000)
_WARMUP_POOL = (500, 1_000, 2_000)
_WINDOW_POOL = (64, 128)
_LATENCY_POOL = (0, 1, 2)
_SPLIT_UNITS_POOL = (2, 4, 8)
_SPLIT_TASK_POOL = (16, 32)
_SPLIT_BANDWIDTH_POOL = (0, 0, 2, 4)  # mostly degenerate fabric

#: R6b slack: miss-speculation counts may dip between adjacent
#: scheduler latencies because a squash reshuffles all downstream
#: timing. Calibrated over benchmarks x seeds x unit geometries x run
#: lengths: 27/120 cells show a dip, worst 17.4% (099.go, 1.5k timed
#: instructions). Anything beyond 25% is a real monotonicity bug.
SPLIT_MONO_TOLERANCE = 0.25


@dataclass(frozen=True)
class FuzzCell:
    """One sampled design-space point (everything but the policy).

    ``split_units > 0`` marks a split-window cell (AS/NAV only, R6):
    the window is partitioned into that many sub-windows running
    ``split_task``-instruction tasks, with the sync fabric limited to
    ``split_bandwidth`` messages per cycle (0 = unbounded; a bounded
    fabric is modelled by the event-driven backend). Split fields are
    optional in serialized form, so version-1 corpora load unchanged.
    """

    benchmark: str
    seed: int
    window: int
    scheduling: str  # "NAS" | "AS"
    latency: int
    timing: int
    warmup: int
    split_units: int = 0
    split_task: int = 0
    split_bandwidth: int = 0

    def policies(self) -> Sequence[str]:
        if self.split_units:
            return ("NAV",)
        return AS_POLICIES if self.scheduling == "AS" else NAS_POLICIES

    def config(
        self, policy: str, latency: Optional[int] = None
    ) -> ProcessorConfig:
        if latency is None:
            latency = self.latency
        if self.split_units:
            return split_window(
                SchedulingModel(self.scheduling),
                SpeculationPolicy(policy),
                addr_scheduler_latency=latency,
                num_units=self.split_units,
                task_size=self.split_task,
                sync_bandwidth=self.split_bandwidth,
            )
        preset = (
            continuous_window_128 if self.window == 128
            else continuous_window_64
        )
        return preset(
            SchedulingModel(self.scheduling),
            SpeculationPolicy(policy),
            addr_scheduler_latency=latency,
        )

    def to_dict(self) -> dict:
        data = asdict(self)
        if not self.split_units:
            for key in ("split_units", "split_task", "split_bandwidth"):
                del data[key]
        return data

    @staticmethod
    def from_dict(data: dict) -> "FuzzCell":
        return FuzzCell(
            benchmark=data["benchmark"],
            seed=int(data["seed"]),
            window=int(data["window"]),
            scheduling=data["scheduling"],
            latency=int(data["latency"]),
            timing=int(data["timing"]),
            warmup=int(data["warmup"]),
            split_units=int(data.get("split_units", 0)),
            split_task=int(data.get("split_task", 0)),
            split_bandwidth=int(data.get("split_bandwidth", 0)),
        )


@dataclass
class FuzzResult:
    """Outcome of one fuzzing session."""

    cells_run: int = 0
    failures: List[dict] = field(default_factory=list)
    #: Minimised reproducers (same order as ``failures``' cells).
    minimized: List[dict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "cells_run": self.cells_run,
            "failures": self.failures,
            "minimized": self.minimized,
        }


def sample_cell(
    rng: random.Random,
    benchmarks: Sequence[str] = DEFAULT_BENCHMARKS,
) -> FuzzCell:
    """Draw one design-space point from the sampling pools.

    About a quarter of AS draws become split-window cells (R6); the
    paper's split-window argument is specific to the address-based
    scheduler, so NAS cells are never split.
    """
    scheduling = rng.choice(("NAS", "AS"))
    split = scheduling == "AS" and rng.randrange(4) == 0
    return FuzzCell(
        benchmark=rng.choice(benchmarks),
        seed=rng.randrange(6),
        window=rng.choice(_WINDOW_POOL),
        scheduling=scheduling,
        latency=rng.choice(_LATENCY_POOL) if scheduling == "AS" else 0,
        timing=rng.choice(_TIMING_POOL),
        warmup=rng.choice(_WARMUP_POOL),
        split_units=rng.choice(_SPLIT_UNITS_POOL) if split else 0,
        split_task=rng.choice(_SPLIT_TASK_POOL) if split else 0,
        split_bandwidth=rng.choice(_SPLIT_BANDWIDTH_POOL) if split else 0,
    )


def _run_split_cell(
    cell: FuzzCell,
    nav_rate_threshold: float,
) -> List[dict]:
    """R6 relations for one split-window cell (see module docstring)."""
    from repro.experiments.runner import ExperimentSettings, run_benchmark

    settings = ExperimentSettings(
        timing_instructions=cell.timing,
        warmup_instructions=cell.warmup,
        seed=cell.seed,
    )
    failures: List[dict] = []

    def fail(relation: str, detail: str) -> None:
        failures.append(
            {"relation": relation, "cell": cell.to_dict(), "detail": detail}
        )

    # NAS has no address scheduler, hence no latency axis to sweep.
    latency_pool = _LATENCY_POOL if cell.scheduling == "AS" else (0,)
    by_latency = {
        latency: run_benchmark(
            cell.benchmark, cell.config("NAV", latency), settings
        )
        for latency in latency_pool
    }
    cont = run_benchmark(
        cell.benchmark,
        continuous_window_128(
            SchedulingModel(cell.scheduling),
            SpeculationPolicy.NAIVE,
            addr_scheduler_latency=cell.latency,
        ),
        settings,
    )

    # R6a: the split window cannot be cleaner than the continuous one.
    split_rate = by_latency[cell.latency].misspeculation_rate
    if split_rate + nav_rate_threshold < cont.misspeculation_rate:
        fail(
            "split-loophole",
            f"split miss-speculation rate {split_rate:.4f} below the "
            f"continuous-window rate {cont.misspeculation_rate:.4f} "
            f"beyond slack {nav_rate_threshold:.4f}",
        )

    # R6b: miss-speculations non-decreasing in scheduler latency
    # (within SPLIT_MONO_TOLERANCE), committed stream exactly invariant.
    latencies = sorted(by_latency)
    for lo, hi in zip(latencies, latencies[1:]):
        before = by_latency[lo].misspeculations
        after = by_latency[hi].misspeculations
        if after < before * (1.0 - SPLIT_MONO_TOLERANCE):
            fail(
                "split-latency-monotonicity",
                f"miss-speculations fell {before} -> {after} from "
                f"latency {lo} to {hi} (beyond "
                f"{SPLIT_MONO_TOLERANCE:.0%} tolerance)",
            )
    for counter in (
        "committed", "committed_loads", "committed_stores",
        "committed_branches",
    ):
        values = {
            lat: getattr(r, counter) for lat, r in by_latency.items()
        }
        if len(set(values.values())) > 1:
            fail(
                "commit-equality",
                f"{counter} varies with scheduler latency: {values}",
            )

    # Squash accounting holds for the split model too.
    for latency, r in by_latency.items():
        if not r.misspeculations and r.squashed_instructions:
            fail(
                "squash-accounting",
                f"latency {latency} squashed "
                f"{r.squashed_instructions} instructions with zero "
                f"miss-speculations",
            )
    return failures


def run_cell(
    cell: FuzzCell,
    tolerance: float = 0.02,
    nav_rate_threshold: float = 0.01,
) -> List[dict]:
    """Run every policy of *cell*'s family; return relation failures."""
    from repro.experiments.runner import ExperimentSettings, run_benchmark

    if cell.split_units:
        return _run_split_cell(cell, nav_rate_threshold)
    settings = ExperimentSettings(
        timing_instructions=cell.timing,
        warmup_instructions=cell.warmup,
        seed=cell.seed,
    )
    results = {
        policy: run_benchmark(cell.benchmark, cell.config(policy), settings)
        for policy in cell.policies()
    }
    failures: List[dict] = []

    def fail(relation: str, detail: str) -> None:
        failures.append(
            {"relation": relation, "cell": cell.to_dict(), "detail": detail}
        )

    # R1: the committed stream is policy-invariant.
    for counter in (
        "committed", "committed_loads", "committed_stores",
        "committed_branches",
    ):
        values = {p: getattr(r, counter) for p, r in results.items()}
        if len(set(values.values())) > 1:
            fail(
                "commit-equality",
                f"{counter} differs across policies: {values}",
            )

    # R2: the non-speculative endpoints never miss-speculate.
    for policy in ("NO", "ORACLE"):
        r = results[policy]
        if r.misspeculations or r.squashed_instructions:
            fail(
                "nonspeculative-cleanliness",
                f"{policy} reports {r.misspeculations} miss-"
                f"speculations / {r.squashed_instructions} squashed",
            )

    # R3: ORACLE is an IPC upper bound (within tolerance).
    oracle_ipc = results["ORACLE"].ipc
    floor = 1.0 - tolerance
    for policy, r in results.items():
        if policy == "ORACLE":
            continue
        if r.ipc * floor > oracle_ipc:
            fail(
                "oracle-dominance",
                f"{policy} IPC {r.ipc:.4f} exceeds ORACLE "
                f"{oracle_ipc:.4f} beyond tolerance {tolerance:.2%}",
            )

    # R4: squashes imply recorded miss-speculations.
    for policy, r in results.items():
        if not r.misspeculations and r.squashed_instructions:
            fail(
                "squash-accounting",
                f"{policy} squashed {r.squashed_instructions} "
                f"instructions with zero miss-speculations",
            )

    # R5: AS/NAV miss-speculation is virtually non-existent.
    if cell.scheduling == "AS":
        r = results["NAV"]
        if r.misspeculation_rate > nav_rate_threshold:
            fail(
                "as-nav-missp-rate",
                f"AS/NAV miss-speculation rate "
                f"{r.misspeculation_rate:.4f} exceeds "
                f"{nav_rate_threshold:.4f}",
            )
    return failures


def minimize_cell(
    cell: FuzzCell,
    tolerance: float = 0.02,
    nav_rate_threshold: float = 0.01,
    floor: int = 500,
) -> FuzzCell:
    """Halve the failing cell's run lengths while it still fails."""
    current = cell
    for _ in range(12):
        candidates = []
        if current.timing // 2 >= floor:
            candidates.append(
                FuzzCell(**{**current.to_dict(), "timing": current.timing // 2})
            )
        if current.warmup:
            candidates.append(
                FuzzCell(**{**current.to_dict(), "warmup": current.warmup // 2})
            )
        shrunk = None
        for candidate in candidates:
            if run_cell(candidate, tolerance, nav_rate_threshold):
                shrunk = candidate
                break
        if shrunk is None:
            return current
        current = shrunk
    return current


def fuzz(
    budget: int = 5,
    rng_seed: int = 0,
    tolerance: float = 0.02,
    nav_rate_threshold: float = 0.01,
    benchmarks: Sequence[str] = DEFAULT_BENCHMARKS,
    corpus: Sequence[FuzzCell] = (),
    minimize: bool = True,
    log=None,
) -> FuzzResult:
    """Replay *corpus*, then explore *budget* random cells."""
    rng = random.Random(rng_seed)
    result = FuzzResult()
    cells = list(corpus) + [
        sample_cell(rng, benchmarks) for _ in range(budget)
    ]
    for index, cell in enumerate(cells):
        if log is not None:
            origin = "corpus" if index < len(corpus) else "random"
            log(f"[{index + 1}/{len(cells)}] {origin} {cell.to_dict()}")
        failures = run_cell(cell, tolerance, nav_rate_threshold)
        result.cells_run += 1
        if not failures:
            continue
        result.failures.extend(failures)
        if minimize:
            small = minimize_cell(cell, tolerance, nav_rate_threshold)
            result.minimized.append(small.to_dict())
        else:
            result.minimized.append(cell.to_dict())
    return result


# -- corpus I/O ---------------------------------------------------------------

CORPUS_VERSION = 1


def load_corpus(path: str) -> List[FuzzCell]:
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    if data.get("version") != CORPUS_VERSION:
        raise ValueError(
            f"corpus {path} has version {data.get('version')!r}; "
            f"expected {CORPUS_VERSION}"
        )
    return [FuzzCell.from_dict(entry) for entry in data["cells"]]


def save_corpus(path: str, cells: Sequence[FuzzCell]) -> None:
    payload = {
        "version": CORPUS_VERSION,
        "cells": [cell.to_dict() for cell in cells],
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def replay_corpus(
    path: str,
    tolerance: float = 0.02,
    nav_rate_threshold: float = 0.01,
    log=None,
) -> FuzzResult:
    """Re-run every checked-in cell; random budget zero."""
    return fuzz(
        budget=0,
        corpus=load_corpus(path),
        tolerance=tolerance,
        nav_rate_threshold=nav_rate_threshold,
        minimize=False,
        log=log,
    )
