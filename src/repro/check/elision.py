"""Event-horizon elision soundness for the ``vector`` backend.

The vector core may advance its clock past cycles in which it proves no
state can change (see ``repro.core.vector``). Golden parity shows the
*aggregate* counters survive that shortcut; this module verifies the
*per-cycle* claim differentially against the reference core:

* **schedulable-empty** — re-run the same (config, trace, plan) on the
  reference core and record the cycle of every commit, issue, memory
  issue, dispatch and fetch. No recorded activity may fall inside any
  elided ``[start, stop)`` range: an elided cycle is one in which the
  reference core provably does nothing.
* **accounting** — the elided ranges must be disjoint, ascending, and
  sum exactly to the vector run's ``skipped_cycles`` counter, and both
  runs' :class:`~repro.core.result.SimResult` counters must match
  field-for-field (the same comparison the golden suite applies).

Together with the stall-conservation law (``commit_slots +
stall_slots == width × cycles``, charged by the
:class:`~repro.observe.stalls.StallAccountant` gap rule), this is the
soundness oracle the property suite leans on: every elided cycle is a
cycle the reference spent fully stalled, charged only to wait causes.
The vector core *macro-steps*: beyond the reference's own fast-forward
gaps it also elides the empty probe cycle the reference walks after
every active cycle, so its skipped set is a superset of the
accountant's ``skipped_cycles`` gap set — coverage, not equality, is
the invariant (see ``tests/test_check_elision.py``).
"""

from __future__ import annotations

from bisect import bisect_left
from typing import List, Optional, Tuple

from repro.config.processor import ProcessorConfig
from repro.core.processor import Processor
from repro.core.result import SimResult
from repro.observe.bus import ObserverBus, RawObserverSink
from repro.check.report import CheckReport
from repro.trace.sampling import SamplingPlan, make_sampling_plan

#: SimResult counters compared across the two runs (the golden-parity
#: field list; ``extra`` is deliberately excluded — it carries the
#: elision telemetry itself).
PARITY_FIELDS = (
    "cycles", "committed", "committed_loads", "committed_stores",
    "committed_branches", "misspeculations", "squashed_instructions",
    "false_dependence_loads", "true_dependence_loads",
    "false_dependence_latency", "branch_predictions",
    "branch_mispredictions", "load_forwards", "speculative_loads",
    "dcache_accesses", "dcache_misses", "icache_accesses",
    "icache_misses", "l2_accesses", "l2_misses",
)


class _ActivityRecorder(RawObserverSink):
    """Records the cycle of every observable reference-core action."""

    summary_key = None

    def __init__(self) -> None:
        self.cycles: set = set()

    def raw_fetch(self, inst, cycle: int) -> None:
        self.cycles.add(cycle)

    def raw_dispatch(self, entry, cycle: int) -> None:
        self.cycles.add(cycle)

    def raw_issue(self, entry, cycle: int) -> None:
        self.cycles.add(cycle)

    def raw_mem_issue(self, entry, cycle: int, forwarded) -> None:
        self.cycles.add(cycle)

    def raw_squash(self, load, store, cycle, squashed, resume) -> None:
        self.cycles.add(cycle)

    def raw_replay(self, load, cycle, reexecuted) -> None:
        self.cycles.add(cycle)

    def raw_commit(self, entry, cycle: int) -> None:
        self.cycles.add(cycle)


def check_elision(
    config: ProcessorConfig,
    trace,
    plan: Optional[SamplingPlan] = None,
    dep_info=None,
    report: Optional[CheckReport] = None,
) -> CheckReport:
    """Differentially verify the vector core's elided-cycle claim.

    Runs the vector core with elision forced **on** and elision
    recording enabled, then the reference core with an activity
    recorder attached, and asserts every elided cycle is
    schedulable-empty. Violations land in *report* (a fresh
    :class:`CheckReport` is created when none is given) under the
    check ids ``elision-parity``, ``elision-ranges`` and
    ``elision-nonempty``.
    """
    if report is None:
        report = CheckReport()
    if plan is None:
        plan = make_sampling_plan(len(trace))

    from repro.core.vector import VectorProcessor

    vector = VectorProcessor(
        config, trace, dep_info, elide=True, record_elisions=True
    )
    vec_result = vector.run(plan)
    ranges: List[Tuple[int, int]] = list(
        vec_result.extra.get("elided_ranges", ())
    )

    recorder = _ActivityRecorder()
    reference = Processor(
        config, trace, dep_info, observer=ObserverBus([recorder])
    )
    ref_result = reference.run(plan)

    _check_parity(vec_result, ref_result, report)
    _check_ranges(
        ranges, vec_result.extra.get("skipped_cycles", 0), report
    )
    _check_empty(ranges, sorted(recorder.cycles), report)
    return report


def _check_empty(
    ranges: List[Tuple[int, int]],
    active: List[int],
    report: CheckReport,
) -> None:
    """No recorded activity cycle may fall inside an elided range."""
    for start, stop in ranges:
        index = bisect_left(active, start)
        if index < len(active) and active[index] < stop:
            report.add(
                "elision-nonempty", "elision",
                f"vector core elided cycles [{start}, {stop}) but the "
                f"reference core acted at cycle {active[index]}",
                cycle=active[index],
            )


def _check_parity(
    vec: SimResult, ref: SimResult, report: CheckReport
) -> None:
    for field in PARITY_FIELDS:
        got, want = getattr(vec, field), getattr(ref, field)
        if got != want:
            report.add(
                "elision-parity", "elision",
                f"SimResult field {field!r} diverged under elision: "
                f"vector {got}, reference {want}",
            )


def _check_ranges(
    ranges: List[Tuple[int, int]], skipped: int, report: CheckReport
) -> None:
    total = 0
    prev_stop = None
    for start, stop in ranges:
        if stop <= start or (prev_stop is not None and start < prev_stop):
            report.add(
                "elision-ranges", "elision",
                f"elided ranges not ascending/disjoint at "
                f"[{start}, {stop})",
                cycle=start,
            )
            return
        total += stop - start
        prev_stop = stop
    if total != skipped:
        report.add(
            "elision-ranges", "elision",
            f"elided ranges cover {total} cycles but the run reports "
            f"skipped_cycles={skipped}",
        )
