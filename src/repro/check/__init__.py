"""Differential & metamorphic verification for the timing simulator.

Three layers, all riding the :mod:`repro.observe` bus (zero overhead
when detached, bit-identical results when attached):

* :mod:`repro.check.differential` — replays the committed instruction
  stream against the functional reference (commit order, shadow
  memory, store-to-load forwarded values, branch outcomes, PC
  continuity) and flags any architectural divergence.
* :mod:`repro.check.invariants` — per-cycle microarchitectural
  assertions: window age order, store-buffer FIFO order, policy-gate
  soundness (a gated load never issues; ORACLE and NO never squash),
  structure cross-consistency, stall-accountant conservation.
* :mod:`repro.check.fuzz` — a seeded metamorphic design-space
  explorer asserting the paper's cross-policy ordering relations,
  with failing-seed minimisation and a regression corpus.
* :mod:`repro.check.elision` — differential soundness of the vector
  backend's event-horizon: every elided cycle must be
  schedulable-empty on the reference core.

:mod:`repro.check.faults` seeds known bugs into a live processor so
the self-test (``repro-experiments check selftest``) can prove each
checker actually fires; :mod:`repro.check.harness` wires everything
together for the CLI and the test suite.
"""

from repro.check.differential import DifferentialChecker
from repro.check.elision import check_elision
from repro.check.faults import FAULTS, fault_names
from repro.check.fuzz import FuzzCell, fuzz, run_cell
from repro.check.harness import CheckOutcome, check_benchmark, check_run, selftest
from repro.check.invariants import InvariantChecker
from repro.check.report import CheckError, CheckReport, Violation

__all__ = [
    "CheckError",
    "CheckOutcome",
    "CheckReport",
    "DifferentialChecker",
    "FAULTS",
    "FuzzCell",
    "InvariantChecker",
    "Violation",
    "check_benchmark",
    "check_elision",
    "check_run",
    "fault_names",
    "fuzz",
    "run_cell",
    "selftest",
]
