"""Functional reference models for the differential checker.

Two independent sources of architectural truth:

* :func:`independent_trace` regenerates a workload's dynamic trace from
  scratch — a fresh :func:`repro.vm.interpreter.run_program` execution
  for kernels, a fresh :class:`~repro.workloads.synthetic.SyntheticProgram`
  for the SPEC'95 stand-ins — deliberately bypassing the catalog cache
  so a corrupted cached trace cannot vouch for itself.
* :class:`ShadowMemory` re-executes the *committed* store stream at
  word granularity and predicts every committed load's value. Initial
  memory contents are unknown to the checker, so the first read of an
  unwritten word adopts the load's value; any later disagreement on
  that word is a real divergence.

Both models share the 4-byte word granularity of
:mod:`repro.trace.dependences` (every workload in this repo issues
word-aligned accesses).
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

from repro.isa.instruction import DynInst
from repro.trace.events import Trace

_WORD_SHIFT = 2  # 4-byte words, matching repro.trace.dependences

#: DynInst fields compared between a simulated trace and its
#: independently regenerated twin.
TRACE_FIELDS: Tuple[str, ...] = (
    "seq", "pc", "op", "dest", "srcs", "addr", "size", "value",
    "taken", "target",
)


def independent_trace(name: str, length: int, seed: int = 0) -> Trace:
    """Regenerate (name, length, seed) without touching the trace cache."""
    from repro.workloads.kernels import KERNELS
    from repro.workloads.spec95 import profile_for
    from repro.workloads.synthetic import SyntheticProgram
    from repro.vm.interpreter import run_program

    if name in KERNELS:
        source, memory = KERNELS[name]()
        return run_program(
            source, memory=memory, max_instructions=length, name=name
        )
    profile = profile_for(name)
    return SyntheticProgram(profile, seed=seed).generate(length)


def diff_instructions(
    got: DynInst, want: DynInst
) -> Iterable[Tuple[str, object, object]]:
    """Yield (field, got, want) for every differing compared field."""
    for name in TRACE_FIELDS:
        a = getattr(got, name)
        b = getattr(want, name)
        if a != b:
            yield name, a, b


class ShadowMemory:
    """Word-granular architectural memory rebuilt from the commit stream."""

    def __init__(self) -> None:
        self._words: Dict[int, int] = {}
        #: Words never written nor read yet — their content is the
        #: program's initial memory image, unknown to the checker.
        self.adopted = 0
        self.checked_loads = 0
        self.stores_applied = 0

    def store(self, addr: int, size: int, value: Optional[int]) -> None:
        """Apply a committed store (value ``None`` marks it unknown)."""
        self.stores_applied += 1
        first = addr >> _WORD_SHIFT
        last = (addr + size - 1) >> _WORD_SHIFT
        for word in range(first, last + 1):
            # Multi-word stores replicate the value per word exactly as
            # compute_dependence_info does; unknown values poison the
            # word back to "unwritten".
            if value is None:
                self._words.pop(word, None)
            else:
                self._words[word] = value

    def load(self, addr: int, size: int, value: Optional[int]) -> Optional[int]:
        """Check a committed load; returns the expected value or None.

        ``None`` means the word had no known content (first touch): the
        load's own value is adopted as the initial-memory image.
        """
        if value is None:
            return None
        word = addr >> _WORD_SHIFT
        known = self._words.get(word)
        if known is None:
            self._words[word] = value
            self.adopted += 1
            return None
        self.checked_loads += 1
        return known
