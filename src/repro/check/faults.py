"""Test-only fault injection: seed known bugs, prove the checkers fire.

Each :class:`Fault` names one realistic simulator-bug class, carries a
patch that plants the bug in a *live* processor, and a deterministic
micro-trace scenario on which the bug is guaranteed to manifest. The
self-test (:func:`repro.check.harness.selftest`) runs every scenario
twice — clean (no violations allowed) and faulted (the named check
must fire) — so a checker that silently stops detecting anything
breaks the build.

Faults are applied through the observer bus: a fault is a
``wants_cycles`` sink whose ``on_segment`` hook monkey-patches the
processor's per-segment structures (store buffer, window, violation
detector) the moment they exist. Production code paths are never
touched — the patches live on one processor *instance* and die with
it.

Bug classes (>= 6 distinct, per the acceptance criteria):

==================== ====================================================
``wrong-forward``     store buffer forwards from the *oldest* matching
                      store instead of the youngest older one
``skip-squash``       the violation detector never reports violating
                      loads (miss-speculation recovery skipped)
``commit-reorder``    commit pops the second-oldest window entry (ROB
                      head pointer corruption)
``gate-bypass``       a NO-speculation machine issues loads past
                      unexecuted older stores (gate forced open)
``phantom-squash``    an ORACLE machine miss-speculates and squashes
                      (perfect dependence knowledge corrupted)
``zombie-buffer``     squash recovery forgets to flush the store
                      buffer's squashed-younger entries
``commit-drift``      the committed-instruction counter drifts from the
                      actually committed stream
==================== ====================================================
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from typing import Callable, Dict, Tuple

from repro.config.presets import continuous_window_128
from repro.config.processor import (
    ProcessorConfig,
    SchedulingModel,
    SpeculationPolicy,
)
from repro.isa.instruction import DynInst
from repro.isa.opcodes import OpClass
from repro.trace.events import Trace

# -- micro-trace construction -------------------------------------------------


def _inst(seq, op, dest=None, srcs=(), addr=None, value=None):
    return DynInst(
        seq=seq, pc=seq * 4, op=op, dest=dest, srcs=srcs,
        addr=addr, size=4, value=value,
    )


def _micro_trace(body, name: str, filler: int = 24) -> Trace:
    """*body* (seq-ordered specs) plus IALU filler, as a Trace."""
    instructions = list(body)
    seq = len(instructions)
    for _ in range(filler):
        instructions.append(_inst(seq, OpClass.IALU, dest=30))
        seq += 1
    return Trace(instructions, name=name)


def _true_dependence_body():
    """A store whose data waits on an IDIV, then a load of that word.

    Under any speculative gate the load reads the stale word long
    before the store writes — the canonical miss-speculation. An
    earlier load of the same word warms the cache so the premature
    read completes (stale) well before the store's write, rather than
    hiding behind a cold-miss latency.
    """
    return [
        _inst(0, OpClass.IALU, dest=1),
        _inst(1, OpClass.LOAD, dest=6, srcs=(1,), addr=0x100, value=0),
        _inst(2, OpClass.IDIV, dest=3, srcs=(1, 1)),
        _inst(3, OpClass.STORE, srcs=(1, 3), addr=0x100, value=7),
        _inst(4, OpClass.LOAD, dest=4, srcs=(1,), addr=0x100, value=7),
        _inst(5, OpClass.IALU, dest=5, srcs=(4,)),
    ]


def _scenario_two_stores() -> Tuple[ProcessorConfig, Trace]:
    """Two buffered stores to one word; only the younger is correct."""
    body = [
        _inst(0, OpClass.IALU, dest=1),
        _inst(1, OpClass.STORE, srcs=(1, 2), addr=0x100, value=1),
        _inst(2, OpClass.STORE, srcs=(1, 2), addr=0x100, value=2),
        _inst(3, OpClass.LOAD, dest=4, srcs=(1,), addr=0x100, value=2),
    ]
    config = continuous_window_128(
        SchedulingModel.NAS, SpeculationPolicy.NAIVE
    )
    return config, _micro_trace(body, "micro-two-stores")


def _scenario_true_dependence(
    policy: SpeculationPolicy = SpeculationPolicy.NAIVE,
) -> Tuple[ProcessorConfig, Trace]:
    config = continuous_window_128(SchedulingModel.NAS, policy)
    return config, _micro_trace(
        _true_dependence_body(), "micro-true-dep"
    )


def _scenario_false_dependence() -> Tuple[ProcessorConfig, Trace]:
    """A slow store and a younger load to a *different* word."""
    body = [
        _inst(0, OpClass.IALU, dest=1),
        _inst(1, OpClass.IDIV, dest=3, srcs=(1, 1)),
        _inst(2, OpClass.STORE, srcs=(1, 3), addr=0x100, value=7),
        _inst(3, OpClass.LOAD, dest=4, srcs=(1,), addr=0x200, value=0),
    ]
    config = continuous_window_128(
        SchedulingModel.NAS, SpeculationPolicy.NO
    )
    return config, _micro_trace(body, "micro-false-dep")


def _scenario_squash_with_younger_store() -> Tuple[ProcessorConfig, Trace]:
    """A miss-speculating load followed by a younger buffered store."""
    body = [
        _inst(0, OpClass.IALU, dest=1),
        _inst(1, OpClass.IDIV, dest=3, srcs=(1, 1)),
        _inst(2, OpClass.STORE, srcs=(1, 3), addr=0x100, value=7),
        _inst(3, OpClass.LOAD, dest=4, srcs=(1,), addr=0x100, value=7),
        _inst(4, OpClass.STORE, srcs=(1, 1), addr=0x200, value=9),
    ]
    config = continuous_window_128(
        SchedulingModel.NAS, SpeculationPolicy.NAIVE
    )
    return config, _micro_trace(body, "micro-zombie")


def _scenario_plain() -> Tuple[ProcessorConfig, Trace]:
    config = continuous_window_128(
        SchedulingModel.NAS, SpeculationPolicy.NAIVE
    )
    body = [
        _inst(0, OpClass.IALU, dest=1),
        _inst(1, OpClass.STORE, srcs=(1, 1), addr=0x100, value=3),
        _inst(2, OpClass.LOAD, dest=2, srcs=(1,), addr=0x100, value=3),
    ]
    return config, _micro_trace(body, "micro-plain")


# -- the patches --------------------------------------------------------------


def _patch_wrong_forward(processor) -> None:
    buffer = processor.store_buffer

    def oldest_first_search(seq, addr, size, _buffer=buffer):
        end = addr + size
        entries = _buffer._entries
        hi = bisect_left(_buffer._seqs, seq)
        for index in range(hi):  # bug: oldest-first
            entry = entries[index]
            if entry.addr < end and addr < entry.addr + entry.size:
                full = (
                    entry.addr <= addr and end <= entry.addr + entry.size
                )
                if full:
                    _buffer.forwards += 1
                return entry, full
        return None, False

    buffer.search = oldest_first_search


def _patch_skip_squash(processor) -> None:
    processor.detector.loads_violating = lambda store_seq, cycle: []


def _patch_commit_reorder(processor) -> None:
    window = processor.window

    def reordered_commit_head(_window=window):
        entries = _window._entries
        index = 1 if len(entries) > 1 else 0  # bug: skips the head
        entry = entries[index]
        del entries[index]
        del _window._by_seq[entry.seq]
        inst = entry.inst
        if inst.dest is not None and (
            _window._last_writer.get(inst.dest) is entry
        ):
            del _window._last_writer[inst.dest]
        return entry

    window.commit_head = reordered_commit_head


def _patch_gate_open(processor) -> None:
    from repro.core.processor import _GATE_OPEN

    processor._gate_kind = _GATE_OPEN


def _patch_zombie_buffer(processor) -> None:
    processor.store_buffer.squash_younger = lambda seq: None


def _patch_commit_drift(processor) -> None:
    window = processor.window
    real = window.commit_head
    state = {"commits": 0}

    def drifting_commit_head():
        entry = real()
        state["commits"] += 1
        if state["commits"] == 3:  # bug: one phantom commit
            processor.stats.committed += 1
        return entry

    window.commit_head = drifting_commit_head


# -- fault registry -----------------------------------------------------------


class _FaultSink:
    """Observer sink that plants the bug once structures exist."""

    wants_events = False
    wants_cycles = True
    wants_raw = False
    summary_key = None

    def __init__(self, patch: Callable) -> None:
        self._patch = patch
        self.applied = 0

    def on_segment(self, processor) -> None:
        self._patch(processor)
        self.applied += 1

    def on_cycle(self, processor) -> None:
        pass

    def on_squash(self, resume_cycle: int) -> None:
        pass

    def summary(self) -> dict:
        return {}


@dataclass(frozen=True)
class Fault:
    """One seeded bug class plus its guaranteed-detection scenario."""

    name: str
    description: str
    #: Check names (see docs/TESTING.md) any of which count as caught.
    expect_checks: Tuple[str, ...]
    patch: Callable
    scenario: Callable[[], Tuple[ProcessorConfig, Trace]]

    def sink(self) -> _FaultSink:
        return _FaultSink(self.patch)


FAULTS: Dict[str, Fault] = {
    fault.name: fault
    for fault in (
        Fault(
            name="wrong-forward",
            description=(
                "store-to-load forwarding picks the oldest matching "
                "store instead of the youngest older one"
            ),
            expect_checks=("forward-value",),
            patch=_patch_wrong_forward,
            scenario=_scenario_two_stores,
        ),
        Fault(
            name="skip-squash",
            description=(
                "the violation detector drops every violating load, so "
                "miss-speculated values commit uncorrected"
            ),
            expect_checks=("stale-load",),
            patch=_patch_skip_squash,
            scenario=_scenario_true_dependence,
        ),
        Fault(
            name="commit-reorder",
            description=(
                "commit pops the second-oldest window entry, breaking "
                "program order at retirement"
            ),
            expect_checks=("commit-order",),
            patch=_patch_commit_reorder,
            scenario=_scenario_plain,
        ),
        Fault(
            name="gate-bypass",
            description=(
                "a NO-speculation machine issues loads past unexecuted "
                "older stores"
            ),
            expect_checks=("gate-soundness",),
            patch=_patch_gate_open,
            scenario=_scenario_false_dependence,
        ),
        Fault(
            name="phantom-squash",
            description=(
                "an ORACLE machine speculates blindly and pays squashes "
                "its perfect dependence knowledge forbids"
            ),
            expect_checks=("policy-squash", "gate-soundness"),
            patch=_patch_gate_open,
            scenario=lambda: _scenario_true_dependence(
                SpeculationPolicy.ORACLE
            ),
        ),
        Fault(
            name="zombie-buffer",
            description=(
                "squash recovery forgets to flush squashed-younger "
                "stores out of the store buffer"
            ),
            expect_checks=("store-buffer-zombie",),
            patch=_patch_zombie_buffer,
            scenario=_scenario_squash_with_younger_store,
        ),
        Fault(
            name="commit-drift",
            description=(
                "the committed-instruction counter drifts from the "
                "actually committed stream"
            ),
            expect_checks=("commit-count",),
            patch=_patch_commit_drift,
            scenario=_scenario_plain,
        ),
    )
}


def fault_names() -> Tuple[str, ...]:
    return tuple(sorted(FAULTS))
