"""Machine-readable violation reports shared by every checker.

A :class:`Violation` is one detected divergence or broken invariant; a
:class:`CheckReport` collects them across checkers and renders to JSON
for CI artifacts (``check ... --json-out``). In ``fail_fast`` mode the
report raises :class:`CheckError` at the first violation — the
fault-injection self-test uses this so a seeded bug is caught at the
moment of detection instead of crashing the simulator later.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class Violation:
    """One detected divergence or broken microarchitectural invariant."""

    #: Stable machine-readable name, e.g. ``"commit-order"`` or
    #: ``"window-age-order"`` (docs/TESTING.md lists them all).
    check: str
    #: Which checker raised it: ``"differential"``, ``"invariants"``
    #: or ``"harness"`` (post-run cross-checks).
    source: str
    #: Human-readable one-liner with the diverging values.
    detail: str
    cycle: Optional[int] = None
    seq: Optional[int] = None

    def to_dict(self) -> dict:
        out = {
            "check": self.check,
            "source": self.source,
            "detail": self.detail,
        }
        if self.cycle is not None:
            out["cycle"] = self.cycle
        if self.seq is not None:
            out["seq"] = self.seq
        return out

    def __str__(self) -> str:
        where = []
        if self.cycle is not None:
            where.append(f"cycle={self.cycle}")
        if self.seq is not None:
            where.append(f"seq={self.seq}")
        loc = f" [{' '.join(where)}]" if where else ""
        return f"{self.source}/{self.check}{loc}: {self.detail}"


class CheckError(AssertionError):
    """Raised on the first violation when a report is fail-fast."""

    def __init__(self, violation: Violation) -> None:
        super().__init__(str(violation))
        self.violation = violation


class CheckReport:
    """Accumulates violations from every attached checker.

    ``max_violations`` bounds memory on a badly broken run (the count
    keeps incrementing; only the detail records stop being retained).
    """

    def __init__(
        self, fail_fast: bool = False, max_violations: int = 200
    ) -> None:
        self.fail_fast = fail_fast
        self.max_violations = max_violations
        self.violations: List[Violation] = []
        self.total = 0
        #: Violation counts per check name (kept even past the cap).
        self.counts: Dict[str, int] = {}

    def add(
        self,
        check: str,
        source: str,
        detail: str,
        cycle: Optional[int] = None,
        seq: Optional[int] = None,
    ) -> None:
        violation = Violation(check, source, detail, cycle=cycle, seq=seq)
        self.total += 1
        self.counts[check] = self.counts.get(check, 0) + 1
        if len(self.violations) < self.max_violations:
            self.violations.append(violation)
        if self.fail_fast:
            raise CheckError(violation)

    @property
    def ok(self) -> bool:
        return self.total == 0

    def checks_hit(self) -> List[str]:
        return sorted(self.counts)

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "total": self.total,
            "counts": dict(self.counts),
            "violations": [v.to_dict() for v in self.violations],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def render(self, limit: int = 20) -> str:
        """Human-readable multi-line summary for CLI output."""
        if self.ok:
            return "check: OK (no violations)"
        lines = [f"check: {self.total} violation(s)"]
        for name in self.checks_hit():
            lines.append(f"  {name}: {self.counts[name]}")
        lines.append("first violations:")
        for violation in self.violations[:limit]:
            lines.append(f"  {violation}")
        if self.total > limit:
            lines.append(f"  ... and {self.total - limit} more")
        return "\n".join(lines)


@dataclass
class StoreRecord:
    """A committed store's architectural effect (differential checker)."""

    seq: int
    addr: int
    size: int
    value: Optional[int]
    write_cycle: Optional[int]
    commit_cycle: int = field(default=0)
