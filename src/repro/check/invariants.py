"""Per-cycle microarchitectural invariant checker.

A ``wants_raw`` + ``wants_cycles`` observer sink asserting structural
invariants the timing model must never break:

* **age order** — the window holds strictly increasing seqs; the store
  buffer, the unexecuted-store trackers and the address scheduler's
  posted/unposted lists are FIFO in program order;
* **structure consistency** — the store buffer's parallel seq index
  matches its entries and respects capacity; the address scheduler's
  posted records match their seq index; a buffered store younger than
  the last commit must still live in the window (a squash that forgot
  to flush the store buffer leaves "zombie" stores behind);
* **policy-gate soundness** — at the moment a load issues to memory,
  the active policy's gate must genuinely be open: under NO every
  older store has executed (NAS) or posted its address with no
  unwritten overlapping match (AS); under SEL only unpredicted loads
  bypass older stores; under STORE no older barrier store is pending;
  under SYNC/SSET the synonym producer has issued; under ORACLE the
  true producing store (recomputed here from the trace, not trusted
  from the processor) has issued;
* **squash soundness** — NO and ORACLE never squash, and a violation
  squash always names a load younger than the store.

The gate expectation is derived from the *configuration*, not from the
processor's resolved ``_gate_kind``, so a corrupted gate cannot vouch
for itself. All structure scans are read-only clones of the hot-path
queries (the real ones bump observability counters).
"""

from __future__ import annotations

from typing import Optional

from repro.config.processor import SchedulingModel, SpeculationPolicy
from repro.observe.bus import RawObserverSink
from repro.observe.stalls import StallAccountant
from repro.check.report import CheckReport
from repro.trace.dependences import compute_true_dependences
from repro.trace.events import Trace

_NEVER_SQUASH = (SpeculationPolicy.NO, SpeculationPolicy.ORACLE)
_SYNC_POLICIES = (SpeculationPolicy.SYNC, SpeculationPolicy.STORE_SETS)


def _is_sorted_strict(seqs) -> bool:
    return all(a < b for a, b in zip(seqs, seqs[1:]))


class InvariantChecker(RawObserverSink):
    """Asserts structural and policy invariants on the live machine."""

    wants_cycles = True
    summary_key = "invariants"

    def __init__(
        self,
        trace: Trace,
        report: CheckReport,
        stride: int = 1,
    ) -> None:
        if stride < 1:
            raise ValueError("stride must be >= 1")
        self.trace = trace
        self.report = report
        self.stride = stride
        #: Independent recomputation of the true dependence map — used
        #: for the ORACLE gate check instead of ``entry.dep_store_seq``.
        self._deps = compute_true_dependences(trace)
        self._processor = None
        self._as_mode = False
        self._policy: Optional[SpeculationPolicy] = None
        self._last_committed = -1
        self._tick = 0
        self.cycles_checked = 0
        self.issues_checked = 0

    # -- wiring ------------------------------------------------------------

    def on_segment(self, processor) -> None:
        self._processor = processor
        memdep = processor.config.memdep
        self._as_mode = memdep.scheduling is SchedulingModel.AS
        self._policy = memdep.policy
        self._last_committed = processor.cursor.position - 1

    def on_squash(self, resume_cycle: int) -> None:
        pass

    def raw_commit(self, entry, cycle: int) -> None:
        self._last_committed = entry.seq

    # -- squash soundness --------------------------------------------------

    def raw_squash(self, load, store, cycle, squashed, resume) -> None:
        if self._policy in _NEVER_SQUASH:
            self.report.add(
                "policy-squash", "invariants",
                f"policy {self._policy.value} must never miss-speculate "
                f"but squashed load {load.seq} on store {store.seq}",
                cycle=cycle, seq=load.seq,
            )
        if load.seq <= store.seq:
            self.report.add(
                "squash-order", "invariants",
                f"violation squash names load {load.seq} not younger "
                f"than store {store.seq}",
                cycle=cycle, seq=load.seq,
            )

    def raw_replay(self, load, cycle, reexecuted) -> None:
        if self._policy in _NEVER_SQUASH:
            self.report.add(
                "policy-squash", "invariants",
                f"policy {self._policy.value} must never miss-speculate "
                f"but replayed load {load.seq}",
                cycle=cycle, seq=load.seq,
            )

    # -- policy-gate soundness --------------------------------------------

    def raw_mem_issue(self, entry, cycle, forwarded) -> None:
        if not entry.is_load:
            return
        processor = self._processor
        if processor is None:
            return
        self.issues_checked += 1
        report = self.report
        seq = entry.seq
        agen = entry.agen_done
        if agen is None or agen > cycle:
            report.add(
                "gate-soundness", "invariants",
                f"load {seq} issued to memory at cycle {cycle} before "
                f"its address generation ({agen})",
                cycle=cycle, seq=seq,
            )
            return
        if self._as_mode:
            self._check_gate_as(processor, entry, cycle)
            return
        policy = self._policy
        if policy is SpeculationPolicy.NO:
            oldest = processor.unexec_stores.oldest()
            if oldest is not None and oldest < seq:
                report.add(
                    "gate-soundness", "invariants",
                    f"NO-speculation load {seq} issued while older "
                    f"store {oldest} has not executed",
                    cycle=cycle, seq=seq,
                )
        elif policy is SpeculationPolicy.SELECTIVE:
            if entry.predicted_dep:
                oldest = processor.unexec_stores.oldest()
                if oldest is not None and oldest < seq:
                    report.add(
                        "gate-soundness", "invariants",
                        f"SEL-gated load {seq} (predicted dependent) "
                        f"issued while older store {oldest} is "
                        f"unexecuted",
                        cycle=cycle, seq=seq,
                    )
        elif policy is SpeculationPolicy.STORE_BARRIER:
            oldest = processor.barrier_stores.oldest()
            if oldest is not None and oldest < seq:
                report.add(
                    "gate-soundness", "invariants",
                    f"STORE-barrier load {seq} issued while older "
                    f"barrier store {oldest} is unexecuted",
                    cycle=cycle, seq=seq,
                )
        elif policy in _SYNC_POLICIES:
            wait = entry.sync_wait_store
            if wait is not None and not (wait.squashed or wait.executed):
                issued = wait.issue_cycle
                if issued is None or cycle < issued + 1:
                    report.add(
                        "gate-soundness", "invariants",
                        f"synchronized load {seq} issued at {cycle} but "
                        f"its synonym store {wait.seq} issued at "
                        f"{issued}",
                        cycle=cycle, seq=seq,
                    )
        elif policy is SpeculationPolicy.ORACLE:
            dep_seq = self._deps.get(seq)
            if dep_seq is not None:
                dep = processor.window.get(dep_seq)
                if dep is not None and not dep.executed:
                    issued = dep.issue_cycle
                    if issued is None or cycle < issued + 1:
                        report.add(
                            "gate-soundness", "invariants",
                            f"ORACLE load {seq} issued at {cycle} ahead "
                            f"of its true producing store {dep_seq} "
                            f"(issued {issued})",
                            cycle=cycle, seq=seq,
                        )

    def _check_gate_as(self, processor, entry, cycle: int) -> None:
        report = self.report
        sched = processor.addr_sched
        seq = entry.seq
        visible_from = entry.agen_done + sched.latency
        if cycle < visible_from:
            report.add(
                "gate-soundness", "invariants",
                f"AS load {seq} issued at {cycle} before scheduler "
                f"visibility at {visible_from}",
                cycle=cycle, seq=seq,
            )
        if self._policy is SpeculationPolicy.NO and (
            not sched.all_older_posted(seq, cycle)
        ):
            report.add(
                "gate-soundness", "invariants",
                f"AS/NO load {seq} issued at {cycle} with older store "
                f"addresses still unposted",
                cycle=cycle, seq=seq,
            )
        # A known (visible) overlapping older store whose data has not
        # been written yet must hold the load — every AS policy waits
        # for a *known* true dependence (read-only scan; the real query
        # bumps the scheduler's search counters).
        if StallAccountant._as_match_blocked(sched, entry, cycle):
            report.add(
                "gate-soundness", "invariants",
                f"AS load {seq} issued at {cycle} despite a visible "
                f"older overlapping store with unwritten data",
                cycle=cycle, seq=seq,
            )

    # -- per-cycle structure scans ----------------------------------------

    def on_cycle(self, processor) -> None:
        self._tick += 1
        if self._tick % self.stride:
            return
        self.cycles_checked += 1
        cycle = processor.cycle
        report = self.report

        # Window: strictly increasing seqs, index consistent.
        entries = processor.window._entries
        prev = -1
        for entry in entries:
            if entry.seq <= prev:
                report.add(
                    "window-age-order", "invariants",
                    f"window holds seq {entry.seq} after {prev}",
                    cycle=cycle, seq=entry.seq,
                )
                break
            prev = entry.seq

        # Store buffer: FIFO age order, capacity, parallel index,
        # and no zombie entries surviving a squash.
        buffer = processor.store_buffer
        seqs = buffer._seqs
        if len(buffer._entries) > buffer.capacity:
            report.add(
                "store-buffer-capacity", "invariants",
                f"store buffer holds {len(buffer._entries)} entries; "
                f"capacity is {buffer.capacity}",
                cycle=cycle,
            )
        if not _is_sorted_strict(seqs):
            report.add(
                "store-buffer-age-order", "invariants",
                f"store buffer seqs not in FIFO age order: {seqs}",
                cycle=cycle,
            )
        if seqs != [e.seq for e in buffer._entries]:
            report.add(
                "store-buffer-index", "invariants",
                "store buffer seq index diverged from its entries",
                cycle=cycle,
            )
        window_get = processor.window.get
        for stored in buffer._entries:
            if stored.seq > self._last_committed and (
                window_get(stored.seq) is None
            ):
                report.add(
                    "store-buffer-zombie", "invariants",
                    f"buffered store {stored.seq} is younger than the "
                    f"last commit ({self._last_committed}) but no "
                    f"longer in the window (squash left it behind)",
                    cycle=cycle, seq=stored.seq,
                )

        # Unexecuted-store trackers: sorted, members live and pending.
        for name, tracker in (
            ("unexec-stores", processor.unexec_stores),
            ("barrier-stores", processor.barrier_stores),
        ):
            tracked = tracker._seqs
            if not _is_sorted_strict(tracked):
                report.add(
                    "tracker-age-order", "invariants",
                    f"{name} tracker out of order: {tracked}",
                    cycle=cycle,
                )
            for seq in tracked:
                tracked_entry = window_get(seq)
                if tracked_entry is None:
                    report.add(
                        "tracker-membership", "invariants",
                        f"{name} tracks store {seq} which is not in "
                        f"the window",
                        cycle=cycle, seq=seq,
                    )
                elif not tracked_entry.is_store:
                    report.add(
                        "tracker-membership", "invariants",
                        f"{name} tracks seq {seq} which is not a store",
                        cycle=cycle, seq=seq,
                    )

        # Address scheduler (AS machines): sorted and consistent.
        sched = processor.addr_sched
        if sched is not None:
            if not _is_sorted_strict(sched._unposted):
                report.add(
                    "addr-sched-order", "invariants",
                    f"unposted store seqs out of order: "
                    f"{sched._unposted}",
                    cycle=cycle,
                )
            posted = sched._posted_seqs
            if not _is_sorted_strict(posted):
                report.add(
                    "addr-sched-order", "invariants",
                    f"posted store seqs out of order: {posted}",
                    cycle=cycle,
                )
            if posted != [r.seq for r in sched._records]:
                report.add(
                    "addr-sched-index", "invariants",
                    "posted seq index diverged from its records",
                    cycle=cycle,
                )

    # -- summary -----------------------------------------------------------

    def summary(self) -> dict:
        return {
            "cycles_checked": self.cycles_checked,
            "issues_checked": self.issues_checked,
            "stride": self.stride,
        }
