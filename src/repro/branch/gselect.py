"""Gselect direction predictor: PC bits concatenated with global history.

Table 2: "2nd predictor: Gselect with 5-bit global history."
"""

from __future__ import annotations


class GselectPredictor:
    """Concatenates low PC bits with an h-bit global history register."""

    def __init__(
        self, entries: int = 64 * 1024, history_bits: int = 5
    ) -> None:
        if entries & (entries - 1):
            raise ValueError("entry count must be a power of two")
        if not 0 < history_bits < entries.bit_length():
            raise ValueError("history bits must fit inside the index")
        self._entries = entries
        self._history_bits = history_bits
        self._history_mask = (1 << history_bits) - 1
        self._pc_mask = (entries >> history_bits) - 1
        self._counters = bytearray([1]) * entries
        self._history = 0

    def _index(self, pc: int) -> int:
        pc_bits = (pc >> 2) & self._pc_mask
        return (pc_bits << self._history_bits) | self._history

    def predict(self, pc: int) -> bool:
        """Predicted direction for the branch at *pc*."""
        return self._counters[self._index(pc)] >= 2

    def update(self, pc: int, taken: bool) -> None:
        """Train the selected counter, then shift the history register."""
        idx = self._index(pc)
        value = self._counters[idx]
        if taken:
            if value < 3:
                self._counters[idx] = value + 1
        elif value > 0:
            self._counters[idx] = value - 1
        self._history = ((self._history << 1) | int(taken)) & (
            self._history_mask
        )

    def predict_and_update(self, pc: int, taken: bool) -> bool:
        """Predict for *pc*, then train with *taken* — one table walk."""
        counters = self._counters
        idx = (((pc >> 2) & self._pc_mask) << self._history_bits) | (
            self._history
        )
        value = counters[idx]
        if taken:
            if value < 3:
                counters[idx] = value + 1
        elif value > 0:
            counters[idx] = value - 1
        self._history = ((self._history << 1) | int(taken)) & (
            self._history_mask
        )
        return value >= 2

    @property
    def history(self) -> int:
        """Current global history register contents (for tests)."""
        return self._history

    @property
    def entries(self) -> int:
        return self._entries
