"""Return-address stack (64 entries per Table 2)."""

from __future__ import annotations

from typing import List, Optional


class ReturnAddressStack:
    """Circular call/return stack; old entries fall off when full."""

    def __init__(self, entries: int = 64) -> None:
        if entries < 1:
            raise ValueError("RAS needs at least one entry")
        self._entries = entries
        self._stack: List[int] = []

    def push(self, return_address: int) -> None:
        """Record the return address of a call."""
        self._stack.append(return_address)
        if len(self._stack) > self._entries:
            # Overflow discards the oldest entry, like a hardware RAS.
            self._stack.pop(0)

    def pop(self) -> Optional[int]:
        """Predicted return target, or None when the stack is empty."""
        if self._stack:
            return self._stack.pop()
        return None

    def __len__(self) -> int:
        return len(self._stack)

    def clear(self) -> None:
        self._stack.clear()
