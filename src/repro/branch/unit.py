"""Front-end branch unit: direction predictor + BTB + RAS glue.

The timing simulator is trace-driven: the actual outcome of every branch
is known from functional execution. The branch unit's job is to decide,
per dynamic branch, whether the front end *would have* predicted it
correctly — mispredictions turn into fetch-redirect bubbles charged when
the branch resolves.
"""

from __future__ import annotations

from typing import Optional

from repro.branch.btb import BranchTargetBuffer
from repro.branch.combined import CombinedPredictor
from repro.branch.ras import ReturnAddressStack
from repro.config.processor import BranchPredictorConfig
from repro.isa.instruction import DynInst
from repro.isa.opcodes import OpClass


class BranchPrediction:
    """Outcome of predicting one dynamic branch.

    A plain slotted class rather than a frozen dataclass: one is built
    per fetched branch and the frozen-init ``object.__setattr__`` path
    is measurable there.
    """

    __slots__ = ("predicted_taken", "predicted_target", "correct")

    def __init__(
        self,
        predicted_taken: bool,
        predicted_target: Optional[int],
        correct: bool,
    ) -> None:
        self.predicted_taken = predicted_taken
        self.predicted_target = predicted_target
        self.correct = correct

    def __repr__(self) -> str:
        return (
            f"BranchPrediction(predicted_taken={self.predicted_taken!r}, "
            f"predicted_target={self.predicted_target!r}, "
            f"correct={self.correct!r})"
        )


class BranchUnit:
    """Predicts and trains on branches as they are fetched."""

    def __init__(self, config: Optional[BranchPredictorConfig] = None):
        cfg = config or BranchPredictorConfig()
        self.direction = CombinedPredictor(
            meta_entries=cfg.meta_entries,
            bimodal_entries=cfg.bimodal_entries,
            gselect_entries=cfg.gselect_entries,
            history_bits=cfg.global_history_bits,
        )
        self.btb = BranchTargetBuffer(cfg.btb_entries, cfg.btb_assoc)
        self.ras = ReturnAddressStack(cfg.ras_entries)
        self.predictions = 0
        self.mispredictions = 0

    def predict_and_train(self, inst: DynInst) -> BranchPrediction:
        """Predict the dynamic branch *inst* and train with its outcome.

        ``inst.taken`` and ``inst.target`` (from functional execution) are
        the ground truth. The returned prediction says whether the front
        end would have steered fetch correctly.
        """
        return BranchPrediction(*self.predict_and_train_raw(
            inst.pc, inst.op, inst.taken, inst.target
        ))

    def predict_and_train_raw(
        self,
        pc: int,
        op: OpClass,
        taken,
        actual_target: Optional[int],
    ):
        """Scalar core of :meth:`predict_and_train`.

        Takes the branch's fields directly so column-driven callers
        (the vector backend) can predict without materializing a
        ``DynInst``. Returns ``(predicted_taken, predicted_target,
        correct)``.
        """
        actual_taken = bool(taken)

        if op is OpClass.BRANCH:
            predicted_taken = self.direction.predict_and_train(
                pc, actual_taken
            )
            predicted_target = self.btb.lookup(pc)
            if actual_taken and actual_target is not None:
                self.btb.update(pc, actual_target)
            correct = predicted_taken == actual_taken and (
                not actual_taken or predicted_target == actual_target
            )
        elif op is OpClass.CALL:
            predicted_taken = True
            predicted_target = self.btb.lookup(pc)
            if actual_target is not None:
                self.btb.update(pc, actual_target)
            # Return address: the instruction after the call.
            self.ras.push(pc + 4)
            correct = predicted_target == actual_target
        elif op is OpClass.RETURN:
            predicted_taken = True
            predicted_target = self.ras.pop()
            correct = predicted_target == actual_target
        elif op is OpClass.JUMP:
            predicted_taken = True
            predicted_target = self.btb.lookup(pc)
            if actual_target is not None:
                self.btb.update(pc, actual_target)
            correct = predicted_target == actual_target
        else:
            raise ValueError(f"not a branch-class op: {op!r}")

        self.predictions += 1
        if not correct:
            self.mispredictions += 1
        return predicted_taken, predicted_target, correct

    @property
    def misprediction_rate(self) -> float:
        if not self.predictions:
            return 0.0
        return self.mispredictions / self.predictions
