"""Branch target buffer: set-associative PC -> target cache (2K entries)."""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple


class BranchTargetBuffer:
    """LRU set-associative target buffer."""

    def __init__(self, entries: int = 2048, assoc: int = 2) -> None:
        if entries % assoc:
            raise ValueError("entries must be divisible by associativity")
        sets = entries // assoc
        if sets & (sets - 1):
            raise ValueError("set count must be a power of two")
        self._sets = sets
        self._assoc = assoc
        # Each set: list of (tag, target) in LRU order (front = MRU).
        self._table: List[List[Tuple[int, int]]] = [
            [] for _ in range(sets)
        ]
        self.hits = 0
        self.misses = 0

    def _locate(self, pc: int) -> Tuple[int, int]:
        index = (pc >> 2) & (self._sets - 1)
        tag = pc >> 2
        return index, tag

    def lookup(self, pc: int) -> Optional[int]:
        """Predicted target for *pc*, or None on a BTB miss."""
        index, tag = self._locate(pc)
        ways = self._table[index]
        for i, (way_tag, target) in enumerate(ways):
            if way_tag == tag:
                if i:
                    ways.insert(0, ways.pop(i))
                self.hits += 1
                return target
        self.misses += 1
        return None

    def update(self, pc: int, target: int) -> None:
        """Install or refresh the target for *pc* (LRU replacement)."""
        index, tag = self._locate(pc)
        ways = self._table[index]
        for i, (way_tag, _) in enumerate(ways):
            if way_tag == tag:
                ways.pop(i)
                break
        ways.insert(0, (tag, target))
        if len(ways) > self._assoc:
            ways.pop()

    def occupancy(self) -> Dict[int, int]:
        """Set index -> number of valid ways (diagnostics)."""
        return {i: len(ways) for i, ways in enumerate(self._table) if ways}
