"""Branch prediction (Table 2): McFarling combined predictor, BTB, RAS."""

from repro.branch.bimodal import BimodalPredictor, SaturatingCounter
from repro.branch.gselect import GselectPredictor
from repro.branch.combined import CombinedPredictor
from repro.branch.btb import BranchTargetBuffer
from repro.branch.ras import ReturnAddressStack
from repro.branch.unit import BranchUnit, BranchPrediction

__all__ = [
    "BimodalPredictor",
    "SaturatingCounter",
    "GselectPredictor",
    "CombinedPredictor",
    "BranchTargetBuffer",
    "ReturnAddressStack",
    "BranchUnit",
    "BranchPrediction",
]
