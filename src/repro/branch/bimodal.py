"""Two-bit saturating-counter (bimodal) direction predictor."""

from __future__ import annotations


class SaturatingCounter:
    """An n-bit saturating counter with a taken/not-taken threshold."""

    __slots__ = ("value", "_maximum", "_threshold")

    def __init__(self, bits: int = 2, initial: int = 1) -> None:
        if bits < 1:
            raise ValueError("counter needs at least one bit")
        self._maximum = (1 << bits) - 1
        self._threshold = 1 << (bits - 1)
        if not 0 <= initial <= self._maximum:
            raise ValueError("initial value out of range")
        self.value = initial

    @property
    def taken(self) -> bool:
        """Predicted direction: True when in the upper half."""
        return self.value >= self._threshold

    def update(self, taken: bool) -> None:
        """Strengthen toward the observed direction."""
        if taken:
            if self.value < self._maximum:
                self.value += 1
        elif self.value > 0:
            self.value -= 1

    def reset(self, value: int = 1) -> None:
        self.value = value


class BimodalPredictor:
    """PC-indexed table of 2-bit counters (Table 2's first predictor)."""

    def __init__(self, entries: int = 64 * 1024) -> None:
        if entries & (entries - 1):
            raise ValueError("entry count must be a power of two")
        self._mask = entries - 1
        # Counters stored as plain ints for speed; 1 = weakly not-taken.
        self._counters = bytearray([1]) * entries

    def _index(self, pc: int) -> int:
        return (pc >> 2) & self._mask

    def predict(self, pc: int) -> bool:
        """Predicted direction for the branch at *pc*."""
        return self._counters[self._index(pc)] >= 2

    def update(self, pc: int, taken: bool) -> None:
        """Train the counter for *pc* with the resolved direction."""
        idx = self._index(pc)
        value = self._counters[idx]
        if taken:
            if value < 3:
                self._counters[idx] = value + 1
        elif value > 0:
            self._counters[idx] = value - 1

    def predict_and_update(self, pc: int, taken: bool) -> bool:
        """Predict for *pc*, then train with *taken* — one table walk."""
        counters = self._counters
        idx = (pc >> 2) & self._mask
        value = counters[idx]
        if taken:
            if value < 3:
                counters[idx] = value + 1
        elif value > 0:
            counters[idx] = value - 1
        return value >= 2

    @property
    def entries(self) -> int:
        return self._mask + 1
