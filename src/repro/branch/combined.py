"""McFarling combined (tournament) direction predictor.

Table 2: "64K-entry combined predictor. Selector uses 2-bit counters.
1st predictor: 2-bit counter based. 2nd predictor: Gselect with 5-bit
global history."
"""

from __future__ import annotations

from repro.branch.bimodal import BimodalPredictor
from repro.branch.gselect import GselectPredictor


class CombinedPredictor:
    """Selector chooses between a bimodal and a Gselect component."""

    def __init__(
        self,
        meta_entries: int = 64 * 1024,
        bimodal_entries: int = 64 * 1024,
        gselect_entries: int = 64 * 1024,
        history_bits: int = 5,
    ) -> None:
        if meta_entries & (meta_entries - 1):
            raise ValueError("selector entry count must be a power of two")
        self._meta_mask = meta_entries - 1
        # Selector counters: >= 2 means "trust gselect".
        self._meta = bytearray([1]) * meta_entries
        self.bimodal = BimodalPredictor(bimodal_entries)
        self.gselect = GselectPredictor(gselect_entries, history_bits)

    def _meta_index(self, pc: int) -> int:
        return (pc >> 2) & self._meta_mask

    def predict(self, pc: int) -> bool:
        """Predicted direction for the branch at *pc*."""
        if self._meta[self._meta_index(pc)] >= 2:
            return self.gselect.predict(pc)
        return self.bimodal.predict(pc)

    def predict_and_train(self, pc: int, taken: bool) -> bool:
        """``predict`` then ``update`` in one table walk per component.

        The front end calls this for every conditional branch; fusing
        the pair halves the index computations and table reads versus
        predict() + update().
        """
        meta = self._meta
        idx = (pc >> 2) & self._meta_mask
        use_gselect = meta[idx] >= 2
        bimodal_taken = self.bimodal.predict_and_update(pc, taken)
        gselect_taken = self.gselect.predict_and_update(pc, taken)
        if bimodal_taken != gselect_taken:
            # Exactly one component is correct; train the selector.
            value = meta[idx]
            if gselect_taken == taken:
                if value < 3:
                    meta[idx] = value + 1
            elif value > 0:
                meta[idx] = value - 1
        return gselect_taken if use_gselect else bimodal_taken

    def update(self, pc: int, taken: bool) -> None:
        """Train both components and the selector with the outcome."""
        bimodal_correct = self.bimodal.predict(pc) == taken
        gselect_correct = self.gselect.predict(pc) == taken
        if bimodal_correct != gselect_correct:
            idx = self._meta_index(pc)
            value = self._meta[idx]
            if gselect_correct:
                if value < 3:
                    self._meta[idx] = value + 1
            elif value > 0:
                self._meta[idx] = value - 1
        self.bimodal.update(pc, taken)
        self.gselect.update(pc, taken)
