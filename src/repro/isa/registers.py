"""Architectural register namespace.

The MIPS-I machine the paper targets has 32 integer registers, 32
floating-point registers, and the HI / LO / FSR special registers
(Table 2: "32 integer, 32 floating point, HI, LO and FSR"). We flatten
all of them into a single integer namespace so dependence tracking is a
plain array lookup:

==========  =============
indices     registers
==========  =============
0 .. 31     integer $0..$31 ($0 hardwired to zero)
32 .. 63    floating point $f0..$f31
64          HI
65          LO
66          FSR
==========  =============
"""

from __future__ import annotations

from typing import Dict, List

NUM_INT_REGS = 32
NUM_FP_REGS = 32

#: Integer register 0 — hardwired zero, never a real dependence.
REG_ZERO = 0

REG_HI = NUM_INT_REGS + NUM_FP_REGS  # 64
REG_LO = REG_HI + 1  # 65
REG_FSR = REG_LO + 1  # 66

TOTAL_REGS = REG_FSR + 1  # 67


def int_reg(n: int) -> int:
    """Flat index of integer register ``$n``."""
    if not 0 <= n < NUM_INT_REGS:
        raise ValueError(f"integer register out of range: {n}")
    return n


def fp_reg(n: int) -> int:
    """Flat index of floating-point register ``$f{n}``."""
    if not 0 <= n < NUM_FP_REGS:
        raise ValueError(f"fp register out of range: {n}")
    return NUM_INT_REGS + n


def register_name(index: int) -> str:
    """Human-readable name for a flat register index."""
    if 0 <= index < NUM_INT_REGS:
        return f"$r{index}"
    if NUM_INT_REGS <= index < NUM_INT_REGS + NUM_FP_REGS:
        return f"$f{index - NUM_INT_REGS}"
    if index == REG_HI:
        return "$hi"
    if index == REG_LO:
        return "$lo"
    if index == REG_FSR:
        return "$fsr"
    raise ValueError(f"register index out of range: {index}")


class RegisterFile:
    """Architectural register state for functional execution.

    Used by the functional VM (``repro.vm``) when it executes programs to
    produce traces. The timing core never consults values — only the
    dependence structure — so this class is deliberately simple.
    """

    def __init__(self) -> None:
        self._values: List[int] = [0] * TOTAL_REGS

    def read(self, index: int) -> int:
        """Read register *index* (``$r0`` always reads 0)."""
        if index == REG_ZERO:
            return 0
        return self._values[index]

    def write(self, index: int, value: int) -> None:
        """Write register *index* (writes to ``$r0`` are discarded)."""
        if index == REG_ZERO:
            return
        if not 0 <= index < TOTAL_REGS:
            raise ValueError(f"register index out of range: {index}")
        self._values[index] = int(value)

    def snapshot(self) -> Dict[str, int]:
        """Name → value mapping of all non-zero registers (debugging)."""
        return {
            register_name(i): v
            for i, v in enumerate(self._values)
            if v != 0
        }

    def reset(self) -> None:
        """Zero every register."""
        for i in range(TOTAL_REGS):
            self._values[i] = 0
