"""MIPS-like instruction-set model used by the simulator.

The paper compiled SPEC'95 for the MIPS-I architecture; we model a
MIPS-like register file (32 integer, 32 floating point, plus HI/LO/FSR)
and classify instructions into the functional-unit classes whose
latencies Table 2 of the paper specifies.
"""

from repro.isa.opcodes import (
    OpClass,
    is_branch,
    is_load,
    is_mem,
    is_store,
    MEM_CLASSES,
    BRANCH_CLASSES,
)
from repro.isa.registers import (
    RegisterFile,
    REG_ZERO,
    NUM_INT_REGS,
    NUM_FP_REGS,
    REG_HI,
    REG_LO,
    REG_FSR,
    TOTAL_REGS,
    int_reg,
    fp_reg,
    register_name,
)
from repro.isa.instruction import StaticInst, DynInst
from repro.isa.latencies import LatencyTable, DEFAULT_LATENCIES

__all__ = [
    "OpClass",
    "is_branch",
    "is_load",
    "is_mem",
    "is_store",
    "MEM_CLASSES",
    "BRANCH_CLASSES",
    "RegisterFile",
    "REG_ZERO",
    "NUM_INT_REGS",
    "NUM_FP_REGS",
    "REG_HI",
    "REG_LO",
    "REG_FSR",
    "TOTAL_REGS",
    "int_reg",
    "fp_reg",
    "register_name",
    "StaticInst",
    "DynInst",
    "LatencyTable",
    "DEFAULT_LATENCIES",
]
