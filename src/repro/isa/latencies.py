"""Functional-unit execution latencies (Table 2 of the paper).

Integer: 1 cycle except multiplication (4) and division (12).
Floating point: 2 cycles add/sub/compare, 4 cycles SP multiply, 5 cycles
DP multiply, 12 cycles SP divide, 15 cycles DP divide. Loads and stores
take 1 cycle of address generation before entering the memory system;
branches resolve in 1 cycle once their operands are ready.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.isa.opcodes import OpClass

_TABLE2_LATENCIES: Dict[OpClass, int] = {
    OpClass.IALU: 1,
    OpClass.IMUL: 4,
    OpClass.IDIV: 12,
    OpClass.FADD: 2,
    OpClass.FMUL_SP: 4,
    OpClass.FMUL_DP: 5,
    OpClass.FDIV_SP: 12,
    OpClass.FDIV_DP: 15,
    OpClass.LOAD: 1,  # address-generation cycle; memory time is separate
    OpClass.STORE: 1,  # address-generation cycle
    OpClass.BRANCH: 1,
    OpClass.JUMP: 1,
    OpClass.CALL: 1,
    OpClass.RETURN: 1,
    OpClass.NOP: 1,
}


@dataclass(frozen=True)
class LatencyTable:
    """Maps an :class:`OpClass` to its execution latency in cycles."""

    overrides: Dict[OpClass, int] = field(default_factory=dict)

    def latency(self, op: OpClass) -> int:
        """Execution latency of *op* in cycles (>= 1)."""
        if op in self.overrides:
            return self.overrides[op]
        return _TABLE2_LATENCIES[op]

    def with_override(self, op: OpClass, cycles: int) -> "LatencyTable":
        """A new table with *op*'s latency replaced by *cycles*."""
        if cycles < 1:
            raise ValueError("latency must be at least 1 cycle")
        merged = dict(self.overrides)
        merged[op] = cycles
        return LatencyTable(overrides=merged)


#: The paper's Table 2 latencies, with no overrides.
DEFAULT_LATENCIES = LatencyTable()
