"""Instruction classification.

The timing simulator does not need full MIPS semantics; it needs to know,
for every dynamic instruction, which functional-unit class executes it,
whether it references memory, and whether it redirects control flow.
``OpClass`` captures exactly that. The functional VM (``repro.vm``)
additionally carries concrete mnemonics, but those all map down to one of
these classes before the timing core sees them.
"""

from __future__ import annotations

import enum


class OpClass(enum.Enum):
    """Functional-unit class of an instruction (Table 2 of the paper)."""

    IALU = "ialu"  # integer add/sub/logic/shift/compare, 1 cycle
    IMUL = "imul"  # integer multiply, 4 cycles
    IDIV = "idiv"  # integer divide, 12 cycles
    FADD = "fadd"  # FP add/sub/compare (SP and DP), 2 cycles
    FMUL_SP = "fmul_sp"  # FP multiply single precision, 4 cycles
    FMUL_DP = "fmul_dp"  # FP multiply double precision, 5 cycles
    FDIV_SP = "fdiv_sp"  # FP divide single precision, 12 cycles
    FDIV_DP = "fdiv_dp"  # FP divide double precision, 15 cycles
    LOAD = "load"  # memory read
    STORE = "store"  # memory write
    BRANCH = "branch"  # conditional branch
    JUMP = "jump"  # unconditional jump (direct or indirect)
    CALL = "call"  # subroutine call (pushes return-address stack)
    RETURN = "return"  # subroutine return (pops return-address stack)
    NOP = "nop"  # no operation

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"OpClass.{self.name}"


#: Classes that access data memory.
MEM_CLASSES = frozenset({OpClass.LOAD, OpClass.STORE})

#: Classes that may redirect the fetch stream.
BRANCH_CLASSES = frozenset(
    {OpClass.BRANCH, OpClass.JUMP, OpClass.CALL, OpClass.RETURN}
)

#: Classes executed by the integer ALUs (single-cycle pool).
INT_CLASSES = frozenset({OpClass.IALU, OpClass.IMUL, OpClass.IDIV})

#: Classes executed by the floating-point units.
FP_CLASSES = frozenset(
    {
        OpClass.FADD,
        OpClass.FMUL_SP,
        OpClass.FMUL_DP,
        OpClass.FDIV_SP,
        OpClass.FDIV_DP,
    }
)


# Precomputed per-member flags: hot paths read ``op.mem_class`` etc. as
# a plain attribute instead of hashing the member into a frozenset
# (Enum.__hash__ is a Python-level call and shows up in profiles).
for _op in OpClass:
    _op.mem_class = _op in MEM_CLASSES
    _op.branch_class = _op in BRANCH_CLASSES
    _op.fp_class = _op in FP_CLASSES
del _op


def is_load(op: OpClass) -> bool:
    """Return True if *op* reads data memory."""
    return op is OpClass.LOAD


def is_store(op: OpClass) -> bool:
    """Return True if *op* writes data memory."""
    return op is OpClass.STORE


def is_mem(op: OpClass) -> bool:
    """Return True if *op* references data memory."""
    return op in MEM_CLASSES


def is_branch(op: OpClass) -> bool:
    """Return True if *op* may redirect control flow."""
    return op in BRANCH_CLASSES
