"""Static and dynamic instruction records.

``StaticInst`` is one instruction of a *program* (a fixed PC). ``DynInst``
is one element of the *dynamic execution trace*: a specific execution of a
static instruction, with its runtime-computed effective address, value and
branch outcome attached. The timing simulator consumes ``DynInst`` streams;
because the stream is in program order, register renaming reduces to
"depend on the youngest older writer of each source register".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.isa.opcodes import OpClass, is_branch, is_mem


@dataclass(frozen=True)
class StaticInst:
    """A static instruction: what the program text says at one PC."""

    pc: int
    op: OpClass
    dest: Optional[int] = None
    srcs: Tuple[int, ...] = ()
    #: Free-form mnemonic for diagnostics (assembler fills this in).
    mnemonic: str = ""

    def __post_init__(self) -> None:
        if self.dest is not None and self.dest < 0:
            raise ValueError("dest register must be non-negative")
        for src in self.srcs:
            if src < 0:
                raise ValueError("source registers must be non-negative")


@dataclass
class DynInst:
    """One dynamic instruction in the execution trace.

    Attributes:
        seq: dynamic sequence number; strictly increasing in program order.
        pc: static program counter of the instruction.
        op: functional-unit class.
        dest: flat destination register index, or None.
        srcs: flat source register indices (empty tuple if none).
        addr: effective memory address (loads/stores only).
        size: access size in bytes (loads/stores only).
        value: value loaded or stored, from functional execution.
        taken: branch outcome (branch classes only).
        target: next PC actually executed (branch classes only).
    """

    seq: int
    pc: int
    op: OpClass
    dest: Optional[int] = None
    srcs: Tuple[int, ...] = ()
    addr: Optional[int] = None
    size: int = 4
    value: Optional[int] = None
    taken: Optional[bool] = None
    target: Optional[int] = None

    def __post_init__(self) -> None:
        if is_mem(self.op) and self.addr is None:
            raise ValueError(
                f"memory instruction at pc={self.pc:#x} has no address"
            )
        if self.size <= 0:
            raise ValueError("access size must be positive")

    @property
    def is_load(self) -> bool:
        return self.op is OpClass.LOAD

    @property
    def is_store(self) -> bool:
        return self.op is OpClass.STORE

    @property
    def is_mem(self) -> bool:
        return is_mem(self.op)

    @property
    def is_branch(self) -> bool:
        return is_branch(self.op)

    def overlaps(self, other: "DynInst") -> bool:
        """True if this access and *other* touch any common byte."""
        if self.addr is None or other.addr is None:
            return False
        return (
            self.addr < other.addr + other.size
            and other.addr < self.addr + self.size
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        bits = [f"seq={self.seq}", f"pc={self.pc:#x}", self.op.name]
        if self.addr is not None:
            bits.append(f"addr={self.addr:#x}")
        if self.taken is not None:
            bits.append("taken" if self.taken else "not-taken")
        return f"<DynInst {' '.join(bits)}>"


@dataclass
class TraceSummary:
    """Aggregate composition of a trace (used for calibration checks)."""

    instructions: int = 0
    loads: int = 0
    stores: int = 0
    branches: int = 0
    _classes: dict = field(default_factory=dict)

    def add(self, inst: DynInst) -> None:
        self.instructions += 1
        if inst.is_load:
            self.loads += 1
        elif inst.is_store:
            self.stores += 1
        if inst.is_branch:
            self.branches += 1
        self._classes[inst.op] = self._classes.get(inst.op, 0) + 1

    @property
    def load_fraction(self) -> float:
        return self.loads / self.instructions if self.instructions else 0.0

    @property
    def store_fraction(self) -> float:
        return self.stores / self.instructions if self.instructions else 0.0

    def class_count(self, op: OpClass) -> int:
        return self._classes.get(op, 0)
