"""Cycle-level out-of-order core (centralized, continuous window)."""

from repro.core.result import SimResult
from repro.core.window import Entry, Window
from repro.core.processor import Processor, simulate
from repro.core.timeline import InstructionTimeline, TimelineRecorder
from repro.core.telemetry import Telemetry

__all__ = [
    "SimResult",
    "Entry",
    "Window",
    "Processor",
    "simulate",
    "InstructionTimeline",
    "TimelineRecorder",
    "Telemetry",
]
