"""Load/store queue helpers: unexecuted-store tracking and mem pools.

Several speculation policies gate loads on properties of *older stores
that have not yet executed*: NAS/NO and NAS/SEL wait for all of them,
NAS/STORE waits for predicted (barrier) ones. Dispatch is in program
order and squash truncates from the young end, so a sorted list with
binary-search removal gives O(log n) operations.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Optional

from repro.core.window import Entry


class UnexecutedStoreTracker:
    """Sorted multiset of in-window store seqs that have not executed."""

    def __init__(self) -> None:
        self._seqs: List[int] = []

    def on_dispatch(self, seq: int) -> None:
        if self._seqs and seq <= self._seqs[-1]:
            raise ValueError("stores must dispatch in program order")
        self._seqs.append(seq)

    def on_execute(self, seq: int) -> None:
        index = bisect.bisect_left(self._seqs, seq)
        if index < len(self._seqs) and self._seqs[index] == seq:
            self._seqs.pop(index)

    def squash(self, from_seq: int) -> None:
        cut = bisect.bisect_left(self._seqs, from_seq)
        del self._seqs[cut:]

    def any_older_than(self, seq: int) -> bool:
        """Is any tracked store older than *seq*?"""
        return bool(self._seqs) and self._seqs[0] < seq

    def oldest(self) -> Optional[int]:
        return self._seqs[0] if self._seqs else None

    def __len__(self) -> int:
        return len(self._seqs)


class MemPool:
    """Seq-ordered pool of memory operations awaiting a port/gate.

    Iteration yields live entries oldest-first without removing them
    (gates may keep an old load blocked while younger ones proceed).
    Entries are kept in a seq-sorted list — the hot per-cycle scan in
    ``_issue_memory`` then needs no sort at all — with removal done
    lazily by flag and compacted on the next iteration. A monotonic
    push counter breaks ties when a squashed seq re-enters before the
    stale record is compacted away.
    """

    def __init__(self, name: str = "mem-pool", observer=None) -> None:
        self.name = name
        #: Optional observability bus (repro.observe): push depths feed
        #: the bus's high-water marks.
        self.observer = observer
        self._items: List = []  # (seq, push_serial, entry), seq-sorted
        self._serial = 0
        self._dead = 0
        #: Memoized ``live_entries`` result; most cycles nothing enters
        #: or leaves the pool, so the filtered list can be reused. Pool
        #: mutations clear it; squashes must call :meth:`invalidate`
        #: (squashing only flags the entry, the pool is not told).
        self._live: Optional[List[Entry]] = None

    def push(self, entry: Entry) -> None:
        if entry.in_mem_pool or entry.squashed:
            return
        entry.in_mem_pool = True
        self._live = None
        self._serial += 1
        item = (entry.seq, self._serial, entry)
        items = self._items
        if not items or entry.seq > items[-1][0]:
            items.append(item)
        else:
            bisect.insort(items, item)
        if self.observer is not None:
            self.observer.note_depth(
                self.name, len(items) - self._dead
            )

    def __len__(self) -> int:
        return len(self._items) - self._dead

    def __bool__(self) -> bool:
        return len(self._items) > self._dead

    def live_entries(self) -> List[Entry]:
        """Live entries oldest-first (also prunes squashed ones)."""
        live = self._live
        if live is not None:
            return live
        items = self._items
        if not items:
            self._live = live = []
            return live
        live = [
            e for _, _, e in items if e.in_mem_pool and not e.squashed
        ]
        if len(live) != len(items):
            self._items = [(e.seq, 0, e) for e in live]
            self._dead = 0
        self._live = live
        return live

    def remove(self, entry: Entry) -> None:
        """Mark *entry* as no longer pooled (lazily removed)."""
        if entry.in_mem_pool:
            entry.in_mem_pool = False
            self._dead += 1
            self._live = None

    def invalidate(self) -> None:
        """Drop the memoized live list (call after a squash)."""
        self._live = None


class SynonymTracker:
    """In-window producer stores per synonym (NAS/SYNC bookkeeping)."""

    def __init__(self) -> None:
        self._producers: Dict[int, List[Entry]] = {}

    def add_producer(self, synonym: int, entry: Entry) -> None:
        self._producers.setdefault(synonym, []).append(entry)

    def closest_older_producer(
        self, synonym: int, seq: int
    ) -> Optional[Entry]:
        """Youngest live producer of *synonym* older than *seq*."""
        best: Optional[Entry] = None
        for entry in self._producers.get(synonym, ()):
            if entry.squashed or entry.seq >= seq:
                continue
            if best is None or entry.seq > best.seq:
                best = entry
        return best

    def retire(self, synonym: Optional[int], entry: Entry) -> None:
        if synonym is None:
            return
        producers = self._producers.get(synonym)
        if producers and entry in producers:
            producers.remove(entry)
            if not producers:
                del self._producers[synonym]

    def squash(self, from_seq: int) -> None:
        for synonym in list(self._producers):
            kept = [
                e for e in self._producers[synonym] if e.seq < from_seq
            ]
            if kept:
                self._producers[synonym] = kept
            else:
                del self._producers[synonym]
