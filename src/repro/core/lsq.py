"""Load/store queue helpers: unexecuted-store tracking and mem pools.

Several speculation policies gate loads on properties of *older stores
that have not yet executed*: NAS/NO and NAS/SEL wait for all of them,
NAS/STORE waits for predicted (barrier) ones. Dispatch is in program
order and squash truncates from the young end, so a sorted list with
binary-search removal gives O(log n) operations.
"""

from __future__ import annotations

import bisect
import heapq
from typing import Dict, List, Optional

from repro.core.window import Entry


class UnexecutedStoreTracker:
    """Sorted multiset of in-window store seqs that have not executed."""

    def __init__(self) -> None:
        self._seqs: List[int] = []

    def on_dispatch(self, seq: int) -> None:
        if self._seqs and seq <= self._seqs[-1]:
            raise ValueError("stores must dispatch in program order")
        self._seqs.append(seq)

    def on_execute(self, seq: int) -> None:
        index = bisect.bisect_left(self._seqs, seq)
        if index < len(self._seqs) and self._seqs[index] == seq:
            self._seqs.pop(index)

    def squash(self, from_seq: int) -> None:
        cut = bisect.bisect_left(self._seqs, from_seq)
        del self._seqs[cut:]

    def any_older_than(self, seq: int) -> bool:
        """Is any tracked store older than *seq*?"""
        return bool(self._seqs) and self._seqs[0] < seq

    def oldest(self) -> Optional[int]:
        return self._seqs[0] if self._seqs else None

    def __len__(self) -> int:
        return len(self._seqs)


class MemPool:
    """Seq-ordered pool of memory operations awaiting a port/gate.

    Iteration yields live entries oldest-first without removing them
    (gates may keep an old load blocked while younger ones proceed).
    """

    def __init__(self) -> None:
        self._heap: List = []

    def push(self, entry: Entry) -> None:
        if entry.in_mem_pool or entry.squashed:
            return
        entry.in_mem_pool = True
        heapq.heappush(self._heap, (entry.seq, entry))

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def live_entries(self) -> List[Entry]:
        """Live entries oldest-first (also prunes squashed ones)."""
        if not self._heap:
            return []
        alive = [
            (seq, entry) for seq, entry in self._heap if not entry.squashed
        ]
        if len(alive) != len(self._heap):
            self._heap = alive
            heapq.heapify(self._heap)
        return [entry for _, entry in sorted(alive)]

    def remove(self, entry: Entry) -> None:
        """Mark *entry* as no longer pooled (lazily removed)."""
        entry.in_mem_pool = False
        self._heap = [
            (seq, e) for seq, e in self._heap if e is not entry
        ]
        heapq.heapify(self._heap)


class SynonymTracker:
    """In-window producer stores per synonym (NAS/SYNC bookkeeping)."""

    def __init__(self) -> None:
        self._producers: Dict[int, List[Entry]] = {}

    def add_producer(self, synonym: int, entry: Entry) -> None:
        self._producers.setdefault(synonym, []).append(entry)

    def closest_older_producer(
        self, synonym: int, seq: int
    ) -> Optional[Entry]:
        """Youngest live producer of *synonym* older than *seq*."""
        best: Optional[Entry] = None
        for entry in self._producers.get(synonym, ()):
            if entry.squashed or entry.seq >= seq:
                continue
            if best is None or entry.seq > best.seq:
                best = entry
        return best

    def retire(self, synonym: Optional[int], entry: Entry) -> None:
        if synonym is None:
            return
        producers = self._producers.get(synonym)
        if producers and entry in producers:
            producers.remove(entry)
            if not producers:
                del self._producers[synonym]

    def squash(self, from_seq: int) -> None:
        for synonym in list(self._producers):
            kept = [
                e for e in self._producers[synonym] if e.seq < from_seq
            ]
            if kept:
                self._producers[synonym] = kept
            else:
                del self._producers[synonym]
