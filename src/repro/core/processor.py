"""The cycle-level simulator for the centralized, continuous window.

Event-assisted cycle loop: per active cycle the processor processes due
events (completions, store writes, address posts), commits, issues
(program-order priority), dispatches and fetches. Idle stretches (e.g.
cache-miss stalls) are skipped by fast-forwarding to the next event.

The memory dependence speculation policies (Section 2.1 of the paper)
gate the *memory access* of loads; everything else is common machinery.
"""

from __future__ import annotations

import gc
import heapq
from typing import Dict, List, Optional, Tuple

from repro.branch.unit import BranchUnit
from repro.config.processor import (
    ProcessorConfig,
    SchedulingModel,
    SpeculationPolicy,
)
from repro.core.fetch import FetchUnit
from repro.core.lsq import MemPool, SynonymTracker, UnexecutedStoreTracker
from repro.core.result import SimResult
from repro.core.scheduler import FunctionalUnits, ReadyPool
from repro.core.window import Entry, Window
from repro.isa.opcodes import OpClass
from repro.memdep.addr_scheduler import AddressScheduler
from repro.memdep.oracle import OracleDisambiguator
from repro.memdep.store_sets import StoreSetPredictor
from repro.memdep.sync import MDPT
from repro.memdep.tables import TwoBitPredictorTable
from repro.memdep.violation import ViolationDetector
from repro.memory.hierarchy import MemoryHierarchy
from repro.memory.store_buffer import StoreBuffer, StoreBufferEntry
from repro.trace.cursor import TraceCursor
from repro.trace.dependences import DependenceInfo, compute_dependence_info
from repro.trace.events import Trace
from repro.trace.sampling import SamplingPlan, make_sampling_plan

# Event kinds (heap entries are (cycle, serial, kind, entry)).
_EV_COMPLETE = 0
_EV_WRITE = 1
_EV_READY = 2
_EV_POST = 3

# Load-gate kinds. The speculation policy is fixed for a processor's
# lifetime, so the per-load gate is resolved to one of these small ints
# once in ``__init__`` and the policy logic is inlined in the
# ``_issue_memory`` scan instead of re-dispatching through an
# ``if policy is …`` chain for every pooled load every cycle.
_GATE_AS = 0
_GATE_OPEN = 1
_GATE_ALL_STORES = 2
_GATE_PREDICTED = 3
_GATE_BARRIER = 4
_GATE_SYNC = 5
_GATE_ORACLE = 6


class SimulationStuck(RuntimeError):
    """The cycle loop can make no further progress (a model bug)."""


def _entry_seq(entry: Entry) -> int:
    """Sort key for merging the load and store-write pools (AS mode)."""
    return entry.seq


class Processor:
    """One simulated machine bound to one trace."""

    def __init__(
        self,
        config: ProcessorConfig,
        trace: Trace,
        dep_info: Optional[Dict[int, DependenceInfo]] = None,
        timeline: Optional["TimelineRecorder"] = None,
        telemetry: Optional["Telemetry"] = None,
        observer=None,
    ) -> None:
        self.config = config
        self.trace = trace
        #: Optional pipeview recorder (repro.core.timeline).
        self.timeline = timeline
        #: Optional utilisation sampler (repro.core.telemetry).
        self.telemetry = telemetry
        #: Optional observability bus (repro.observe). Every hook is an
        #: ``if observer is not None`` guard, so a detached processor is
        #: bit-identical and within noise of the pre-hook simulator.
        if observer is None and config.observe:
            from repro.observe.bus import default_observer

            observer = default_observer(config)
        self.observer = observer
        self.dep_info = (
            dep_info if dep_info is not None
            else compute_dependence_info(trace)
        )
        self.oracle = OracleDisambiguator(trace, self.dep_info)
        self.hierarchy = MemoryHierarchy(config)
        self.branch_unit = BranchUnit(config.branch)

        memdep = config.memdep
        self.as_mode = memdep.scheduling is SchedulingModel.AS
        self.policy = memdep.policy
        self.predictor: Optional[TwoBitPredictorTable] = None
        self.mdpt: Optional[MDPT] = None
        if self.policy in (
            SpeculationPolicy.SELECTIVE, SpeculationPolicy.STORE_BARRIER
        ):
            self.predictor = TwoBitPredictorTable(
                entries=memdep.predictor_entries,
                assoc=memdep.predictor_assoc,
                threshold=memdep.confidence_threshold,
            )
        elif self.policy is SpeculationPolicy.SYNC:
            self.mdpt = MDPT(
                entries=memdep.predictor_entries,
                assoc=memdep.predictor_assoc,
            )
        self.store_sets: Optional[StoreSetPredictor] = None
        if self.policy is SpeculationPolicy.STORE_SETS:
            self.store_sets = StoreSetPredictor(
                ssit_entries=memdep.predictor_entries,
                lfst_entries=memdep.lfst_entries,
            )

        if self.as_mode:
            self._gate_kind = _GATE_AS
        elif self.policy is SpeculationPolicy.NAIVE:
            self._gate_kind = _GATE_OPEN
        elif self.policy is SpeculationPolicy.NO:
            self._gate_kind = _GATE_ALL_STORES
        elif self.policy is SpeculationPolicy.SELECTIVE:
            self._gate_kind = _GATE_PREDICTED
        elif self.policy is SpeculationPolicy.STORE_BARRIER:
            self._gate_kind = _GATE_BARRIER
        elif self.policy in (
            SpeculationPolicy.SYNC, SpeculationPolicy.STORE_SETS
        ):
            self._gate_kind = _GATE_SYNC
        elif self.policy is SpeculationPolicy.ORACLE:
            self._gate_kind = _GATE_ORACLE
        else:
            raise AssertionError(f"unhandled policy {self.policy}")

        # Hot-path bindings (immutable for the processor's lifetime).
        # The latency table is flattened into a plain dict so the issue
        # loop pays one lookup instead of an override check plus a
        # table fallback.
        self._latency_of = {
            op: config.latencies.latency(op) for op in OpClass
        }.__getitem__
        self._issue_width = config.window.issue_width
        self._scan_budget = config.window.issue_width * 3

        #: Monotonic machine time across segments (caches keep state).
        self.cycle = 0
        self._next_flush = memdep.flush_interval

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def run(self, plan: Optional[SamplingPlan] = None) -> SimResult:
        """Simulate the whole trace and return aggregated timing stats.

        With a :class:`SamplingPlan`, timing segments are simulated in
        detail and functional segments only keep the caches and branch
        predictors warm (the paper's Section 3.1 methodology).
        """
        if plan is None:
            plan = make_sampling_plan(len(self.trace))
        total = SimResult(
            config_label=self.config.label,
            benchmark=self.trace.name,
            suite=self.trace.suite,
        )
        # The cycle loop allocates heavily (entries, events) with almost
        # nothing becoming garbage mid-segment, so generational GC scans
        # are pure overhead (~10% of wall time). Pause collection for
        # the simulation; the final collection reclaims entry cycles.
        was_enabled = gc.isenabled()
        gc.disable()
        try:
            for segment in plan.segments:
                if segment.timing:
                    total.merge(
                        self._run_segment(segment.start, segment.stop)
                    )
                else:
                    self._warm_segment(segment.start, segment.stop)
        finally:
            if was_enabled:
                gc.enable()
        if self.observer is not None:
            total.extra["observe"] = self.observer.summary()
        self._snapshot_caches(total)
        return total

    # ------------------------------------------------------------------
    # functional warm-up (sampling)
    # ------------------------------------------------------------------

    def _warm_segment(self, start: int, stop: int) -> None:
        hierarchy = self.hierarchy
        icache_touch = hierarchy.icache.touch
        dcache_touch = hierarchy.dcache.touch
        l2_touch = hierarchy.l2.touch
        predict = self.branch_unit.predict_and_train
        instructions = self.trace.instructions
        block_shift = self.config.icache.block_bytes.bit_length() - 1
        last_block = -1
        for seq in range(start, stop):
            inst = instructions[seq]
            block = inst.pc >> block_shift
            if block != last_block:
                icache_touch(inst.pc)
                l2_touch(inst.pc)
                last_block = block
            op = inst.op
            if op.branch_class:
                predict(inst)
            elif op.mem_class:
                dcache_touch(inst.addr)
                l2_touch(inst.addr)
        # Functional intervals advance wall-clock time too (roughly one
        # instruction per cycle of untimed execution).
        self.cycle += max(1, (stop - start) // 2)

    # ------------------------------------------------------------------
    # timing simulation
    # ------------------------------------------------------------------

    def _run_segment(self, start: int, stop: int) -> SimResult:
        cfg = self.config
        stats = SimResult(
            config_label=cfg.label,
            benchmark=self.trace.name,
            suite=self.trace.suite,
        )
        self.stats = stats
        self.window = Window(cfg.window.size)
        self.cursor = TraceCursor(self.trace, start, stop)
        observer = self.observer
        self.fetch = FetchUnit(
            cfg, self.cursor, self.hierarchy, self.branch_unit
        )
        self.fetch.stalled_until = self.cycle
        self.fetch.observer = observer
        self.funits = FunctionalUnits(cfg.window)
        self.ready_pool = ReadyPool()
        self.load_pool = MemPool("load-pool", observer)
        self.store_write_pool = MemPool("store-write-pool", observer)
        self.store_buffer = StoreBuffer(
            cfg.window.store_buffer_size, observer
        )
        self.unexec_stores = UnexecutedStoreTracker()
        self.barrier_stores = UnexecutedStoreTracker()
        self.synonyms = SynonymTracker()
        self.detector = ViolationDetector()
        self.addr_sched = (
            AddressScheduler(cfg.memdep.addr_scheduler_latency, observer)
            if self.as_mode else None
        )
        self._events: List = []
        self._event_serial = 0
        #: Earliest future cycle hinted by a blocked memory op (min
        #: tracking replaces an append-per-blocked-entry hint list).
        self._hint: Optional[int] = None
        self._progress = False

        start_cycle = self.cycle
        branch_stats_base = (
            self.branch_unit.predictions,
            self.branch_unit.mispredictions,
        )

        fetch = self.fetch
        window = self.window
        events = self._events
        advance_clock = self._advance_clock
        process_events = self._process_events
        commit = self._commit
        begin_cycle = self.funits.begin_cycle
        issue_memory = self._issue_memory
        issue_exec = self._issue_exec
        funits = self.funits
        telemetry = self.telemetry
        dispatch = self._dispatch
        fetch_tick = fetch.tick
        maybe_flush = self._maybe_flush_tables

        if observer is not None:
            observer.begin_segment(self)
        while True:
            if fetch.done and window.empty and not events:
                break
            advance_clock()
            process_events()
            commit()
            # _issue, unrolled: one call layer per cycle matters here.
            begin_cycle(self.cycle)
            issue_memory()
            issue_exec()
            if telemetry is not None:
                telemetry.sample(
                    occupancy=len(window),
                    issued=funits.issued_this_cycle,
                    ports_used=funits.ports_used_this_cycle,
                )
            dispatch()
            if fetch_tick(self.cycle):
                self._progress = True
            if self.cycle >= self._next_flush:
                maybe_flush()
            if observer is not None:
                observer.end_cycle(self)

        stats.cycles = self.cycle - start_cycle
        stats.branch_predictions = (
            self.branch_unit.predictions - branch_stats_base[0]
        )
        stats.branch_mispredictions = (
            self.branch_unit.mispredictions - branch_stats_base[1]
        )
        stats.load_forwards = self.store_buffer.forwards
        return stats

    # -- clock -------------------------------------------------------------

    def _advance_clock(self) -> None:
        if self._progress or self.ready_pool:
            self._progress = False
            self.cycle += 1
            return
        best = self._hint
        self._hint = None
        if self._events:
            when = self._events[0][0]
            if best is None or when < best:
                best = when
        fetch = self.fetch
        nxt = fetch.next_dispatch_cycle()
        if nxt is not None and (best is None or nxt < best):
            best = nxt
        if (
            fetch.waiting_on_branch is None
            and not self.cursor.exhausted
            and len(fetch.buffer) < fetch._buffer_cap
        ):
            when = fetch.stalled_until
            if best is None or when < best:
                best = when
        if best is None:
            raise SimulationStuck(
                f"no progress possible at cycle {self.cycle} "
                f"(window={len(self.window)}, "
                f"loads={len(self.load_pool)}, "
                f"writes={len(self.store_write_pool)})"
            )
        nxt_cycle = self.cycle + 1
        self.cycle = best if best > nxt_cycle else nxt_cycle

    def _schedule(self, cycle: int, kind: int, entry: Entry) -> None:
        self._event_serial += 1
        heapq.heappush(
            self._events, (cycle, self._event_serial, kind, entry)
        )

    # -- events -------------------------------------------------------------

    def _process_events(self) -> None:
        events = self._events
        if not events or events[0][0] > self.cycle:
            return
        cycle = self.cycle
        pop = heapq.heappop
        ready_push = self.ready_pool.push
        while events and events[0][0] <= cycle:
            _, _, kind, entry = pop(events)
            if entry.squashed:
                continue
            if kind == _EV_READY:
                ready_push(entry)
            elif kind == _EV_COMPLETE:
                self._on_complete(entry)
            elif kind == _EV_WRITE:
                self._on_store_write(entry)
            elif kind == _EV_POST:
                self._progress = True  # wake gates waiting on visibility

    def _on_complete(self, entry: Entry) -> None:
        done = entry.complete_cycle
        if done is not None and done > self.cycle:
            # Selective re-execution pushed this completion out; the
            # stale event fires early — re-arm it at the new time.
            self._schedule(done, _EV_COMPLETE, entry)
            return
        entry.executed = True
        waiters = entry.waiters
        if waiters:
            maybe_ready = self._maybe_ready
            for waiter, is_data in waiters:
                if waiter.squashed:
                    continue
                if is_data:
                    waiter.data_pending -= 1
                    if done > waiter.data_ready:
                        waiter.data_ready = done
                else:
                    waiter.addr_pending -= 1
                    if done > waiter.addr_ready:
                        waiter.addr_ready = done
                maybe_ready(waiter)
            entry.consumers.extend(waiters)
            entry.waiters = []
        if entry.is_branch:
            self.fetch.resume_after_branch(entry.seq, done)
        self._progress = True

    def _on_store_write(self, store: Entry) -> None:
        if store.write_cycle is not None and (
            store.write_cycle > self.cycle
        ):
            # Pushed out by selective re-execution; re-arm.
            self._schedule(store.write_cycle, _EV_WRITE, store)
            return
        cycle = store.write_cycle
        store.executed = True
        self.hierarchy.store(store.inst.addr, cycle)
        self._progress = True

        violators = [
            load
            for load in self.detector.loads_violating(store.seq, cycle)
            if load.forwarded_from != store.seq
        ]
        if self.as_mode:
            violators = [
                load for load in violators
                if not load.stale_equal
                and self._value_propagated(load, cycle)
            ]
        if violators:
            oldest = min(violators, key=lambda e: e.seq)
            if self.config.memdep.recovery == "selective":
                self._selective_reexecute(oldest, store, cycle)
            else:
                self._squash_for_violation(oldest, store, cycle)

    def _value_propagated(self, load: Entry, write_cycle: int) -> bool:
        """Did any consumer of *load* already issue with its stale value?

        If not, hardware can silently re-forward the correct value (the
        paper's condition (2) for signalling an AS/NAV miss-speculation);
        the consumers are then held until the corrected value arrives.
        """
        consumers = load.consumers + load.waiters
        propagated = False
        for waiter, _ in consumers:
            if waiter.squashed:
                continue
            if waiter.issue_cycle is not None and (
                waiter.issue_cycle <= write_cycle
            ):
                propagated = True
                break
        if not propagated:
            # Re-forward: delay not-yet-issued consumers to the fix-up.
            for waiter, is_data in consumers:
                if waiter.squashed or waiter.issue_cycle is not None:
                    continue
                if is_data:
                    waiter.data_ready = max(
                        waiter.data_ready, write_cycle + 1
                    )
                else:
                    waiter.addr_ready = max(
                        waiter.addr_ready, write_cycle + 1
                    )
        return propagated

    def _store_buffer_insert(self, store: Entry, data_ready: int) -> None:
        buffer = self.store_buffer
        if buffer.full:
            head = self.window.head()
            head_seq = head.seq if head else store.seq
            # Buffer entries are seq-sorted, so the oldest store is the
            # only eviction candidate.
            if not buffer.evict_oldest_before(head_seq):
                # pragma: no cover - capacity equals window size
                raise SimulationStuck("store buffer wedged")
        buffer.insert(StoreBufferEntry(
            seq=store.seq,
            addr=store.inst.addr,
            size=store.inst.size,
            value=store.inst.value,
            data_ready_cycle=data_ready,
            drain_cycle=store.write_cycle,
        ))

    # -- squash -------------------------------------------------------------

    def _squash_for_violation(
        self, load: Entry, store: Entry, cycle: int
    ) -> None:
        stats = self.stats
        stats.misspeculations += 1
        seq = load.seq
        squashed = self.window.squash_from(seq)
        stats.squashed_instructions += len(squashed)
        # Squash only flags the entries; the mem pools memoize their
        # live view and must be told to refilter.
        self.load_pool.invalidate()
        self.store_write_pool.invalidate()
        self.unexec_stores.squash(seq)
        self.barrier_stores.squash(seq)
        self.synonyms.squash(seq)
        self.detector.squash(seq)
        self.store_buffer.squash_younger(seq)
        if self.addr_sched is not None:
            self.addr_sched.squash(seq)
        if self.store_sets is not None:
            self.store_sets.squash(seq)
        resume = cycle + self.config.memdep.squash_refill_penalty
        self.fetch.squash(seq, resume)
        if self.observer is not None:
            self.observer.emit_squash(
                load, store, cycle, len(squashed), resume
            )

        if self.policy is SpeculationPolicy.SELECTIVE:
            self.predictor.record_misspeculation(load.inst.pc)
        elif self.policy is SpeculationPolicy.STORE_BARRIER:
            self.predictor.record_misspeculation(store.inst.pc)
        elif self.policy is SpeculationPolicy.SYNC:
            self.mdpt.record_violation(load.inst.pc, store.inst.pc)
        elif self.policy is SpeculationPolicy.STORE_SETS:
            self.store_sets.record_violation(load.inst.pc, store.inst.pc)

    def _selective_reexecute(
        self, load: Entry, store: Entry, cycle: int
    ) -> None:
        """Selective invalidation (Section 2's alternative recovery).

        Only the miss-speculated load and the instructions that consumed
        its value re-execute: the load's completion moves to one cycle
        after the store's write (re-forward), and new completion times
        ripple through the dependence edges of already-issued dependents.
        Unrelated younger instructions are untouched — the work thrown
        away shrinks from "everything after the load" to the load's
        forward slice.
        """
        stats = self.stats
        stats.misspeculations += 1
        latencies = self.config.latencies
        new_complete: Dict[int, int] = {}
        reexecuted = 0

        load.forwarded_from = store.seq
        corrected = max(load.complete_cycle or 0, cycle + 1)
        if corrected != load.complete_cycle:
            load.complete_cycle = corrected
            self._schedule(corrected, _EV_COMPLETE, load)
        new_complete[load.seq] = corrected

        for entry in self.window:
            if entry.seq <= load.seq or entry.squashed:
                continue
            bump = 0
            for producer in entry.producers:
                when = new_complete.get(producer.seq)
                if when is not None and when > bump:
                    bump = when
            if not bump or entry.issue_cycle is None:
                # Not yet issued: it will naturally pick up the new
                # operand-ready times through the (bumped) ready fields.
                if bump:
                    entry.addr_ready = max(entry.addr_ready, bump)
                    entry.data_ready = max(entry.data_ready, bump)
                continue
            latency = latencies.latency(entry.inst.op)
            if entry.is_load:
                latency += 2  # agen + re-access (forward/hit path)
            corrected = bump + latency
            old = (
                entry.write_cycle if entry.is_store
                else entry.complete_cycle
            )
            if old is not None and corrected > old:
                reexecuted += 1
                if entry.is_store:
                    entry.write_cycle = corrected
                    entry.complete_cycle = corrected
                    self._schedule(corrected, _EV_WRITE, entry)
                else:
                    entry.complete_cycle = corrected
                    self._schedule(corrected, _EV_COMPLETE, entry)
                new_complete[entry.seq] = corrected
        stats.squashed_instructions += reexecuted
        if self.observer is not None:
            self.observer.emit_replay(load, cycle, reexecuted)

    # -- commit -------------------------------------------------------------

    def _commit(self) -> None:
        window = self.window
        # The deque is read directly: this loop peeks the head every
        # cycle and the ``head()`` indirection is measurable.
        entries = window._entries
        if not entries:
            return
        stats = self.stats
        budget = self._issue_width
        cycle = self.cycle
        timeline = self.timeline
        observer = self.observer
        committed = 0
        while budget and entries:
            head = entries[0]
            done_cycle = (
                head.write_cycle if head.is_store else head.complete_cycle
            )
            if done_cycle is None or done_cycle > cycle:
                break
            window.commit_head()
            budget -= 1
            committed += 1
            if timeline is not None:
                timeline.on_commit(head, cycle)
            if observer is not None:
                observer.emit_commit(head, cycle)
            if head.is_load:
                stats.committed_loads += 1
                if head.speculative:
                    stats.speculative_loads += 1
                if head.fd_class == "false":
                    stats.false_dependence_loads += 1
                    if head.fd_resolved_cycle is not None:
                        stats.false_dependence_latency += (
                            head.fd_resolved_cycle - head.fd_wait_start
                        )
                elif head.fd_class == "true":
                    stats.true_dependence_loads += 1
            elif head.is_store:
                stats.committed_stores += 1
                self.detector.retire_store(head.seq)
                self.synonyms.retire(head.sync_synonym, head)
                if self.addr_sched is not None:
                    self.addr_sched.remove_store(head.seq)
                if self.store_sets is not None:
                    self.store_sets.store_retired(head)
            elif head.is_branch:
                stats.committed_branches += 1
        if committed:
            stats.committed += committed
            self._progress = True

    # -- dispatch -------------------------------------------------------------

    def _dispatch(self) -> None:
        window = self.window
        capacity = window.size
        # Occupancy is tracked locally: ``len(window)`` per dispatched
        # instruction adds up, as does one ``pop_dispatchable`` call per
        # instruction (plus a None-returning one every cycle) — the
        # fetch buffer is walked directly instead.
        occupancy = len(window._entries)
        if occupancy >= capacity:
            return
        buffer = self.fetch.buffer
        maybe_ready = self._maybe_ready
        budget = self._issue_width
        cycle = self.cycle
        observer = self.observer
        while budget and occupancy < capacity:
            if not buffer or buffer[0][1] > cycle:
                break
            inst = buffer.popleft()[0]
            occupancy += 1
            entry = Entry(inst, cycle)
            window.dispatch(entry)
            budget -= 1
            self._progress = True
            if entry.is_load:
                self._on_load_dispatch(entry)
            elif entry.is_store:
                self._on_store_dispatch(entry)
            maybe_ready(entry)
            if observer is not None:
                observer.emit_dispatch(entry, cycle)

    def _on_load_dispatch(self, entry: Entry) -> None:
        info = self.dep_info.get(entry.seq)
        if info is not None:
            entry.dep_store_seq = info.store_seq
            entry.stale_equal = info.stale_equal
            self.detector.register_load(entry, info.store_seq)
        if self.policy is SpeculationPolicy.SELECTIVE:
            entry.predicted_dep = self.predictor.predicts_dependence(
                entry.inst.pc
            )
        elif self.policy is SpeculationPolicy.SYNC:
            prediction = self.mdpt.predict_load(entry.inst.pc)
            if prediction is not None:
                entry.sync_synonym = prediction.synonym
                entry.sync_wait_store = (
                    self.synonyms.closest_older_producer(
                        prediction.synonym, entry.seq
                    )
                )
        elif self.policy is SpeculationPolicy.STORE_SETS:
            entry.sync_wait_store = self.store_sets.load_dispatched(
                entry
            )

    def _on_store_dispatch(self, entry: Entry) -> None:
        self.unexec_stores.on_dispatch(entry.seq)
        if self.addr_sched is not None:
            self.addr_sched.on_store_dispatch(entry.seq)
        if self.policy is SpeculationPolicy.STORE_BARRIER:
            if self.predictor.predicts_dependence(entry.inst.pc):
                entry.barrier = True
                self.barrier_stores.on_dispatch(entry.seq)
        elif self.policy is SpeculationPolicy.SYNC:
            prediction = self.mdpt.predict_store(entry.inst.pc)
            if prediction is not None:
                entry.sync_synonym = prediction.synonym
                self.synonyms.add_producer(prediction.synonym, entry)
        elif self.policy is SpeculationPolicy.STORE_SETS:
            # Store-to-store ordering within a set: this store waits for
            # the set's previous (last fetched) store.
            entry.sync_wait_store = self.store_sets.store_dispatched(
                entry
            )

    # -- readiness ---------------------------------------------------------------

    def _maybe_ready(self, entry: Entry) -> None:
        if entry.issue_cycle is not None or entry.in_ready_pool:
            # Already issued its scheduler phase; stores in AS mode may
            # still be waiting on data for the write phase.
            if (
                entry.is_store and self.as_mode
                and entry.agen_done is not None
                and not entry.data_pending
                and not entry.in_mem_pool
                and entry.write_cycle is None
            ):
                self.store_write_pool.push(entry)
                self._progress = True
            return
        # Execution-readiness (NAS stores need address + data; everything
        # else goes to the scheduler once its address sources are ready).
        if entry.is_store and not self.as_mode:
            if entry.addr_pending or entry.data_pending:
                return
            ready_at = entry.addr_ready
            if entry.data_ready > ready_at:
                ready_at = entry.data_ready
        else:
            if entry.addr_pending:
                return
            ready_at = entry.addr_ready
        if ready_at <= self.cycle:
            self.ready_pool.push(entry)
        else:
            self._schedule(ready_at, _EV_READY, entry)

    # -- issue -------------------------------------------------------------

    def _issue_exec(self) -> None:
        funits = self.funits
        pool = self.ready_pool
        if not pool:
            return
        cycle = self.cycle
        as_mode = self.as_mode
        pop = pool.pop
        can_issue = funits.can_issue_unit
        take_issue = funits.take_issue_unit
        deferred: List[Entry] = []
        progress = False
        scans = self._scan_budget
        issue_width = funits._issue_width
        while funits._issued < issue_width and scans:
            scans -= 1
            entry = pop()
            if entry is None:
                break
            nas_store = entry.is_store and not as_mode
            if nas_store:
                if entry.addr_pending or entry.data_pending:
                    continue
                ready_at = entry.addr_ready
                if entry.data_ready > ready_at:
                    ready_at = entry.data_ready
            elif entry.addr_pending:
                continue
            else:
                ready_at = entry.addr_ready
            if ready_at > cycle:
                self._schedule(ready_at, _EV_READY, entry)
                continue
            if not can_issue(entry.uses_fp_unit):
                deferred.append(entry)
                continue
            if nas_store:
                # Store-set ordering: a store waits for its set's
                # previous store to issue first.
                wait = entry.sync_wait_store
                if (
                    wait is not None
                    and not wait.squashed
                    and wait.issue_cycle is None
                ):
                    deferred.append(entry)
                    continue
                # NAS store: single issue needs a memory port too.
                if not funits.can_access_memory():
                    deferred.append(entry)
                    continue
                take_issue(entry.uses_fp_unit)
                funits.take_port()
                self._do_issue_store_nas(entry)
            elif entry.is_store:
                take_issue(entry.uses_fp_unit)
                self._do_issue_store_agen_as(entry)
            elif entry.is_load:
                take_issue(entry.uses_fp_unit)
                self._do_issue_load_agen(entry)
            else:
                take_issue(entry.uses_fp_unit)
                self._do_issue_alu(entry)
            progress = True
        if deferred:
            push = pool.push
            for entry in deferred:
                push(entry)
            progress = True
        if progress:
            self._progress = True

    def _do_issue_alu(self, entry: Entry) -> None:
        entry.issue_cycle = self.cycle
        latency = self._latency_of(entry.inst.op)
        entry.complete_cycle = self.cycle + latency
        self._schedule(entry.complete_cycle, _EV_COMPLETE, entry)
        if self.observer is not None:
            self.observer.emit_issue(entry, self.cycle)

    def _do_issue_load_agen(self, entry: Entry) -> None:
        entry.issue_cycle = self.cycle
        done = self.cycle + 1
        entry.agen_done = done
        self.load_pool.push(entry)
        if self._hint is None or done < self._hint:
            self._hint = done
        if self.observer is not None:
            self.observer.emit_issue(entry, self.cycle)

    def _do_issue_store_nas(self, entry: Entry) -> None:
        entry.issue_cycle = self.cycle
        entry.agen_done = self.cycle + 1
        # 1 cycle address calculation + 1 cycle to the store buffer.
        entry.write_cycle = self.cycle + 2
        entry.complete_cycle = entry.write_cycle
        # The store has issued: younger loads may now go (they forward
        # from the store buffer, where the data is available next cycle).
        self.unexec_stores.on_execute(entry.seq)
        if entry.barrier:
            self.barrier_stores.on_execute(entry.seq)
        self._store_buffer_insert(entry, data_ready=self.cycle + 1)
        self._schedule(entry.write_cycle, _EV_WRITE, entry)
        if self.observer is not None:
            self.observer.emit_issue(entry, self.cycle)

    def _do_issue_store_agen_as(self, entry: Entry) -> None:
        entry.issue_cycle = self.cycle
        entry.agen_done = self.cycle + 1
        visible = self.addr_sched.post_address(entry, entry.agen_done)
        entry.posted_cycle = visible
        self._schedule(visible, _EV_POST, entry)
        if not entry.data_pending:
            self.store_write_pool.push(entry)
        if self.observer is not None:
            self.observer.emit_issue(entry, self.cycle)

    # -- memory stage -----------------------------------------------------------

    def _issue_memory(self) -> None:
        # Candidates scan in program order. The two pools are each kept
        # seq-sorted, and NAS machines never use the store-write pool
        # (NAS stores write directly from ``_do_issue_store_nas``), so
        # the common case needs no sort and no concatenation at all.
        loads = self.load_pool.live_entries()
        if self.as_mode:
            writes = self.store_write_pool.live_entries()
            if writes:
                if loads:
                    candidates = loads + writes
                    candidates.sort(key=_entry_seq)
                else:
                    candidates = writes
            else:
                candidates = loads
        else:
            candidates = loads
        if not candidates:
            return
        funits = self.funits
        cycle = self.cycle
        kind = self._gate_kind
        hint = self._hint
        progress = False
        observer = self.observer
        ports_left = funits.ports_left
        # NO/SEL gate on the oldest unexecuted store, STORE on the
        # oldest unexecuted *barrier* store. Both trackers are constant
        # for the duration of the scan (NAS stores execute in
        # ``_issue_exec``, which runs after this), so resolve the
        # threshold once instead of binary-searching per load.
        if kind == _GATE_ALL_STORES or kind == _GATE_PREDICTED:
            blocked_from = self.unexec_stores.oldest()
        elif kind == _GATE_BARRIER:
            blocked_from = self.barrier_stores.oldest()
        else:
            blocked_from = None
        window_get = self.window.get
        note_fd_wait = self._note_fd_wait
        for entry in candidates:
            if not ports_left:
                progress = True  # ports exhausted: retry next cycle
                break
            if entry.is_store:
                ready = entry.data_ready
                agen = entry.agen_done or 0
                if agen > ready:
                    ready = agen
                if ready > cycle:
                    if hint is None or ready < hint:
                        hint = ready
                    continue
                ports_left -= 1
                funits.take_port()
                self.store_write_pool.remove(entry)
                entry.write_cycle = cycle + 1
                entry.complete_cycle = entry.write_cycle
                self.unexec_stores.on_execute(entry.seq)
                if entry.barrier:
                    self.barrier_stores.on_execute(entry.seq)
                self._store_buffer_insert(entry, data_ready=cycle + 1)
                self._schedule(entry.write_cycle, _EV_WRITE, entry)
                if observer is not None:
                    observer.emit_mem_issue(entry, cycle, False)
                progress = True
                continue
            # -- loads: the policy gate (Section 2.1), inlined ---------
            agen = entry.agen_done
            if agen is None or agen > cycle:
                if agen is not None and (hint is None or agen < hint):
                    hint = agen
                continue
            if kind == _GATE_OPEN:
                pass  # NAV: speculate as soon as the address is ready
            elif kind == _GATE_ALL_STORES:
                if blocked_from is not None and blocked_from < entry.seq:
                    if entry.fd_wait_start is None:
                        note_fd_wait(entry)
                    continue
            elif kind == _GATE_PREDICTED:
                if (
                    entry.predicted_dep
                    and blocked_from is not None
                    and blocked_from < entry.seq
                ):
                    if entry.fd_wait_start is None:
                        note_fd_wait(entry)
                    continue
            elif kind == _GATE_BARRIER:
                if blocked_from is not None and blocked_from < entry.seq:
                    if entry.fd_wait_start is None:
                        note_fd_wait(entry)
                    continue
            elif kind == _GATE_SYNC:
                wait = entry.sync_wait_store
                if not (
                    wait is None or wait.squashed or wait.executed
                ):
                    issued = wait.issue_cycle
                    if issued is None:
                        if observer is not None and (
                            not entry.observed_blocked
                        ):
                            entry.observed_blocked = True
                            observer.emit_blocked(
                                entry, cycle, "sync-wait"
                            )
                        continue
                    # Free to issue one cycle after the producer issues.
                    if cycle < issued + 1:
                        if hint is None or issued + 1 < hint:
                            hint = issued + 1
                        if observer is not None and (
                            not entry.observed_blocked
                        ):
                            entry.observed_blocked = True
                            observer.emit_blocked(
                                entry, cycle, "sync-wait"
                            )
                        continue
            elif kind == _GATE_ORACLE:
                dep_seq = entry.dep_store_seq
                if dep_seq is not None:
                    dep = window_get(dep_seq)
                    if dep is not None and not dep.executed:
                        issued = dep.issue_cycle
                        if issued is None:
                            if entry.fd_wait_start is None:
                                note_fd_wait(entry)
                            continue
                        # Value available one cycle after the producing
                        # store issues (forwarded from the store buffer)
                        # — the paper's oracle still charges the store's
                        # own issue timing (Section 3.4.1).
                        if cycle < issued + 1:
                            if hint is None or issued + 1 < hint:
                                hint = issued + 1
                            continue
            else:  # _GATE_AS
                open_, gate_hint = self._load_gate_as(entry)
                if not open_:
                    if gate_hint is not None and (
                        hint is None or gate_hint < hint
                    ):
                        hint = gate_hint
                    if observer is not None and (
                        not entry.observed_blocked
                    ):
                        entry.observed_blocked = True
                        observer.emit_blocked(entry, cycle, "as-wait")
                    continue
            # Table 3 accounting: a formerly-blocked load resolves now.
            if entry.fd_wait_start is not None and (
                entry.fd_resolved_cycle is None
            ):
                entry.fd_resolved_cycle = cycle
            ports_left -= 1
            funits.take_port()
            self.load_pool.remove(entry)
            self._access_memory(entry)
            progress = True
        self._hint = hint
        if progress:
            self._progress = True

    def _access_memory(self, entry: Entry) -> None:
        cycle = self.cycle
        inst = entry.inst
        entry.mem_issue_cycle = cycle
        if self.unexec_stores.any_older_than(entry.seq):
            entry.speculative = True
        dep_entry = (
            self.window.get(entry.dep_store_seq)
            if entry.dep_store_seq is not None else None
        )
        if dep_entry is not None and not dep_entry.executed:
            entry.premature = True
        buffered, full = self.store_buffer.search(
            entry.seq, inst.addr, inst.size
        )
        if buffered is not None and full:
            complete = max(cycle + 1, buffered.data_ready_cycle + 1)
            entry.forwarded_from = buffered.seq
        elif buffered is not None:
            # Partial overlap: wait for the store, then read the cache.
            start = max(cycle, buffered.data_ready_cycle)
            complete = self.hierarchy.load(inst.addr, start)
        else:
            complete = self.hierarchy.load(inst.addr, cycle)
        entry.complete_cycle = complete
        self._schedule(complete, _EV_COMPLETE, entry)
        if self.observer is not None:
            self.observer.emit_mem_issue(
                entry, cycle, entry.forwarded_from is not None
            )

    # -- load gates (the paper's policies) ---------------------------------------
    #
    # The NAS gates are inlined in ``_issue_memory`` (selected by
    # ``self._gate_kind``); only the AS gate is complex enough to stay
    # a method.

    def _load_gate_as(self, entry: Entry) -> Tuple[bool, Optional[int]]:
        cycle = self.cycle
        search_from = entry.agen_done + self.addr_sched.latency
        if cycle < search_from:
            return False, search_from
        if self.policy is SpeculationPolicy.NO:
            if not self.addr_sched.all_older_posted(entry.seq, cycle):
                self._note_fd_wait(entry)
                return False, None
        match = self.addr_sched.youngest_older_match(
            entry.seq, entry.inst.addr, entry.inst.size, cycle
        )
        if match is not None:
            # A known true dependence: the load always waits for the
            # store's data, then forwards from the store buffer.
            if match.write_cycle is None:
                return False, None
            if cycle < match.write_cycle:
                return False, match.write_cycle
        return True, None

    # -- Table 3 accounting ---------------------------------------------------

    def _note_fd_wait(self, entry: Entry) -> None:
        """Record the first cycle a load was blocked by older stores."""
        if entry.fd_wait_start is not None:
            return
        entry.fd_wait_start = self.cycle
        dep = (
            self.window.get(entry.dep_store_seq)
            if entry.dep_store_seq is not None else None
        )
        if dep is not None and not dep.executed:
            entry.fd_class = "true"
        else:
            entry.fd_class = "false"
        if self.observer is not None:
            self.observer.emit_blocked(
                entry, self.cycle, f"fd-{entry.fd_class}"
            )

    # -- periodic table flushes ---------------------------------------------------

    def _maybe_flush_tables(self) -> None:
        if self.cycle < self._next_flush:
            return
        interval = self.config.memdep.flush_interval
        while self._next_flush <= self.cycle:
            self._next_flush += interval
        if self.predictor is not None:
            self.predictor.flush()
        if self.mdpt is not None:
            self.mdpt.flush()
        if self.store_sets is not None:
            self.store_sets.flush()

    # -- cache stat snapshots ---------------------------------------------------

    def _snapshot_caches(self, stats: SimResult) -> None:
        stats.dcache_accesses = self.hierarchy.dcache.accesses
        stats.dcache_misses = self.hierarchy.dcache.misses
        stats.icache_accesses = self.hierarchy.icache.accesses
        stats.icache_misses = self.hierarchy.icache.misses
        stats.l2_accesses = self.hierarchy.l2.accesses
        stats.l2_misses = self.hierarchy.l2.misses


def simulate(
    config: ProcessorConfig,
    trace: Trace,
    plan: Optional[SamplingPlan] = None,
    dep_info: Optional[Dict[int, DependenceInfo]] = None,
    observer=None,
    backend: Optional[str] = None,
) -> SimResult:
    """Convenience wrapper: build a processor for *trace* and run it.

    *backend* picks the simulator core (``"reference"`` or
    ``"vector"``); None defers to ``config.backend`` and then the
    ``$REPRO_BACKEND`` environment variable. All backends produce
    bit-identical results — see :mod:`repro.core.backend`.
    """
    from repro.core.backend import get_backend, resolve_backend

    name = resolve_backend(backend, config)
    processor = get_backend(name)(
        config, trace, dep_info, observer=observer
    )
    return processor.run(plan)
