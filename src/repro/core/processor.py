"""The cycle-level simulator for the centralized, continuous window.

Event-assisted cycle loop: per active cycle the processor processes due
events (completions, store writes, address posts), commits, issues
(program-order priority), dispatches and fetches. Idle stretches (e.g.
cache-miss stalls) are skipped by fast-forwarding to the next event.

The memory dependence speculation policies (Section 2.1 of the paper)
gate the *memory access* of loads; everything else is common machinery.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Tuple

from repro.branch.unit import BranchUnit
from repro.config.processor import (
    ProcessorConfig,
    SchedulingModel,
    SpeculationPolicy,
)
from repro.core.fetch import FetchUnit
from repro.core.lsq import MemPool, SynonymTracker, UnexecutedStoreTracker
from repro.core.result import SimResult
from repro.core.scheduler import FunctionalUnits, ReadyPool
from repro.core.window import Entry, Window
from repro.isa.opcodes import OpClass
from repro.memdep.addr_scheduler import AddressScheduler
from repro.memdep.oracle import OracleDisambiguator
from repro.memdep.store_sets import StoreSetPredictor
from repro.memdep.sync import MDPT
from repro.memdep.tables import TwoBitPredictorTable
from repro.memdep.violation import ViolationDetector
from repro.memory.hierarchy import MemoryHierarchy
from repro.memory.store_buffer import StoreBuffer, StoreBufferEntry
from repro.trace.cursor import TraceCursor
from repro.trace.dependences import DependenceInfo, compute_dependence_info
from repro.trace.events import Trace
from repro.trace.sampling import SamplingPlan, make_sampling_plan

# Event kinds (heap entries are (cycle, serial, kind, entry)).
_EV_COMPLETE = 0
_EV_WRITE = 1
_EV_READY = 2
_EV_POST = 3


class SimulationStuck(RuntimeError):
    """The cycle loop can make no further progress (a model bug)."""


class Processor:
    """One simulated machine bound to one trace."""

    def __init__(
        self,
        config: ProcessorConfig,
        trace: Trace,
        dep_info: Optional[Dict[int, DependenceInfo]] = None,
        timeline: Optional["TimelineRecorder"] = None,
        telemetry: Optional["Telemetry"] = None,
    ) -> None:
        self.config = config
        self.trace = trace
        #: Optional pipeview recorder (repro.core.timeline).
        self.timeline = timeline
        #: Optional utilisation sampler (repro.core.telemetry).
        self.telemetry = telemetry
        self.dep_info = (
            dep_info if dep_info is not None
            else compute_dependence_info(trace)
        )
        self.oracle = OracleDisambiguator(trace, self.dep_info)
        self.hierarchy = MemoryHierarchy(config)
        self.branch_unit = BranchUnit(config.branch)

        memdep = config.memdep
        self.as_mode = memdep.scheduling is SchedulingModel.AS
        self.policy = memdep.policy
        self.predictor: Optional[TwoBitPredictorTable] = None
        self.mdpt: Optional[MDPT] = None
        if self.policy in (
            SpeculationPolicy.SELECTIVE, SpeculationPolicy.STORE_BARRIER
        ):
            self.predictor = TwoBitPredictorTable(
                entries=memdep.predictor_entries,
                assoc=memdep.predictor_assoc,
                threshold=memdep.confidence_threshold,
            )
        elif self.policy is SpeculationPolicy.SYNC:
            self.mdpt = MDPT(
                entries=memdep.predictor_entries,
                assoc=memdep.predictor_assoc,
            )
        self.store_sets: Optional[StoreSetPredictor] = None
        if self.policy is SpeculationPolicy.STORE_SETS:
            self.store_sets = StoreSetPredictor(
                ssit_entries=memdep.predictor_entries,
                lfst_entries=memdep.lfst_entries,
            )

        #: Monotonic machine time across segments (caches keep state).
        self.cycle = 0
        self._next_flush = memdep.flush_interval

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def run(self, plan: Optional[SamplingPlan] = None) -> SimResult:
        """Simulate the whole trace and return aggregated timing stats.

        With a :class:`SamplingPlan`, timing segments are simulated in
        detail and functional segments only keep the caches and branch
        predictors warm (the paper's Section 3.1 methodology).
        """
        if plan is None:
            plan = make_sampling_plan(len(self.trace))
        total = SimResult(
            config_label=self.config.label,
            benchmark=self.trace.name,
            suite=self.trace.suite,
        )
        for segment in plan.segments:
            if segment.timing:
                total.merge(self._run_segment(segment.start, segment.stop))
            else:
                self._warm_segment(segment.start, segment.stop)
        self._snapshot_caches(total)
        return total

    # ------------------------------------------------------------------
    # functional warm-up (sampling)
    # ------------------------------------------------------------------

    def _warm_segment(self, start: int, stop: int) -> None:
        hierarchy = self.hierarchy
        block_shift = self.config.icache.block_bytes.bit_length() - 1
        last_block = -1
        for seq in range(start, stop):
            inst = self.trace[seq]
            block = inst.pc >> block_shift
            if block != last_block:
                hierarchy.icache.touch(inst.pc)
                hierarchy.l2.touch(inst.pc)
                last_block = block
            if inst.is_branch:
                self.branch_unit.predict_and_train(inst)
            elif inst.is_mem:
                hierarchy.dcache.touch(inst.addr)
                hierarchy.l2.touch(inst.addr)
        # Functional intervals advance wall-clock time too (roughly one
        # instruction per cycle of untimed execution).
        self.cycle += max(1, (stop - start) // 2)

    # ------------------------------------------------------------------
    # timing simulation
    # ------------------------------------------------------------------

    def _run_segment(self, start: int, stop: int) -> SimResult:
        cfg = self.config
        stats = SimResult(
            config_label=cfg.label,
            benchmark=self.trace.name,
            suite=self.trace.suite,
        )
        self.stats = stats
        self.window = Window(cfg.window.size)
        self.cursor = TraceCursor(self.trace, start, stop)
        self.fetch = FetchUnit(
            cfg, self.cursor, self.hierarchy, self.branch_unit
        )
        self.fetch.stalled_until = self.cycle
        self.funits = FunctionalUnits(cfg.window)
        self.ready_pool = ReadyPool()
        self.load_pool = MemPool()
        self.store_write_pool = MemPool()
        self.store_buffer = StoreBuffer(cfg.window.store_buffer_size)
        self.unexec_stores = UnexecutedStoreTracker()
        self.barrier_stores = UnexecutedStoreTracker()
        self.synonyms = SynonymTracker()
        self.detector = ViolationDetector()
        self.addr_sched = (
            AddressScheduler(cfg.memdep.addr_scheduler_latency)
            if self.as_mode else None
        )
        self._events: List = []
        self._event_serial = 0
        self._hints: List[int] = []
        self._progress = False

        start_cycle = self.cycle
        branch_stats_base = (
            self.branch_unit.predictions,
            self.branch_unit.mispredictions,
        )

        while True:
            if (
                self.fetch.done
                and self.window.empty
                and not self._events
            ):
                break
            self._advance_clock()
            self._process_events()
            self._commit()
            self._issue()
            self._dispatch()
            fetched = self.fetch.tick(self.cycle)
            if fetched:
                self._progress = True
            self._maybe_flush_tables()

        stats.cycles = self.cycle - start_cycle
        stats.branch_predictions = (
            self.branch_unit.predictions - branch_stats_base[0]
        )
        stats.branch_mispredictions = (
            self.branch_unit.mispredictions - branch_stats_base[1]
        )
        stats.load_forwards = self.store_buffer.forwards
        return stats

    # -- clock -------------------------------------------------------------

    def _advance_clock(self) -> None:
        if self._progress or self.ready_pool:
            self._progress = False
            self.cycle += 1
            return
        candidates = list(self._hints)
        self._hints.clear()
        if self._events:
            candidates.append(self._events[0][0])
        nxt = self.fetch.next_dispatch_cycle()
        if nxt is not None:
            candidates.append(nxt)
        if (
            self.fetch.waiting_on_branch is None
            and not self.cursor.exhausted
            and len(self.fetch.buffer) < self.fetch._buffer_cap
        ):
            candidates.append(self.fetch.stalled_until)
        if not candidates:
            raise SimulationStuck(
                f"no progress possible at cycle {self.cycle} "
                f"(window={len(self.window)}, "
                f"loads={len(self.load_pool)}, "
                f"writes={len(self.store_write_pool)})"
            )
        self.cycle = max(self.cycle + 1, min(candidates))
        self._progress = False

    def _schedule(self, cycle: int, kind: int, entry: Entry) -> None:
        self._event_serial += 1
        heapq.heappush(
            self._events, (cycle, self._event_serial, kind, entry)
        )

    # -- events -------------------------------------------------------------

    def _process_events(self) -> None:
        events = self._events
        while events and events[0][0] <= self.cycle:
            _, _, kind, entry = heapq.heappop(events)
            if entry.squashed:
                continue
            if kind == _EV_READY:
                self.ready_pool.push(entry)
            elif kind == _EV_COMPLETE:
                self._on_complete(entry)
            elif kind == _EV_WRITE:
                self._on_store_write(entry)
            elif kind == _EV_POST:
                self._progress = True  # wake gates waiting on visibility

    def _on_complete(self, entry: Entry) -> None:
        if entry.complete_cycle is not None and (
            entry.complete_cycle > self.cycle
        ):
            # Selective re-execution pushed this completion out; the
            # stale event fires early — re-arm it at the new time.
            self._schedule(entry.complete_cycle, _EV_COMPLETE, entry)
            return
        entry.executed = True
        for waiter, is_data in entry.waiters:
            if waiter.squashed:
                continue
            if is_data:
                waiter.data_pending -= 1
                waiter.data_ready = max(
                    waiter.data_ready, entry.complete_cycle
                )
            else:
                waiter.addr_pending -= 1
                waiter.addr_ready = max(
                    waiter.addr_ready, entry.complete_cycle
                )
            self._maybe_ready(waiter)
        entry.consumers.extend(entry.waiters)
        entry.waiters.clear()
        if entry.inst.is_branch:
            self.fetch.resume_after_branch(entry.seq, entry.complete_cycle)
        self._progress = True

    def _on_store_write(self, store: Entry) -> None:
        if store.write_cycle is not None and (
            store.write_cycle > self.cycle
        ):
            # Pushed out by selective re-execution; re-arm.
            self._schedule(store.write_cycle, _EV_WRITE, store)
            return
        cycle = store.write_cycle
        store.executed = True
        self.hierarchy.store(store.inst.addr, cycle)
        self._progress = True

        violators = [
            load
            for load in self.detector.loads_violating(store.seq, cycle)
            if load.forwarded_from != store.seq
        ]
        if self.as_mode:
            violators = [
                load for load in violators
                if not load.stale_equal
                and self._value_propagated(load, cycle)
            ]
        if violators:
            oldest = min(violators, key=lambda e: e.seq)
            if self.config.memdep.recovery == "selective":
                self._selective_reexecute(oldest, store, cycle)
            else:
                self._squash_for_violation(oldest, store, cycle)

    def _value_propagated(self, load: Entry, write_cycle: int) -> bool:
        """Did any consumer of *load* already issue with its stale value?

        If not, hardware can silently re-forward the correct value (the
        paper's condition (2) for signalling an AS/NAV miss-speculation);
        the consumers are then held until the corrected value arrives.
        """
        consumers = load.consumers + load.waiters
        propagated = False
        for waiter, _ in consumers:
            if waiter.squashed:
                continue
            if waiter.issue_cycle is not None and (
                waiter.issue_cycle <= write_cycle
            ):
                propagated = True
                break
        if not propagated:
            # Re-forward: delay not-yet-issued consumers to the fix-up.
            for waiter, is_data in consumers:
                if waiter.squashed or waiter.issue_cycle is not None:
                    continue
                if is_data:
                    waiter.data_ready = max(
                        waiter.data_ready, write_cycle + 1
                    )
                else:
                    waiter.addr_ready = max(
                        waiter.addr_ready, write_cycle + 1
                    )
        return propagated

    def _store_buffer_insert(self, store: Entry, data_ready: int) -> None:
        buffer = self.store_buffer
        if buffer.full:
            head = self.window.head()
            head_seq = head.seq if head else store.seq
            for committed in buffer.entries():
                if committed.seq < head_seq:
                    buffer.remove(committed.seq)
                    break
            else:  # pragma: no cover - capacity equals window size
                raise SimulationStuck("store buffer wedged")
        buffer.insert(StoreBufferEntry(
            seq=store.seq,
            addr=store.inst.addr,
            size=store.inst.size,
            value=store.inst.value,
            data_ready_cycle=data_ready,
            drain_cycle=store.write_cycle,
        ))

    # -- squash -------------------------------------------------------------

    def _squash_for_violation(
        self, load: Entry, store: Entry, cycle: int
    ) -> None:
        stats = self.stats
        stats.misspeculations += 1
        seq = load.seq
        squashed = self.window.squash_from(seq)
        stats.squashed_instructions += len(squashed)
        self.unexec_stores.squash(seq)
        self.barrier_stores.squash(seq)
        self.synonyms.squash(seq)
        self.detector.squash(seq)
        self.store_buffer.squash_younger(seq)
        if self.addr_sched is not None:
            self.addr_sched.squash(seq)
        if self.store_sets is not None:
            self.store_sets.squash(seq)
        resume = cycle + self.config.memdep.squash_refill_penalty
        self.fetch.squash(seq, resume)

        if self.policy is SpeculationPolicy.SELECTIVE:
            self.predictor.record_misspeculation(load.inst.pc)
        elif self.policy is SpeculationPolicy.STORE_BARRIER:
            self.predictor.record_misspeculation(store.inst.pc)
        elif self.policy is SpeculationPolicy.SYNC:
            self.mdpt.record_violation(load.inst.pc, store.inst.pc)
        elif self.policy is SpeculationPolicy.STORE_SETS:
            self.store_sets.record_violation(load.inst.pc, store.inst.pc)

    def _selective_reexecute(
        self, load: Entry, store: Entry, cycle: int
    ) -> None:
        """Selective invalidation (Section 2's alternative recovery).

        Only the miss-speculated load and the instructions that consumed
        its value re-execute: the load's completion moves to one cycle
        after the store's write (re-forward), and new completion times
        ripple through the dependence edges of already-issued dependents.
        Unrelated younger instructions are untouched — the work thrown
        away shrinks from "everything after the load" to the load's
        forward slice.
        """
        stats = self.stats
        stats.misspeculations += 1
        latencies = self.config.latencies
        new_complete: Dict[int, int] = {}
        reexecuted = 0

        load.forwarded_from = store.seq
        corrected = max(load.complete_cycle or 0, cycle + 1)
        if corrected != load.complete_cycle:
            load.complete_cycle = corrected
            self._schedule(corrected, _EV_COMPLETE, load)
        new_complete[load.seq] = corrected

        for entry in self.window:
            if entry.seq <= load.seq or entry.squashed:
                continue
            bump = 0
            for producer in entry.producers:
                when = new_complete.get(producer.seq)
                if when is not None and when > bump:
                    bump = when
            if not bump or entry.issue_cycle is None:
                # Not yet issued: it will naturally pick up the new
                # operand-ready times through the (bumped) ready fields.
                if bump:
                    entry.addr_ready = max(entry.addr_ready, bump)
                    entry.data_ready = max(entry.data_ready, bump)
                continue
            latency = latencies.latency(entry.inst.op)
            if entry.is_load:
                latency += 2  # agen + re-access (forward/hit path)
            corrected = bump + latency
            old = (
                entry.write_cycle if entry.is_store
                else entry.complete_cycle
            )
            if old is not None and corrected > old:
                reexecuted += 1
                if entry.is_store:
                    entry.write_cycle = corrected
                    entry.complete_cycle = corrected
                    self._schedule(corrected, _EV_WRITE, entry)
                else:
                    entry.complete_cycle = corrected
                    self._schedule(corrected, _EV_COMPLETE, entry)
                new_complete[entry.seq] = corrected
        stats.squashed_instructions += reexecuted

    # -- commit -------------------------------------------------------------

    def _commit(self) -> None:
        stats = self.stats
        window = self.window
        budget = self.config.window.issue_width
        cycle = self.cycle
        while budget and not window.empty:
            head = window.head()
            done_cycle = (
                head.write_cycle if head.is_store else head.complete_cycle
            )
            if done_cycle is None or done_cycle > cycle:
                break
            window.commit_head()
            budget -= 1
            stats.committed += 1
            self._progress = True
            if self.timeline is not None:
                self.timeline.on_commit(head, cycle)
            if head.is_load:
                stats.committed_loads += 1
                if head.speculative:
                    stats.speculative_loads += 1
                if head.fd_class == "false":
                    stats.false_dependence_loads += 1
                    if head.fd_resolved_cycle is not None:
                        stats.false_dependence_latency += (
                            head.fd_resolved_cycle - head.fd_wait_start
                        )
                elif head.fd_class == "true":
                    stats.true_dependence_loads += 1
            elif head.is_store:
                stats.committed_stores += 1
                self.detector.retire_store(head.seq)
                self.synonyms.retire(head.sync_synonym, head)
                if self.addr_sched is not None:
                    self.addr_sched.remove_store(head.seq)
                if self.store_sets is not None:
                    self.store_sets.store_retired(head)
            elif head.inst.is_branch:
                stats.committed_branches += 1

    # -- dispatch -------------------------------------------------------------

    def _dispatch(self) -> None:
        window = self.window
        budget = self.config.window.issue_width
        cycle = self.cycle
        while budget and not window.full:
            inst = self.fetch.pop_dispatchable(cycle)
            if inst is None:
                break
            entry = Entry(inst, cycle)
            window.dispatch(entry)
            budget -= 1
            self._progress = True
            if inst.is_load:
                self._on_load_dispatch(entry)
            elif inst.is_store:
                self._on_store_dispatch(entry)
            self._maybe_ready(entry)

    def _on_load_dispatch(self, entry: Entry) -> None:
        info = self.dep_info.get(entry.seq)
        if info is not None:
            entry.dep_store_seq = info.store_seq
            entry.stale_equal = info.stale_equal
            self.detector.register_load(entry, info.store_seq)
        if self.policy is SpeculationPolicy.SELECTIVE:
            entry.predicted_dep = self.predictor.predicts_dependence(
                entry.inst.pc
            )
        elif self.policy is SpeculationPolicy.SYNC:
            prediction = self.mdpt.predict_load(entry.inst.pc)
            if prediction is not None:
                entry.sync_synonym = prediction.synonym
                entry.sync_wait_store = (
                    self.synonyms.closest_older_producer(
                        prediction.synonym, entry.seq
                    )
                )
        elif self.policy is SpeculationPolicy.STORE_SETS:
            entry.sync_wait_store = self.store_sets.load_dispatched(
                entry
            )

    def _on_store_dispatch(self, entry: Entry) -> None:
        self.unexec_stores.on_dispatch(entry.seq)
        if self.addr_sched is not None:
            self.addr_sched.on_store_dispatch(entry.seq)
        if self.policy is SpeculationPolicy.STORE_BARRIER:
            if self.predictor.predicts_dependence(entry.inst.pc):
                entry.barrier = True
                self.barrier_stores.on_dispatch(entry.seq)
        elif self.policy is SpeculationPolicy.SYNC:
            prediction = self.mdpt.predict_store(entry.inst.pc)
            if prediction is not None:
                entry.sync_synonym = prediction.synonym
                self.synonyms.add_producer(prediction.synonym, entry)
        elif self.policy is SpeculationPolicy.STORE_SETS:
            # Store-to-store ordering within a set: this store waits for
            # the set's previous (last fetched) store.
            entry.sync_wait_store = self.store_sets.store_dispatched(
                entry
            )

    # -- readiness ---------------------------------------------------------------

    def _exec_ready_time(self, entry: Entry) -> Optional[int]:
        """Cycle the entry may go to the execution scheduler, or None."""
        if entry.is_store and not self.as_mode:
            if entry.addr_pending or entry.data_pending:
                return None
            return max(entry.addr_ready, entry.data_ready)
        if entry.addr_pending:
            return None
        return entry.addr_ready

    def _maybe_ready(self, entry: Entry) -> None:
        if entry.issue_cycle is not None or entry.in_ready_pool:
            # Already issued its scheduler phase; stores in AS mode may
            # still be waiting on data for the write phase.
            if (
                entry.is_store and self.as_mode
                and entry.agen_done is not None
                and not entry.data_pending
                and not entry.in_mem_pool
                and entry.write_cycle is None
            ):
                self.store_write_pool.push(entry)
                self._progress = True
            return
        ready_at = self._exec_ready_time(entry)
        if ready_at is None:
            return
        if ready_at <= self.cycle:
            self.ready_pool.push(entry)
        else:
            self._schedule(ready_at, _EV_READY, entry)

    # -- issue -------------------------------------------------------------

    def _issue(self) -> None:
        funits = self.funits
        funits.begin_cycle(self.cycle)
        self._issue_memory()
        self._issue_exec()
        if self.telemetry is not None:
            self.telemetry.sample(
                occupancy=len(self.window),
                issued=funits.issued_this_cycle,
                ports_used=funits.ports_used_this_cycle,
            )

    def _issue_exec(self) -> None:
        funits = self.funits
        pool = self.ready_pool
        deferred: List[Entry] = []
        scans = self.config.window.issue_width * 3
        while funits.issue_slots_left and scans:
            scans -= 1
            entry = pool.pop()
            if entry is None:
                break
            ready_at = self._exec_ready_time(entry)
            if ready_at is None or ready_at > self.cycle:
                if ready_at is not None:
                    self._schedule(ready_at, _EV_READY, entry)
                continue
            op = entry.inst.op
            fu_class = (
                OpClass.IALU
                if entry.inst.is_mem or entry.inst.is_branch
                else op
            )
            if not funits.can_issue(fu_class):
                deferred.append(entry)
                continue
            if entry.is_store and not self.as_mode:
                # Store-set ordering: a store waits for its set's
                # previous store to issue first.
                wait = entry.sync_wait_store
                if (
                    wait is not None
                    and not wait.squashed
                    and wait.issue_cycle is None
                ):
                    deferred.append(entry)
                    continue
                # NAS store: single issue needs a memory port too.
                if not funits.can_access_memory():
                    deferred.append(entry)
                    continue
                funits.take_issue(fu_class)
                funits.take_port()
                self._do_issue_store_nas(entry)
            elif entry.is_store:
                funits.take_issue(fu_class)
                self._do_issue_store_agen_as(entry)
            elif entry.is_load:
                funits.take_issue(fu_class)
                self._do_issue_load_agen(entry)
            else:
                funits.take_issue(fu_class)
                self._do_issue_alu(entry)
            self._progress = True
        for entry in deferred:
            pool.push(entry)
        if deferred:
            self._progress = True

    def _do_issue_alu(self, entry: Entry) -> None:
        entry.issue_cycle = self.cycle
        latency = self.config.latencies.latency(entry.inst.op)
        entry.complete_cycle = self.cycle + latency
        self._schedule(entry.complete_cycle, _EV_COMPLETE, entry)

    def _do_issue_load_agen(self, entry: Entry) -> None:
        entry.issue_cycle = self.cycle
        entry.agen_done = self.cycle + 1
        self.load_pool.push(entry)
        self._hints.append(entry.agen_done)

    def _do_issue_store_nas(self, entry: Entry) -> None:
        entry.issue_cycle = self.cycle
        entry.agen_done = self.cycle + 1
        # 1 cycle address calculation + 1 cycle to the store buffer.
        entry.write_cycle = self.cycle + 2
        entry.complete_cycle = entry.write_cycle
        # The store has issued: younger loads may now go (they forward
        # from the store buffer, where the data is available next cycle).
        self.unexec_stores.on_execute(entry.seq)
        if entry.barrier:
            self.barrier_stores.on_execute(entry.seq)
        self._store_buffer_insert(entry, data_ready=self.cycle + 1)
        self._schedule(entry.write_cycle, _EV_WRITE, entry)

    def _do_issue_store_agen_as(self, entry: Entry) -> None:
        entry.issue_cycle = self.cycle
        entry.agen_done = self.cycle + 1
        visible = self.addr_sched.post_address(entry, entry.agen_done)
        entry.posted_cycle = visible
        self._schedule(visible, _EV_POST, entry)
        if not entry.data_pending:
            self.store_write_pool.push(entry)

    # -- memory stage -----------------------------------------------------------

    def _issue_memory(self) -> None:
        funits = self.funits
        cycle = self.cycle
        loads = self.load_pool.live_entries()
        writes = self.store_write_pool.live_entries()
        candidates = sorted(loads + writes, key=lambda e: e.seq)
        for entry in candidates:
            if not funits.can_access_memory():
                self._progress = True  # ports exhausted: retry next cycle
                break
            if entry.is_store:
                ready = max(entry.data_ready, entry.agen_done or 0)
                if ready > cycle:
                    self._hints.append(ready)
                    continue
                funits.take_port()
                self.store_write_pool.remove(entry)
                entry.write_cycle = cycle + 1
                entry.complete_cycle = entry.write_cycle
                self.unexec_stores.on_execute(entry.seq)
                if entry.barrier:
                    self.barrier_stores.on_execute(entry.seq)
                self._store_buffer_insert(entry, data_ready=cycle + 1)
                self._schedule(entry.write_cycle, _EV_WRITE, entry)
                self._progress = True
            else:
                open_, hint = self._load_gate(entry)
                if not open_:
                    if hint is not None:
                        self._hints.append(hint)
                    continue
                self._note_fd_resolution(entry)
                funits.take_port()
                self.load_pool.remove(entry)
                self._access_memory(entry)
                self._progress = True

    def _access_memory(self, entry: Entry) -> None:
        cycle = self.cycle
        inst = entry.inst
        entry.mem_issue_cycle = cycle
        if self.unexec_stores.any_older_than(entry.seq):
            entry.speculative = True
        dep_entry = (
            self.window.get(entry.dep_store_seq)
            if entry.dep_store_seq is not None else None
        )
        if dep_entry is not None and not dep_entry.executed:
            entry.premature = True
        buffered, full = self.store_buffer.search(
            entry.seq, inst.addr, inst.size
        )
        if buffered is not None and full:
            complete = max(cycle + 1, buffered.data_ready_cycle + 1)
            entry.forwarded_from = buffered.seq
        elif buffered is not None:
            # Partial overlap: wait for the store, then read the cache.
            start = max(cycle, buffered.data_ready_cycle)
            complete = self.hierarchy.load(inst.addr, start)
        else:
            complete = self.hierarchy.load(inst.addr, cycle)
        entry.complete_cycle = complete
        self._schedule(complete, _EV_COMPLETE, entry)

    # -- load gates (the paper's policies) ---------------------------------------

    def _load_gate(self, entry: Entry) -> Tuple[bool, Optional[int]]:
        """May *entry* access memory this cycle?

        Returns ``(open, hint)`` — *hint* is a future cycle worth
        re-checking at, when known (pure time-based gates); event-driven
        gates (waiting on a store write) return ``(False, None)``.
        """
        cycle = self.cycle
        if entry.agen_done is None or entry.agen_done > cycle:
            return False, entry.agen_done
        if self.as_mode:
            return self._load_gate_as(entry)
        policy = self.policy
        if policy is SpeculationPolicy.NAIVE:
            return True, None
        if policy is SpeculationPolicy.NO:
            return self._gate_wait_all_stores(entry)
        if policy is SpeculationPolicy.SELECTIVE:
            if entry.predicted_dep:
                return self._gate_wait_all_stores(entry)
            return True, None
        if policy is SpeculationPolicy.STORE_BARRIER:
            if self.barrier_stores.any_older_than(entry.seq):
                self._note_fd_wait(entry)
                return False, None
            return True, None
        if policy in (
            SpeculationPolicy.SYNC, SpeculationPolicy.STORE_SETS
        ):
            wait_store = entry.sync_wait_store
            if wait_store is None or wait_store.squashed:
                return True, None
            if wait_store.executed:
                return True, None
            if wait_store.issue_cycle is not None:
                # Free to issue one cycle after the producer issues.
                if cycle >= wait_store.issue_cycle + 1:
                    return True, None
                return False, wait_store.issue_cycle + 1
            return False, None
        if policy is SpeculationPolicy.ORACLE:
            if entry.dep_store_seq is None:
                return True, None
            dep = self.window.get(entry.dep_store_seq)
            if dep is None or dep.executed:
                return True, None
            # Value available one cycle after the producing store issues
            # (forwarded from the store buffer) — the paper's oracle still
            # charges the store's own issue timing (Section 3.4.1).
            if dep.issue_cycle is not None:
                if cycle >= dep.issue_cycle + 1:
                    return True, None
                return False, dep.issue_cycle + 1
            self._note_fd_wait(entry)
            return False, None
        raise AssertionError(f"unhandled policy {policy}")

    def _gate_wait_all_stores(
        self, entry: Entry
    ) -> Tuple[bool, Optional[int]]:
        if self.unexec_stores.any_older_than(entry.seq):
            self._note_fd_wait(entry)
            return False, None
        return True, None

    def _load_gate_as(self, entry: Entry) -> Tuple[bool, Optional[int]]:
        cycle = self.cycle
        search_from = entry.agen_done + self.addr_sched.latency
        if cycle < search_from:
            return False, search_from
        if self.policy is SpeculationPolicy.NO:
            if not self.addr_sched.all_older_posted(entry.seq, cycle):
                self._note_fd_wait(entry)
                return False, None
        match = self.addr_sched.youngest_older_match(
            entry.seq, entry.inst.addr, entry.inst.size, cycle
        )
        if match is not None:
            # A known true dependence: the load always waits for the
            # store's data, then forwards from the store buffer.
            if match.write_cycle is None:
                return False, None
            if cycle < match.write_cycle:
                return False, match.write_cycle
        return True, None

    # -- Table 3 accounting ---------------------------------------------------

    def _note_fd_wait(self, entry: Entry) -> None:
        """Record the first cycle a load was blocked by older stores."""
        if entry.fd_wait_start is not None:
            return
        entry.fd_wait_start = self.cycle
        dep = (
            self.window.get(entry.dep_store_seq)
            if entry.dep_store_seq is not None else None
        )
        if dep is not None and not dep.executed:
            entry.fd_class = "true"
        else:
            entry.fd_class = "false"

    def _note_fd_resolution(self, entry: Entry) -> None:
        if entry.fd_wait_start is not None and (
            entry.fd_resolved_cycle is None
        ):
            entry.fd_resolved_cycle = self.cycle

    # -- periodic table flushes ---------------------------------------------------

    def _maybe_flush_tables(self) -> None:
        if self.cycle < self._next_flush:
            return
        interval = self.config.memdep.flush_interval
        while self._next_flush <= self.cycle:
            self._next_flush += interval
        if self.predictor is not None:
            self.predictor.flush()
        if self.mdpt is not None:
            self.mdpt.flush()
        if self.store_sets is not None:
            self.store_sets.flush()

    # -- cache stat snapshots ---------------------------------------------------

    def _snapshot_caches(self, stats: SimResult) -> None:
        stats.dcache_accesses = self.hierarchy.dcache.accesses
        stats.dcache_misses = self.hierarchy.dcache.misses
        stats.icache_accesses = self.hierarchy.icache.accesses
        stats.icache_misses = self.hierarchy.icache.misses
        stats.l2_accesses = self.hierarchy.l2.accesses
        stats.l2_misses = self.hierarchy.l2.misses


def simulate(
    config: ProcessorConfig,
    trace: Trace,
    plan: Optional[SamplingPlan] = None,
    dep_info: Optional[Dict[int, DependenceInfo]] = None,
) -> SimResult:
    """Convenience wrapper: build a processor for *trace* and run it."""
    processor = Processor(config, trace, dep_info)
    return processor.run(plan)
