"""Simulator backend registry.

Three backends produce bit-identical :class:`~repro.core.result.SimResult`
numbers for the same (config, trace, plan):

``reference``
    The pure-Python object-per-instruction core
    (:class:`repro.core.processor.Processor`). Always available, always
    authoritative; the golden-parity fixture is regenerated from it.

``vector``
    The structure-of-arrays core (:class:`repro.core.vector.
    VectorProcessor`) that consumes packed ``CompiledTrace`` columns
    directly — no ``DynInst`` materialization on the fast path. It
    exists purely for throughput; any divergence from ``reference`` is
    a bug (CI's ``backend-parity`` job enforces this).

``eventsim``
    The discrete-event split-window machine
    (:class:`repro.eventsim.splitwindow.EventSplitWindowProcessor`).
    It exists for *coverage*, not speed: it is the only backend that
    models non-degenerate sync-fabric settings (link latency, bounded
    bandwidth, banked memory — see
    :class:`repro.config.processor.SplitWindowConfig`). At degenerate
    fabric settings it is bit-identical to the legacy cycle-driven
    split model (CI's ``eventsim-parity`` job enforces this); for
    non-split configs it delegates to ``reference``.

Selection precedence (first non-empty wins)::

    explicit argument > config.backend > $REPRO_BACKEND > "reference"

The ``vector`` backend transparently delegates to ``reference`` when a
run needs per-instruction objects (observability, timeline, telemetry,
or a split-window config) — see :func:`vector_limitation`.

The vector core additionally runs with **event-horizon cycle elision**
by default: when a cycle provably cannot schedule, complete, fetch or
commit anything, the clock jumps straight to the next possible event
and the skipped cycles are charged to the same stall causes the
:class:`~repro.observe.stalls.StallAccountant` would report. Elision
never changes results (every golden cell is bit-identical either way;
``repro.check.elision`` verifies each elided cycle is
schedulable-empty on the reference core). ``REPRO_VECTOR_ELIDE=0``
forces the single-step walk for A/B debugging — see
:func:`backend_capabilities`.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, Optional, Tuple

#: Environment variable consulted when neither an explicit argument nor
#: ``config.backend`` selects a backend.
BACKEND_ENV = "REPRO_BACKEND"

#: Environment knob for the vector core's event-horizon elision:
#: unset/``"1"`` elides provably-idle cycles, ``"0"`` forces the
#: single-step walk (CI runs the golden-parity suite under both).
ELIDE_ENV = "REPRO_VECTOR_ELIDE"

DEFAULT_BACKEND = "reference"

#: name -> factory(config, trace, dep_info=None, observer=None) -> runner
#: where the runner exposes ``.run(plan) -> SimResult``.
_REGISTRY: Dict[str, Callable] = {}


class UnknownBackendError(ValueError):
    """Requested backend name is not registered."""

    def __init__(self, name: str) -> None:
        super().__init__(
            f"unknown simulator backend {name!r}; "
            f"available: {', '.join(available_backends())}"
        )
        self.name = name


def register_backend(name: str, factory: Callable) -> None:
    """Register *factory* under *name* (last registration wins)."""
    _REGISTRY[name] = factory


def available_backends() -> Tuple[str, ...]:
    """Sorted names of every registered backend."""
    return tuple(sorted(_REGISTRY))


def get_backend(name: str) -> Callable:
    """Factory for *name*, raising :class:`UnknownBackendError`."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownBackendError(name) from None


def resolve_backend(
    explicit: Optional[str] = None, config=None
) -> str:
    """Resolve the effective backend name.

    Precedence: *explicit* > ``config.backend`` > ``$REPRO_BACKEND`` >
    ``"reference"``. The resolved name is validated against the
    registry so typos fail fast at selection time, not deep inside a
    sweep.
    """
    name = explicit
    if not name and config is not None:
        name = getattr(config, "backend", None)
    if not name:
        name = os.environ.get(BACKEND_ENV) or None
    if not name:
        name = DEFAULT_BACKEND
    if name not in _REGISTRY:
        raise UnknownBackendError(name)
    return name


def backend_capabilities(name: str) -> Dict[str, object]:
    """Feature flags for a registered backend (raises on unknown).

    Keys:

    ``objects``
        Keeps per-instruction objects — required for observability,
        timelines, telemetry and split-window configs.
    ``compiled_columns``
        Consumes packed ``CompiledTrace`` columns without ``DynInst``
        materialization.
    ``cycle_elision``
        Supports event-horizon cycle elision, with the current
        effective setting in ``elision_enabled`` (read from
        :data:`ELIDE_ENV` at call time) and the knob name in
        ``elision_env``.
    """
    if name not in _REGISTRY:
        raise UnknownBackendError(name)
    if name == "vector":
        return {
            "objects": False,
            "compiled_columns": True,
            "cycle_elision": True,
            "elision_enabled": os.environ.get(ELIDE_ENV, "1") != "0",
            "elision_env": ELIDE_ENV,
        }
    if name == "eventsim":
        return {
            "objects": True,
            "compiled_columns": False,
            "cycle_elision": False,
            "event_driven": True,
            "sync_fabric": True,
        }
    return {
        "objects": True,
        "compiled_columns": False,
        "cycle_elision": False,
    }


def vector_limitation(
    config, observer=None, timeline=None, telemetry=None
) -> Optional[str]:
    """Why this run cannot use the vector fast path (None if it can).

    The vector core keeps no per-instruction objects, so anything that
    wants to inspect them — the observability bus, pipeview timelines,
    utilisation telemetry — or a split-window configuration (modelled
    only by the reference core) forces the reference backend.
    """
    if observer is not None or getattr(config, "observe", False):
        return "observability requires the reference backend"
    if timeline is not None:
        return "timeline recording requires the reference backend"
    if telemetry is not None:
        return "telemetry sampling requires the reference backend"
    split = getattr(config, "split", None)
    if split is not None and getattr(split, "enabled", False):
        return "split-window configs require the reference backend"
    return None


def eventsim_limitation(config) -> Optional[str]:
    """Why this run cannot use the event-driven machine (None if it can).

    The event engine models only split-window machines; continuous-
    window configs delegate to ``reference``.
    """
    split = getattr(config, "split", None)
    if split is None or not getattr(split, "enabled", False):
        return "eventsim models split-window configs only"
    return None


def split_backend_for(config, backend_name: str) -> str:
    """Which backend actually serves a split-window run.

    Non-degenerate fabric settings exist only in the event-driven
    machine, so they force ``eventsim`` regardless of the requested
    backend; an explicit ``eventsim`` request is honoured; anything
    else falls back to the legacy cycle-driven reference model (the
    two are bit-identical wherever both are defined).
    """
    split = getattr(config, "split", None)
    if split is None or not getattr(split, "enabled", False):
        raise ValueError("not a split-window config")
    if backend_name == "eventsim" or not split.fabric_degenerate:
        return "eventsim"
    return "reference"


# ----------------------------------------------------------------------
# built-in backends (lazy imports: processor.py imports this module)
# ----------------------------------------------------------------------

def _reference_factory(
    config, trace, dep_info=None, observer=None, **kwargs
):
    from repro.core.processor import Processor

    return Processor(
        config, trace, dep_info, observer=observer, **kwargs
    )


def _vector_factory(
    config, trace, dep_info=None, observer=None, **kwargs
):
    reason = vector_limitation(
        config,
        observer=observer,
        timeline=kwargs.get("timeline"),
        telemetry=kwargs.get("telemetry"),
    )
    if reason is not None:
        return _reference_factory(
            config, trace, dep_info, observer=observer, **kwargs
        )
    from repro.core.vector import VectorProcessor

    return VectorProcessor(config, trace, dep_info)


def _eventsim_factory(
    config, trace, dep_info=None, observer=None, **kwargs
):
    if eventsim_limitation(config) is not None:
        return _reference_factory(
            config, trace, dep_info, observer=observer, **kwargs
        )
    from repro.eventsim.splitwindow import EventSplitWindowProcessor

    return EventSplitWindowProcessor(config, trace, dep_info)


register_backend("reference", _reference_factory)
register_backend("vector", _vector_factory)
register_backend("eventsim", _eventsim_factory)
