"""Issue machinery: ready pools with program-order priority, FU tracking.

The ready pool is a min-heap keyed by sequence number — older ready
instructions always issue first, the defining scheduling property of the
paper's centralized continuous window.
"""

from __future__ import annotations

import heapq
from typing import List, Optional

from repro.config.processor import WindowConfig
from repro.core.window import Entry
from repro.isa.opcodes import FP_CLASSES, OpClass


class ReadyPool:
    """Seq-ordered pool of entries whose operands are ready."""

    def __init__(self) -> None:
        self._heap: List = []

    def push(self, entry: Entry) -> None:
        if entry.in_ready_pool or entry.squashed:
            return
        entry.in_ready_pool = True
        heapq.heappush(self._heap, (entry.seq, entry))

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def pop(self) -> Optional[Entry]:
        """Oldest live entry, or None."""
        while self._heap:
            _, entry = heapq.heappop(self._heap)
            entry.in_ready_pool = False
            if not entry.squashed:
                return entry
        return None

    def clear(self) -> None:
        for _, entry in self._heap:
            entry.in_ready_pool = False
        self._heap.clear()


class FunctionalUnits:
    """Per-cycle functional-unit and bandwidth accounting.

    Table 2: "8 copies of all functional units. All are fully-pipelined."
    We model two pools (integer + branch + AGU, and floating point), each
    accepting ``fu_copies`` new operations per cycle, under a shared
    ``issue_width`` cap; memory accesses are limited by ``memory_ports``.
    """

    def __init__(self, config: WindowConfig) -> None:
        self.config = config
        # Hot-path copies: the per-cycle issue loops read these limits
        # many times and the config is immutable.
        self._issue_width = config.issue_width
        self._fu_copies = config.fu_copies
        self._memory_ports = config.memory_ports
        self._cycle = -1
        self._issued = 0
        self._int_used = 0
        self._fp_used = 0
        self._ports_used = 0

    def begin_cycle(self, cycle: int) -> None:
        self._cycle = cycle
        self._issued = 0
        self._int_used = 0
        self._fp_used = 0
        self._ports_used = 0

    @property
    def issue_slots_left(self) -> int:
        return self._issue_width - self._issued

    @property
    def ports_left(self) -> int:
        return self._memory_ports - self._ports_used

    @property
    def issued_this_cycle(self) -> int:
        return self._issued

    @property
    def ports_used_this_cycle(self) -> int:
        return self._ports_used

    def can_issue(self, op: OpClass) -> bool:
        """Would an op of class *op* find a slot and a unit this cycle?"""
        return self.can_issue_unit(op in FP_CLASSES)

    def can_issue_unit(self, uses_fp: bool) -> bool:
        """``can_issue`` with the FP-pool membership already resolved."""
        if self._issued >= self._issue_width:
            return False
        if uses_fp:
            return self._fp_used < self._fu_copies
        return self._int_used < self._fu_copies

    def take_issue(self, op: OpClass) -> None:
        """Consume one issue slot plus the matching FU."""
        self.take_issue_unit(op in FP_CLASSES)

    def take_issue_unit(self, uses_fp: bool) -> None:
        """``take_issue`` with the FP-pool membership already resolved."""
        self._issued += 1
        if uses_fp:
            self._fp_used += 1
        else:
            self._int_used += 1

    def can_access_memory(self) -> bool:
        return self._ports_used < self._memory_ports

    def take_port(self) -> None:
        self._ports_used += 1
