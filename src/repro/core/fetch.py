"""Fetch unit: pulls the trace through the I-cache and branch predictor.

Up to ``width`` instructions per cycle, spanning at most
``max_blocks_per_cycle`` I-cache blocks. A block that misses stalls
fetch until the fill returns. A mispredicted branch stops fetch at the
branch; the processor restarts it ``branch_redirect_penalty`` cycles
after the branch resolves. Fetched instructions wait
``front_end_depth`` cycles before entering the window ("a combined 4
cycles for an instruction to be fetched and placed into the reorder
buffer").
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Tuple

from repro.branch.unit import BranchUnit
from repro.config.processor import ProcessorConfig
from repro.isa.instruction import DynInst
from repro.memory.hierarchy import MemoryHierarchy
from repro.trace.cursor import TraceCursor


class FetchUnit:
    """Trace-driven front end."""

    def __init__(
        self,
        config: ProcessorConfig,
        cursor: TraceCursor,
        hierarchy: MemoryHierarchy,
        branch_unit: BranchUnit,
    ) -> None:
        self.config = config
        self.cursor = cursor
        self.hierarchy = hierarchy
        self.branch_unit = branch_unit
        self._block_shift = config.icache.block_bytes.bit_length() - 1
        # Hot-path copies of immutable config values read every tick.
        self._width = config.fetch.width
        self._max_blocks = config.fetch.max_blocks_per_cycle
        self._front_end_depth = config.fetch.front_end_depth
        self._hit_latency = config.icache.hit_latency
        #: (instruction, earliest dispatch cycle), in program order.
        self.buffer: Deque[Tuple[DynInst, int]] = deque()
        self._buffer_cap = config.fetch.width * config.fetch.front_end_depth
        #: Fetch may not run again before this cycle (I-cache miss).
        self.stalled_until = 0
        #: Seq of an unresolved mispredicted branch blocking fetch.
        self.waiting_on_branch: Optional[int] = None
        #: Recently fetched blocks (block -> ready cycle): models the
        #: fetch unit combining requests to the same line ("up to 4 fetch
        #: requests can be active", "combining of up to 4 blocks") so a
        #: tight loop does not re-probe the I-cache every iteration.
        self._recent_blocks: dict = {}
        self._recent_cap = 4 * config.fetch.max_blocks_per_cycle
        #: Optional observability bus (repro.observe); set by the
        #: processor after construction. Guarded per tick, not per
        #: instruction, so the disabled path costs one None test.
        self.observer = None

    @property
    def done(self) -> bool:
        return self.cursor.exhausted and not self.buffer

    def resume_after_branch(self, seq: int, cycle: int) -> None:
        """The mispredicted branch *seq* resolved; redirect fetch."""
        if self.waiting_on_branch == seq:
            self.waiting_on_branch = None
            self.stalled_until = max(
                self.stalled_until,
                cycle + self.config.branch_redirect_penalty,
            )

    def squash(self, seq: int, resume_cycle: int) -> None:
        """Memory-order violation: refetch from *seq* onward."""
        while self.buffer and self.buffer[-1][0].seq >= seq:
            self.buffer.pop()
        if self.cursor.position > seq:
            self.cursor.rewind_to(seq)
        if self.waiting_on_branch is not None and (
            self.waiting_on_branch >= seq
        ):
            self.waiting_on_branch = None
        self.stalled_until = max(self.stalled_until, resume_cycle)

    def tick(self, cycle: int) -> int:
        """Fetch up to one cycle's worth of instructions at *cycle*.

        Returns the number of instructions fetched.
        """
        if cycle < self.stalled_until or self.waiting_on_branch is not None:
            return 0
        if len(self.buffer) >= self._buffer_cap:
            return 0
        fetched = 0
        blocks_used = 0
        current_block = None
        width = self._width
        max_blocks = self._max_blocks
        buffer = self.buffer
        buffer_cap = self._buffer_cap
        block_shift = self._block_shift
        recent_blocks = self._recent_blocks
        hit_by = cycle + self._hit_latency
        dispatch_at = cycle + self._front_end_depth
        # Cursor state, walked locally (peek/advance pairs otherwise
        # dominate this loop) and written back on every exit path.
        cursor = self.cursor
        pos = cursor._pos
        stop = cursor._stop
        instructions = cursor._instructions
        observer = self.observer
        while (
            fetched < width
            and len(buffer) < buffer_cap
            and pos < stop
        ):
            inst = instructions[pos]
            block = inst.pc >> block_shift
            if block != current_block:
                if blocks_used >= max_blocks:
                    break
                blocks_used += 1
                current_block = block
                available = recent_blocks.get(block)
                if available is None:
                    available = self.hierarchy.fetch(inst.pc, cycle)
                    recent_blocks[block] = available
                    if len(recent_blocks) > self._recent_cap:
                        oldest = next(iter(recent_blocks))
                        del recent_blocks[oldest]
                if available > hit_by:
                    # I-cache miss: this block arrives later; stop here.
                    self.stalled_until = available
                    break
            pos += 1
            buffer.append((inst, dispatch_at))
            fetched += 1
            if observer is not None:
                observer.emit_fetch(inst, cycle)
            if inst.op.branch_class:
                prediction = self.branch_unit.predict_and_train(inst)
                if not prediction.correct:
                    # Wrong path: nothing more until the branch resolves.
                    self.waiting_on_branch = inst.seq
                    break
                if inst.taken:
                    # A correctly-predicted taken branch still ends the
                    # current run of sequential PCs within this block.
                    current_block = None
        cursor._pos = pos
        return fetched

    def pop_dispatchable(self, cycle: int) -> Optional[DynInst]:
        """Next instruction whose front-end latency has elapsed, if any."""
        if self.buffer and self.buffer[0][1] <= cycle:
            return self.buffer.popleft()[0]
        return None

    def next_dispatch_cycle(self) -> Optional[int]:
        """Cycle the buffered head becomes dispatchable, or None."""
        return self.buffer[0][1] if self.buffer else None
