"""The instruction window (RUU-style reorder buffer) and its entries.

*Centralized, continuous window*: instructions enter in program order,
occupy one entry until commit, and all scheduling decisions prefer older
instructions (program-order priority). Squash invalidation truncates the
window from the youngest end.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.isa.instruction import DynInst
from repro.isa.opcodes import OpClass
from repro.isa.registers import REG_ZERO


class Entry:
    """One in-flight dynamic instruction."""

    __slots__ = (
        "inst", "seq", "dispatch_cycle",
        # class flags, resolved once at construction (hot-path reads)
        "is_load", "is_store", "is_branch", "uses_fp_unit",
        # operand tracking: 'addr' covers every source except a store's
        # data operand, which is tracked separately so the two-phase AS
        # store model (address early, data late) is expressible.
        "addr_pending", "addr_ready", "data_pending", "data_ready",
        "issue_cycle", "agen_done", "mem_issue_cycle",
        "complete_cycle", "write_cycle", "posted_cycle",
        "executed", "squashed", "in_ready_pool", "in_mem_pool",
        "waiters", "producers", "consumers",
        # memory-dependence bookkeeping
        "dep_store_seq", "stale_equal", "speculative",
        "forwarded_from", "premature",
        # policy annotations
        "sync_synonym", "sync_wait_store", "predicted_dep", "barrier",
        # Table 3 accounting
        "fd_wait_start", "fd_class", "fd_resolved_cycle",
        # observability (repro.observe): first blocked event emitted
        "observed_blocked",
    )

    def __init__(self, inst: DynInst, dispatch_cycle: int) -> None:
        self.inst = inst
        self.seq = inst.seq
        self.dispatch_cycle = dispatch_cycle
        op = inst.op
        self.is_load = op is OpClass.LOAD
        self.is_store = op is OpClass.STORE
        self.is_branch = op.branch_class
        self.uses_fp_unit = op.fp_class
        self.addr_pending = 0
        self.addr_ready = dispatch_cycle
        self.data_pending = 0
        self.data_ready = dispatch_cycle
        self.issue_cycle: Optional[int] = None
        self.agen_done: Optional[int] = None
        self.mem_issue_cycle: Optional[int] = None
        self.complete_cycle: Optional[int] = None
        self.write_cycle: Optional[int] = None
        self.posted_cycle: Optional[int] = None
        self.executed = False
        self.squashed = False
        self.in_ready_pool = False
        self.in_mem_pool = False
        self.waiters: List[Tuple["Entry", bool]] = []  # (entry, is_data)
        #: In-flight producers this entry depended on at dispatch
        #: (used by selective-invalidation recovery).
        self.producers: List["Entry"] = []
        #: Consumers already woken by this entry's completion (kept for
        #: the AS/NAV value-propagation test).
        self.consumers: List[Tuple["Entry", bool]] = []
        self.dep_store_seq: Optional[int] = None
        self.stale_equal = True
        self.speculative = False
        self.forwarded_from: Optional[int] = None
        self.premature = False
        self.sync_synonym: Optional[int] = None
        self.sync_wait_store: Optional["Entry"] = None
        self.predicted_dep = False
        self.barrier = False
        self.fd_wait_start: Optional[int] = None
        self.fd_class: Optional[str] = None  # "false" | "true" | None
        self.fd_resolved_cycle: Optional[int] = None
        self.observed_blocked = False

    @property
    def operands_ready_cycle(self) -> int:
        """Cycle when every operand (address and data) is available."""
        return max(self.addr_ready, self.data_ready)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "squashed" if self.squashed else (
            "done" if self.complete_cycle is not None else "inflight"
        )
        return f"<Entry seq={self.seq} {self.inst.op.name} {state}>"


class Window:
    """Program-ordered window with a register rename map."""

    def __init__(self, size: int) -> None:
        if size < 1:
            raise ValueError("window size must be positive")
        self.size = size
        self._entries: Deque[Entry] = deque()
        self._by_seq: Dict[int, Entry] = {}
        self._last_writer: Dict[int, Entry] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self):
        return iter(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.size

    @property
    def empty(self) -> bool:
        return not self._entries

    def head(self) -> Optional[Entry]:
        """Oldest in-flight entry."""
        return self._entries[0] if self._entries else None

    def get(self, seq: int) -> Optional[Entry]:
        return self._by_seq.get(seq)

    def dispatch(self, entry: Entry) -> None:
        """Insert *entry* (program order), wiring producer links.

        For each source register the youngest older in-flight writer is
        recorded: if it has not completed, *entry* becomes its waiter and
        the corresponding pending count is incremented; if it has, the
        operand-ready time absorbs its completion cycle.
        """
        entries = self._entries
        if len(entries) >= self.size:
            raise RuntimeError("window overflow")
        if entries and entry.seq <= entries[-1].seq:
            raise ValueError("dispatch must follow program order")
        inst = entry.inst
        last_writer = self._last_writer
        is_store = entry.is_store
        for index, src in enumerate(inst.srcs):
            if src == REG_ZERO:
                continue
            # A store's data operand is its second source by convention.
            is_data = is_store and index == 1
            producer = last_writer.get(src)
            if producer is None or producer.squashed:
                continue
            entry.producers.append(producer)
            done = producer.complete_cycle
            if done is not None:
                if is_data:
                    if done > entry.data_ready:
                        entry.data_ready = done
                elif done > entry.addr_ready:
                    entry.addr_ready = done
            else:
                producer.waiters.append((entry, is_data))
                if is_data:
                    entry.data_pending += 1
                else:
                    entry.addr_pending += 1
        dest = inst.dest
        if dest is not None and dest != REG_ZERO:
            last_writer[dest] = entry
        entries.append(entry)
        self._by_seq[entry.seq] = entry

    def commit_head(self) -> Entry:
        """Remove and return the oldest entry."""
        entry = self._entries.popleft()
        del self._by_seq[entry.seq]
        if (
            entry.inst.dest is not None
            and self._last_writer.get(entry.inst.dest) is entry
        ):
            del self._last_writer[entry.inst.dest]
        return entry

    def squash_from(self, seq: int) -> List[Entry]:
        """Invalidate every entry with ``entry.seq >= seq``.

        Returns the squashed entries (youngest first). Only rename-map
        slots owned by a squashed writer are repaired (by scanning the
        survivors youngest-first for a replacement); a squash whose
        victims wrote no register leaves the map untouched.
        """
        squashed: List[Entry] = []
        entries = self._entries
        by_seq = self._by_seq
        last_writer = self._last_writer
        dirty = None
        while entries and entries[-1].seq >= seq:
            entry = entries.pop()
            entry.squashed = True
            del by_seq[entry.seq]
            squashed.append(entry)
            dest = entry.inst.dest
            if dest is not None and last_writer.get(dest) is entry:
                del last_writer[dest]
                if dirty is None:
                    dirty = set()
                dirty.add(dest)
        if dirty:
            for entry in reversed(entries):
                dest = entry.inst.dest
                if dest in dirty:
                    last_writer[dest] = entry
                    dirty.discard(dest)
                    if not dirty:
                        break
        return squashed

    def clear(self) -> None:
        self._entries.clear()
        self._by_seq.clear()
        self._last_writer.clear()
