"""Per-cycle machine telemetry: occupancy and bandwidth utilisation.

Attach a :class:`Telemetry` instance to a processor and every simulated
cycle records window occupancy, instructions issued, and memory ports
used. The summary answers the capacity questions behind the paper's
configuration choices — how full the 128-entry window actually runs,
how much of the 8-wide issue bandwidth a policy can use, and whether
4 memory ports ever saturate.
"""

from __future__ import annotations

from typing import Dict


class Telemetry:
    """Cycle-granularity samples of machine utilisation."""

    def __init__(self, sample_every: int = 1) -> None:
        if sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        self.sample_every = sample_every
        self._tick = 0
        self.cycles_sampled = 0
        self._occupancy_sum = 0
        self._occupancy_max = 0
        self._issued_sum = 0
        self._ports_sum = 0
        #: Histogram of instructions issued per sampled cycle.
        self.issue_histogram: Dict[int, int] = {}
        #: Histogram of memory ports used per sampled cycle.
        self.port_histogram: Dict[int, int] = {}

    def sample(
        self, occupancy: int, issued: int, ports_used: int
    ) -> None:
        """Record one cycle's utilisation (subsampled)."""
        self._tick += 1
        if self._tick % self.sample_every:
            return
        self.cycles_sampled += 1
        self._occupancy_sum += occupancy
        if occupancy > self._occupancy_max:
            self._occupancy_max = occupancy
        self._issued_sum += issued
        self._ports_sum += ports_used
        self.issue_histogram[issued] = (
            self.issue_histogram.get(issued, 0) + 1
        )
        self.port_histogram[ports_used] = (
            self.port_histogram.get(ports_used, 0) + 1
        )

    # -- summaries -----------------------------------------------------------

    @property
    def mean_occupancy(self) -> float:
        if not self.cycles_sampled:
            return 0.0
        return self._occupancy_sum / self.cycles_sampled

    @property
    def max_occupancy(self) -> int:
        return self._occupancy_max

    @property
    def mean_issue(self) -> float:
        if not self.cycles_sampled:
            return 0.0
        return self._issued_sum / self.cycles_sampled

    @property
    def mean_ports(self) -> float:
        if not self.cycles_sampled:
            return 0.0
        return self._ports_sum / self.cycles_sampled

    def issue_fraction_at_least(self, width: int) -> float:
        """Fraction of cycles issuing >= *width* instructions."""
        if not self.cycles_sampled:
            return 0.0
        busy = sum(
            count for issued, count in self.issue_histogram.items()
            if issued >= width
        )
        return busy / self.cycles_sampled

    def render(self, issue_width: int = 8, ports: int = 4) -> str:
        lines = [
            f"cycles sampled     {self.cycles_sampled:,}",
            f"window occupancy   mean {self.mean_occupancy:.1f}, "
            f"max {self.max_occupancy}",
            f"issue bandwidth    mean {self.mean_issue:.2f}/{issue_width}",
            f"memory ports       mean {self.mean_ports:.2f}/{ports}",
            "issue-width histogram:",
        ]
        for width in sorted(self.issue_histogram):
            count = self.issue_histogram[width]
            share = count / max(1, self.cycles_sampled)
            bar = "#" * round(40 * share)
            lines.append(f"  {width:2d} |{bar:<40s}| {share:5.1%}")
        return "\n".join(lines)
