"""Per-instruction pipeline timelines (a pipeview-style debug aid).

Attach a :class:`TimelineRecorder` to a :class:`~repro.core.Processor`
and every committed instruction's stage timestamps are captured:

====  =============================================================
mark  stage
====  =============================================================
``D``  dispatch (enters the window)
``I``  issue (scheduler grants execution / address generation)
``M``  memory access starts (loads) or store write becomes visible
``=``  in flight between issue and completion
``C``  completion (result available)
``R``  retire (commit)
====  =============================================================

The renderer draws one row per instruction over a cycle axis — the
classic way to *see* a load blocked behind a store, a squash bubble, or
an address-scheduler delay.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.window import Entry


@dataclass(frozen=True)
class InstructionTimeline:
    """Stage timestamps of one committed instruction."""

    seq: int
    pc: int
    op: str
    dispatch: int
    issue: Optional[int]
    mem_issue: Optional[int]
    complete: Optional[int]
    commit: int

    @property
    def latency(self) -> int:
        """Dispatch-to-commit residency in cycles."""
        return self.commit - self.dispatch


class TimelineRecorder:
    """Captures committed-instruction timelines inside a seq range."""

    def __init__(
        self,
        start_seq: int = 0,
        limit: int = 64,
    ) -> None:
        if limit < 1:
            raise ValueError("limit must be positive")
        self.start_seq = start_seq
        self.limit = limit
        self.records: List[InstructionTimeline] = []

    @property
    def full(self) -> bool:
        return len(self.records) >= self.limit

    def on_commit(self, entry: Entry, cycle: int) -> None:
        """Called by the processor as each instruction retires."""
        if self.full or entry.seq < self.start_seq:
            return
        complete = (
            entry.write_cycle if entry.is_store else entry.complete_cycle
        )
        mem = entry.mem_issue_cycle
        if entry.is_store:
            mem = entry.write_cycle
        self.records.append(InstructionTimeline(
            seq=entry.seq,
            pc=entry.inst.pc,
            op=entry.inst.op.name,
            dispatch=entry.dispatch_cycle,
            issue=entry.issue_cycle,
            mem_issue=mem,
            complete=complete,
            commit=cycle,
        ))

    def render(self, max_width: int = 100) -> str:
        """ASCII pipeview of the captured instructions."""
        if not self.records:
            return "(no instructions captured)"
        base = min(r.dispatch for r in self.records)
        end = max(r.commit for r in self.records)
        span = end - base + 1
        scale = max(1, -(-span // max_width))  # cycles per column
        columns = -(-span // scale)

        def col(cycle: Optional[int]) -> Optional[int]:
            if cycle is None:
                return None
            return min(columns - 1, max(0, (cycle - base) // scale))

        lines = [
            f"cycles {base}..{end}"
            + (f" ({scale} cycles/column)" if scale > 1 else "")
        ]
        for r in self.records:
            row = [" "] * columns
            issue_col = col(r.issue)
            complete_col = col(r.complete)
            if issue_col is not None and complete_col is not None:
                for i in range(issue_col, complete_col + 1):
                    row[i] = "="
                # Loads waiting in the LSQ (policy gate / ports) between
                # address generation and the actual memory access.
                mem_wait = col(r.mem_issue)
                if r.op == "LOAD" and mem_wait is not None:
                    for i in range(issue_col, mem_wait):
                        row[i] = "-"
            dispatch_col = col(r.dispatch)
            if dispatch_col is not None:
                row[dispatch_col] = "D"
            if issue_col is not None:
                row[issue_col] = "I"
            mem_col = col(r.mem_issue)
            if mem_col is not None and not (
                r.op == "STORE" and r.mem_issue == r.complete
            ):
                row[mem_col] = "M"
            if complete_col is not None:
                row[complete_col] = "C"
            commit_col = col(r.commit)
            if commit_col is not None:
                row[commit_col] = "R"
            label = f"{r.seq:6d} {r.op:8s}"
            lines.append(f"{label} |{''.join(row)}|")
        return "\n".join(lines)

    def mean_latency(self) -> float:
        """Average dispatch-to-commit residency of captured records."""
        if not self.records:
            return 0.0
        return sum(r.latency for r in self.records) / len(self.records)
