"""Frontier-batched kernels for the vector backend.

The vector core's inner loop is event-driven: most per-cycle work
touches a handful of instructions, where plain CPython beats any array
library's fixed call overhead. But the three hottest inner operations
— dependence wakeup, memory-conflict search, and issue selection —
scale with *frontier size*, and on wide frontiers the per-element
interpreter dispatch dominates. Each of those operations lives here as
a pair of twins:

* a pure-Python scalar twin (``*_py``) — the reference semantics, used
  for small frontiers and on numpy-free installs;
* a numpy twin (``*_np``) — bit-identical results computed across the
  whole frontier at once, engaged only above a size threshold where
  the array overhead amortizes.

Twin equivalence (including tie-breaking by sequence number) is pinned
by hypothesis property tests (``tests/test_vector_kernels.py``); the
integration is pinned by the golden-parity suite, which CI replays on
the fallback path with ``REPRO_VECTOR_NO_NUMPY=1``.
"""

from __future__ import annotations

import os
from typing import List, Optional, Sequence, Tuple

try:
    import numpy as np
except ImportError:  # pragma: no cover - numpy-free environments
    np = None

#: Environment switch: force the pure-Python twins everywhere (CI's
#: explicit fallback leg), regardless of whether numpy imports.
NO_NUMPY_ENV = "REPRO_VECTOR_NO_NUMPY"

#: Frontier-size thresholds below which the scalar twin is faster than
#: the numpy twin's fixed call overhead (measured on CPython 3.11; the
#: exact crossover is machine-dependent but the shape is not).
WAKEUP_MIN_FRONTIER = 64
CONFLICT_MIN_STORES = 64
ISSUE_MIN_FRONTIER = 64


def numpy_active() -> bool:
    """True when the numpy twins may be used."""
    return np is not None and os.environ.get(NO_NUMPY_ENV, "0") != "1"


# ---------------------------------------------------------------------------
# CSR wakeup scatter
# ---------------------------------------------------------------------------

def wakeup_scatter_py(
    wseq: Sequence[int],
    wdata: Sequence[int],
    done: int,
    a_pend: List[int],
    d_pend: List[int],
    a_rdy: List[int],
    d_rdy: List[int],
) -> List[int]:
    """Apply one completion's waiter updates; scalar twin.

    ``wseq[i]``/``wdata[i]`` describe the live waiter records of a
    producer whose result is ready at *done*: the consumer sequence
    number and whether the dependence feeds store data (1) or an
    operand/address (0). A consumer appears once per source operand it
    was waiting on, so duplicates must accumulate.

    Updates ``a_pend``/``d_pend`` (decrement per record) and
    ``a_rdy``/``d_rdy`` (max with *done*) in place, and returns the
    distinct touched sequence numbers in first-appearance order — the
    sub-frontier the caller re-checks for readiness, in the same order
    the scalar wakeup walk would have visited it.
    """
    touched: List[int] = []
    seen = set()
    for i, s in enumerate(wseq):
        if wdata[i]:
            d_pend[s] -= 1
            if done > d_rdy[s]:
                d_rdy[s] = done
        else:
            a_pend[s] -= 1
            if done > a_rdy[s]:
                a_rdy[s] = done
        if s not in seen:
            seen.add(s)
            touched.append(s)
    return touched


def wakeup_scatter_np(
    wseq: Sequence[int],
    wdata: Sequence[int],
    done: int,
    a_pend: List[int],
    d_pend: List[int],
    a_rdy: List[int],
    d_rdy: List[int],
) -> List[int]:
    """Numpy twin of :func:`wakeup_scatter_py`.

    The scatter runs as two ``subtract.at``/``maximum.at`` pairs over
    the frontier's index arrays (unbuffered, so duplicate consumers
    accumulate exactly like the scalar walk); results are written back
    into the caller's plain-list state.
    """
    seqs = np.asarray(wseq, dtype=np.int64)
    data = np.asarray(wdata, dtype=bool)
    for mask, pend, rdy in (
        (data, d_pend, d_rdy), (~data, a_pend, a_rdy),
    ):
        idx = seqs[mask]
        if not idx.size:
            continue
        uniq, counts = np.unique(idx, return_counts=True)
        for s, c in zip(uniq.tolist(), counts.tolist()):
            pend[s] -= c
            if done > rdy[s]:
                rdy[s] = done
    # First-appearance order == index of first occurrence, ascending.
    _, first = np.unique(seqs, return_index=True)
    return seqs[np.sort(first)].tolist()


# ---------------------------------------------------------------------------
# Broadcast conflict search
# ---------------------------------------------------------------------------

def conflict_search_py(
    l_seq: Sequence[int],
    l_addr: Sequence[int],
    l_size: Sequence[int],
    s_seq: Sequence[int],
    s_addr: Sequence[int],
    s_size: Sequence[int],
    s_vis: Optional[Sequence[int]] = None,
    cycle: int = 0,
) -> List[int]:
    """Youngest older overlapping store per load; scalar twin.

    For each load ``i``, returns the largest ``s_seq[j] < l_seq[i]``
    whose ``[s_addr, s_addr + s_size)`` overlaps the load's byte range
    (and, when *s_vis* is given, whose address is visible by *cycle*),
    or ``-1``. Stores are given seq-sorted, so the reverse scan's first
    hit is the youngest — the same tie-break the address scheduler's
    per-load search applies.
    """
    out: List[int] = []
    ns = len(s_seq)
    for i, lseq in enumerate(l_seq):
        addr = l_addr[i]
        end = addr + l_size[i]
        match = -1
        for j in range(ns - 1, -1, -1):
            if s_seq[j] >= lseq:
                continue
            if s_vis is not None and s_vis[j] > cycle:
                continue
            saddr = s_addr[j]
            if saddr < end and addr < saddr + s_size[j]:
                match = s_seq[j]
                break
        out.append(match)
    return out


def conflict_search_np(
    l_seq: Sequence[int],
    l_addr: Sequence[int],
    l_size: Sequence[int],
    s_seq: Sequence[int],
    s_addr: Sequence[int],
    s_size: Sequence[int],
    s_vis: Optional[Sequence[int]] = None,
    cycle: int = 0,
) -> List[int]:
    """Numpy twin of :func:`conflict_search_py`.

    One broadcast ``(loads, stores)`` overlap mask instead of a
    per-load reverse scan; the youngest match is the masked row-wise
    max of the store seqs (identical to reverse-scan-first-hit because
    seqs are unique).
    """
    ls = np.asarray(l_seq, dtype=np.int64)[:, None]
    la = np.asarray(l_addr, dtype=np.int64)[:, None]
    lz = np.asarray(l_size, dtype=np.int64)[:, None]
    ss = np.asarray(s_seq, dtype=np.int64)[None, :]
    sa = np.asarray(s_addr, dtype=np.int64)[None, :]
    sz = np.asarray(s_size, dtype=np.int64)[None, :]
    mask = (ss < ls) & (sa < la + lz) & (la < sa + sz)
    if s_vis is not None:
        mask &= np.asarray(s_vis, dtype=np.int64)[None, :] <= cycle
    return np.where(mask, ss, -1).max(axis=1, initial=-1).tolist()


# ---------------------------------------------------------------------------
# Batched issue selection
# ---------------------------------------------------------------------------

def issue_select_py(
    cand_fp: Sequence[int],
    width: int,
    fu_copies: int,
) -> Tuple[List[int], List[int]]:
    """Width/FU-class cut over a ready frontier; scalar twin.

    *cand_fp* flags each candidate's FU class (1 = FP, 0 = integer) in
    seq order (oldest first — the heap pops ascending). Walks the
    frontier like the exec-issue loop: a candidate issues while fewer
    than *width* have issued and its class has a free copy, otherwise
    it is deferred to the next cycle. Returns ``(issue, defer)`` index
    lists, both in frontier (= seq) order.
    """
    issue: List[int] = []
    defer: List[int] = []
    fu_int = 0
    fu_fp = 0
    for i, fp in enumerate(cand_fp):
        if len(issue) >= width:
            defer.append(i)
            continue
        if fp:
            if fu_fp >= fu_copies:
                defer.append(i)
                continue
            fu_fp += 1
        else:
            if fu_int >= fu_copies:
                defer.append(i)
                continue
            fu_int += 1
        issue.append(i)
    return issue, defer


def issue_select_np(
    cand_fp: Sequence[int],
    width: int,
    fu_copies: int,
) -> Tuple[List[int], List[int]]:
    """Numpy twin of :func:`issue_select_py`.

    Per-class exclusive cumulative ranks give the FU-copy cut; a
    cumulative sum of the survivors gives the width cut. Both respect
    the frontier's seq order, so the tie-break (oldest first) is
    identical to the scalar walk.
    """
    fp = np.asarray(cand_fp, dtype=bool)
    n = fp.shape[0]
    rank_fp = np.cumsum(fp) - fp
    rank_int = np.cumsum(~fp) - ~fp
    fits_class = np.where(fp, rank_fp, rank_int) < fu_copies
    issued_before = np.cumsum(fits_class) - fits_class
    take = fits_class & (issued_before < width)
    idx = np.arange(n)
    return idx[take].tolist(), idx[~take].tolist()
