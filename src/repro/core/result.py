"""Simulation results and derived metrics."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional


@dataclass
class SimResult:
    """Everything measured during one timing simulation."""

    config_label: str = ""
    benchmark: str = ""
    suite: Optional[str] = None

    cycles: int = 0
    committed: int = 0
    committed_loads: int = 0
    committed_stores: int = 0
    committed_branches: int = 0

    #: Memory dependence miss-speculations (squashes due to violations).
    misspeculations: int = 0
    #: Instructions squashed and re-executed due to miss-speculation.
    squashed_instructions: int = 0

    #: Loads counted as delayed by a *false* dependence (Table 3 "FD").
    false_dependence_loads: int = 0
    #: Loads counted as delayed by a *true* dependence.
    true_dependence_loads: int = 0
    #: Summed false-dependence resolution latency (Table 3 "RL").
    false_dependence_latency: int = 0

    branch_predictions: int = 0
    branch_mispredictions: int = 0

    load_forwards: int = 0
    speculative_loads: int = 0

    dcache_accesses: int = 0
    dcache_misses: int = 0
    icache_accesses: int = 0
    icache_misses: int = 0
    l2_accesses: int = 0
    l2_misses: int = 0

    extra: Dict[str, float] = field(default_factory=dict)

    # -- derived -------------------------------------------------------------

    @property
    def ipc(self) -> float:
        """Committed instructions per cycle."""
        return self.committed / self.cycles if self.cycles else 0.0

    @property
    def misspeculation_rate(self) -> float:
        """Miss-speculations per committed load (Table 4's metric)."""
        if not self.committed_loads:
            return 0.0
        return self.misspeculations / self.committed_loads

    @property
    def false_dependence_fraction(self) -> float:
        """Fraction of committed loads delayed by a false dependence."""
        if not self.committed_loads:
            return 0.0
        return self.false_dependence_loads / self.committed_loads

    @property
    def mean_resolution_latency(self) -> float:
        """Average false-dependence resolution latency in cycles."""
        if not self.false_dependence_loads:
            return 0.0
        return self.false_dependence_latency / self.false_dependence_loads

    @property
    def branch_misprediction_rate(self) -> float:
        if not self.branch_predictions:
            return 0.0
        return self.branch_mispredictions / self.branch_predictions

    @property
    def dcache_miss_rate(self) -> float:
        if not self.dcache_accesses:
            return 0.0
        return self.dcache_misses / self.dcache_accesses

    def speedup_over(self, baseline: "SimResult") -> float:
        """Relative IPC: ``self.ipc / baseline.ipc``."""
        if baseline.ipc == 0:
            raise ZeroDivisionError("baseline IPC is zero")
        return self.ipc / baseline.ipc

    def merge(self, other: "SimResult") -> None:
        """Accumulate *other*'s counters (multi-segment sampling runs)."""
        for name in (
            "cycles", "committed", "committed_loads", "committed_stores",
            "committed_branches", "misspeculations",
            "squashed_instructions", "false_dependence_loads",
            "true_dependence_loads", "false_dependence_latency",
            "branch_predictions", "branch_mispredictions",
            "load_forwards", "speculative_loads",
            "dcache_accesses", "dcache_misses",
            "icache_accesses", "icache_misses",
            "l2_accesses", "l2_misses",
        ):
            setattr(self, name, getattr(self, name) + getattr(other, name))
