"""Structure-of-arrays simulator core (the ``vector`` backend).

A line-by-line port of :class:`repro.core.processor.Processor` onto
packed per-instruction columns consumed straight from
:class:`~repro.trace.compiled.CompiledTrace`: no ``DynInst`` or
``Entry`` objects exist on the fast path. Every per-entry attribute of
the reference core becomes one slot of a preallocated array indexed by
``seq``, and object identity (the reference's ``entry.squashed`` /
``is entry`` tests) becomes an *incarnation serial*: ``serial[seq]``
increments each time ``seq`` is (re-)dispatched after a squash, and any
record that captured ``(seq, ref)`` is stale exactly when
``ref != serial[seq]``.

The port must stay bit-identical to the reference — the golden-parity
suite and CI's ``backend-parity`` job compare every :class:`SimResult`
field. Anything this core cannot express (observability, timelines,
telemetry, split windows) is routed to the reference backend by
:func:`repro.core.backend.vector_limitation`; this class rejects those
arguments outright.
"""

from __future__ import annotations

import bisect
import gc
import heapq
import os
from collections import deque
from itertools import repeat as _irepeat
from typing import Dict, List, Optional

from repro.branch.unit import BranchUnit
from repro.config.processor import (
    ProcessorConfig,
    SchedulingModel,
    SpeculationPolicy,
)
from repro.core.lsq import UnexecutedStoreTracker
from repro.core.processor import (
    SimulationStuck,
    _EV_COMPLETE,
    _EV_POST,
    _EV_READY,
    _EV_WRITE,
    _GATE_ALL_STORES,
    _GATE_AS,
    _GATE_BARRIER,
    _GATE_OPEN,
    _GATE_ORACLE,
    _GATE_PREDICTED,
    _GATE_SYNC,
)
from repro.core import kernels as _kernels
from repro.core.result import SimResult
from repro.isa.opcodes import OpClass
from repro.isa.registers import REG_ZERO
from repro.memdep.store_sets import StoreSetPredictor
from repro.memdep.sync import MDPT
from repro.memdep.tables import TwoBitPredictorTable
from repro.memory.hierarchy import MemoryHierarchy
from repro.memory.store_buffer import StoreBuffer, StoreBufferEntry
from repro.trace.compiled import CompiledTrace, _mask_bit, _op_table
from repro.trace.dependences import DependenceInfo
from repro.trace.sampling import SamplingPlan, make_sampling_plan

try:  # optional: vectorized column decode (pure-Python fallback below)
    import numpy as _np
except ImportError:  # pragma: no cover - numpy-free environments
    _np = None
if _np is not None and not _kernels.numpy_active():
    # REPRO_VECTOR_NO_NUMPY forces the pure-Python twins everywhere,
    # including column decode (checked at import: CI's fallback leg
    # sets the variable before the interpreter starts).
    _np = None

_TAKEN_MAP = (None, False, True)


def _null_indices(mask: bytes, n: int) -> List[int]:
    """Row indices set in a one-bit-per-row null bitmap (LSB-first)."""
    if _np is not None:
        bits = _np.unpackbits(
            _np.frombuffer(mask, dtype=_np.uint8), bitorder="little"
        )[:n]
        return _np.nonzero(bits)[0].tolist()
    out: List[int] = []
    for bi, byte in enumerate(mask):
        if not byte:
            continue
        base = bi << 3
        for bit in range(8):
            if byte & (1 << bit):
                i = base + bit
                if i < n:
                    out.append(i)
    return out


def _class_table(ops, predicate) -> bytes:
    """256-byte translate table: op byte -> 1 where predicate holds."""
    table = bytearray(256)
    for i, op in enumerate(ops):
        if predicate(op):
            table[i] = 1
    return bytes(table)


class _Columns:
    """Static per-seq columns shared by every segment of one run."""

    __slots__ = (
        "n", "name", "suite", "ops", "opb", "pc", "size", "addr",
        "value", "target", "taken", "dest_eff", "srcs_off", "srcs_flat",
        "is_load_b", "is_store_b", "branch_b", "mem_b", "fp_b",
        "dep_of", "stale_of", "prod_flat", "deps",
    )


def _attach_producers(col: _Columns) -> None:
    """Static rename: per source operand, the youngest older writer.

    ``prod_flat[k]`` (parallel to ``srcs_flat``) is the youngest seq
    before the consumer that writes the operand's register, or -1.
    Because the window is a contiguous seq range and dispatch is
    in-order, the recorded producer is the *window's* producer exactly
    when it is still live — ``prod_flat[k] >= w_head`` — which replaces
    the reference core's dynamically maintained rename map.
    """
    srcs_off = col.srcs_off
    srcs_flat = col.srcs_flat
    dest_eff = col.dest_eff
    prod = [-1] * len(srcs_flat)
    rename: Dict[int, int] = {}
    get = rename.get
    k = 0
    for s in range(col.n):
        hi = srcs_off[s + 1]
        while k < hi:
            src = srcs_flat[k]
            if src != REG_ZERO:
                prod[k] = get(src, -1)
            k += 1
        d = dest_eff[s]
        if d >= 0:
            rename[d] = s
    col.prod_flat = prod
    # Per-seq dependence tuples: dispatch walks only real producers
    # instead of re-deriving them from the flat operand columns every
    # time. ``is_data`` marks the store-data operand (second source).
    is_store_b = col.is_store_b
    deps: List = []
    for s in range(col.n):
        lo = srcs_off[s]
        hi = srcs_off[s + 1]
        dd = None
        for k in range(lo, hi):
            p = prod[k]
            if p >= 0:
                rec = (p, 1 if is_store_b[s] and k == lo + 1 else 0)
                if dd is None:
                    dd = [rec]
                else:
                    dd.append(rec)
        deps.append(tuple(dd) if dd else ())
    col.deps = deps


def _columns_from_compiled(compiled: CompiledTrace) -> _Columns:
    n = compiled.length
    col = _Columns()
    col.n = n
    col.name = compiled.name
    col.suite = compiled.suite
    ops = _op_table(compiled)
    col.ops = ops
    col.opb = bytes(compiled.op)
    col.pc = compiled.pc.tolist()
    col.size = compiled.size.tolist()
    col.addr = compiled.addr.tolist()
    value = compiled.value.tolist()
    target = compiled.target.tolist()
    # Null bitmaps decode whole-column (np.unpackbits + nonzero when
    # numpy is present, a sparse per-byte walk otherwise).
    for mask, out in (
        (compiled.value_null, value),
        (compiled.target_null, target),
    ):
        for i in _null_indices(mask, n):
            out[i] = None
    # dest: None packs as 0 and REG_ZERO == 0; both mean "no register
    # result" to dispatch/commit/squash, so fold them to -1. (addr nulls
    # stay 0 — only memory ops read the addr column.)
    if _np is not None:
        darr = _np.frombuffer(compiled.dest, dtype=_np.int64)
        col.dest_eff = _np.where(darr == 0, -1, darr).tolist()
        col.taken = _np.asarray(_TAKEN_MAP, dtype=object)[
            _np.frombuffer(compiled.taken, dtype=_np.uint8)
        ].tolist()
    else:
        col.dest_eff = [d if d else -1 for d in compiled.dest]
        col.taken = [_TAKEN_MAP[b] for b in compiled.taken]
    col.srcs_off = compiled.srcs_off
    col.srcs_flat = compiled.srcs_flat.tolist()
    for column, table in compiled.overflow.items():
        if column == "pc":
            for i, big in table.items():
                col.pc[int(i)] = big
        elif column == "addr":
            for i, big in table.items():
                col.addr[int(i)] = big
        elif column == "size":
            for i, big in table.items():
                col.size[int(i)] = big
        elif column == "value":
            for i, big in table.items():
                value[int(i)] = big
        elif column == "target":
            for i, big in table.items():
                target[int(i)] = big
        elif column == "dest":
            for i, big in table.items():
                col.dest_eff[int(i)] = big
        elif column == "srcs_flat":
            for i, big in table.items():
                col.srcs_flat[int(i)] = big
    col.value = value
    col.target = target
    col.is_load_b = col.opb.translate(
        _class_table(ops, lambda op: op is OpClass.LOAD)
    )
    col.is_store_b = col.opb.translate(
        _class_table(ops, lambda op: op is OpClass.STORE)
    )
    col.branch_b = col.opb.translate(
        _class_table(ops, lambda op: op.branch_class)
    )
    col.mem_b = col.opb.translate(
        _class_table(ops, lambda op: op.mem_class)
    )
    col.fp_b = col.opb.translate(
        _class_table(ops, lambda op: op.fp_class)
    )
    _attach_producers(col)
    return col


def _columns_from_trace(trace) -> _Columns:
    """Fallback: build the same columns from a materialized Trace."""
    instructions = trace.instructions
    n = len(instructions)
    col = _Columns()
    col.n = n
    col.name = trace.name
    col.suite = getattr(trace, "suite", None)
    ops = tuple(OpClass)
    op_index = {op: i for i, op in enumerate(ops)}
    col.ops = ops
    opb = bytearray(n)
    col.pc = pc = [0] * n
    col.size = size = [0] * n
    col.addr = addr = [0] * n
    col.value = value = [None] * n
    col.target = target = [None] * n
    col.taken = taken = [None] * n
    col.dest_eff = dest_eff = [-1] * n
    srcs_off = [0] * (n + 1)
    srcs_flat: List[int] = []
    for i, inst in enumerate(instructions):
        opb[i] = op_index[inst.op]
        pc[i] = inst.pc
        size[i] = inst.size
        if inst.addr is not None:
            addr[i] = inst.addr
        value[i] = inst.value
        target[i] = inst.target
        taken[i] = inst.taken
        d = inst.dest
        if d is not None and d != REG_ZERO:
            dest_eff[i] = d
        srcs_flat.extend(inst.srcs)
        srcs_off[i + 1] = len(srcs_flat)
    col.opb = bytes(opb)
    col.srcs_off = srcs_off
    col.srcs_flat = srcs_flat
    col.is_load_b = col.opb.translate(
        _class_table(ops, lambda op: op is OpClass.LOAD)
    )
    col.is_store_b = col.opb.translate(
        _class_table(ops, lambda op: op is OpClass.STORE)
    )
    col.branch_b = col.opb.translate(
        _class_table(ops, lambda op: op.branch_class)
    )
    col.mem_b = col.opb.translate(
        _class_table(ops, lambda op: op.mem_class)
    )
    col.fp_b = col.opb.translate(
        _class_table(ops, lambda op: op.fp_class)
    )
    _attach_producers(col)
    return col


def _attach_dependences(
    col: _Columns,
    source,
    dep_info: Optional[Dict[int, DependenceInfo]],
) -> None:
    """Fill ``dep_of``/``stale_of`` (static: identical every dispatch)."""
    n = col.n
    dep_of = [-1] * n
    # Entry.stale_equal defaults to True; loads without a DependenceInfo
    # record keep that default in the reference core.
    stale_of = bytearray(b"\x01" * n)
    if dep_info is not None:
        for seq, info in dep_info.items():
            dep_of[seq] = info.store_seq
            if not info.stale_equal:
                stale_of[seq] = 0
    elif isinstance(source, CompiledTrace) and source.has_dependences:
        stale = source.dep_stale
        for i, (load, store) in enumerate(
            zip(source.dep_load, source.dep_store)
        ):
            dep_of[load] = store
            if not _mask_bit(stale, i):
                stale_of[load] = 0
    else:
        if isinstance(source, CompiledTrace):
            info = source.compute_dependence_info()
        else:
            from repro.trace.dependences import compute_dependence_info

            info = compute_dependence_info(source)
        for seq, rec in info.items():
            dep_of[seq] = rec.store_seq
            if not rec.stale_equal:
                stale_of[seq] = 0
    col.dep_of = dep_of
    col.stale_of = stale_of


class _VAddrSched:
    """Seq-keyed port of :class:`repro.memdep.addr_scheduler
    .AddressScheduler` (records are always current incarnations:
    squash truncates by seq before any re-dispatch)."""

    __slots__ = (
        "latency", "_unposted", "_seqs", "_addrs", "_sizes",
        "_visibles", "_blocks", "_max_visible", "posts", "searches",
        "_np_search", "_mut", "_ck", "_cs", "_ca", "_cz", "_cv",
    )

    def __init__(self, latency: int) -> None:
        self.latency = latency
        self._unposted: List[int] = []
        self._seqs: List[int] = []
        self._addrs: List[int] = []
        self._sizes: List[int] = []
        self._visibles: List[int] = []
        self._blocks: dict = {}
        self._max_visible = -1
        self.posts = 0
        self.searches = 0
        # Broadcast conflict-search kernel state: the live-store frontier
        # mirrored as numpy arrays, rebuilt lazily when the mutation
        # epoch (``_mut``) has moved past the cached one (``_ck``).
        self._np_search = (
            _kernels.conflict_search_np if _kernels.numpy_active() else None
        )
        self._mut = 0
        self._ck = -1
        self._cs = self._ca = self._cz = self._cv = None

    def on_store_dispatch(self, seq: int) -> None:
        self._unposted.append(seq)

    def post_address(
        self, seq: int, addr: int, size: int, cycle: int
    ) -> int:
        unposted = self._unposted
        lo, hi = 0, len(unposted)
        while lo < hi:
            mid = (lo + hi) // 2
            if unposted[mid] < seq:
                lo = mid + 1
            else:
                hi = mid
        if lo < len(unposted) and unposted[lo] == seq:
            unposted.pop(lo)
        visible = cycle + self.latency
        seqs = self._seqs
        lo, hi = 0, len(seqs)
        while lo < hi:
            mid = (lo + hi) // 2
            if seqs[mid] < seq:
                lo = mid + 1
            else:
                hi = mid
        seqs.insert(lo, seq)
        self._addrs.insert(lo, addr)
        self._sizes.insert(lo, size)
        self._visibles.insert(lo, visible)
        blocks = self._blocks
        for block in range(addr >> 3, ((addr + size - 1) >> 3) + 1):
            blocks[block] = blocks.get(block, 0) + 1
        if visible > self._max_visible:
            self._max_visible = visible
        self.posts += 1
        self._mut += 1
        return visible

    def _uncover(self, index: int) -> None:
        addr = self._addrs[index]
        size = self._sizes[index]
        blocks = self._blocks
        for block in range(addr >> 3, ((addr + size - 1) >> 3) + 1):
            count = blocks[block] - 1
            if count:
                blocks[block] = count
            else:
                del blocks[block]

    def remove_store(self, seq: int) -> None:
        seqs = self._seqs
        index = bisect.bisect_left(seqs, seq)
        if index < len(seqs) and seqs[index] == seq:
            self._uncover(index)
            del seqs[index]
            del self._addrs[index]
            del self._sizes[index]
            del self._visibles[index]
            self._mut += 1

    def squash(self, from_seq: int) -> None:
        cut = bisect.bisect_left(self._unposted, from_seq)
        del self._unposted[cut:]
        cut = bisect.bisect_left(self._seqs, from_seq)
        for index in range(cut, len(self._seqs)):
            self._uncover(index)
        del self._seqs[cut:]
        del self._addrs[cut:]
        del self._sizes[cut:]
        del self._visibles[cut:]
        self._mut += 1

    def all_older_posted(self, seq: int, cycle: int) -> bool:
        if self._unposted and self._unposted[0] < seq:
            return False
        if self._max_visible <= cycle:
            return True
        visibles = self._visibles
        for i, rseq in enumerate(self._seqs):
            if rseq >= seq:
                break
            if visibles[i] > cycle:
                return False
        return True

    def youngest_older_match(
        self, seq: int, addr: int, size: int, cycle: int
    ) -> int:
        """Seq of the youngest older visible overlapping store, or -1."""
        self.searches += 1
        blocks = self._blocks
        end = addr + size
        for block in range(addr >> 3, ((end - 1) >> 3) + 1):
            if block in blocks:
                break
        else:
            return -1
        seqs = self._seqs
        search_np = self._np_search
        if (
            search_np is not None
            and len(seqs) >= _kernels.CONFLICT_MIN_STORES
        ):
            # Broadcast the compare over the whole live-store frontier
            # instead of reverse-scanning it one record at a time. The
            # frontier arrays are cached across searches and rebuilt
            # only when a post/remove/squash moved the epoch.
            if self._ck != self._mut:
                np = _kernels.np
                self._cs = np.asarray(seqs, dtype=np.int64)
                self._ca = np.asarray(self._addrs, dtype=np.int64)
                self._cz = np.asarray(self._sizes, dtype=np.int64)
                self._cv = np.asarray(self._visibles, dtype=np.int64)
                self._ck = self._mut
            return search_np(
                (seq,), (addr,), (size,),
                self._cs, self._ca, self._cz, self._cv, cycle,
            )[0]
        addrs = self._addrs
        sizes = self._sizes
        visibles = self._visibles
        for i in range(bisect.bisect_left(seqs, seq) - 1, -1, -1):
            if visibles[i] > cycle:
                continue
            raddr = addrs[i]
            if raddr < end and addr < raddr + sizes[i]:
                return seqs[i]
        return -1


class VectorProcessor:
    """One simulated machine bound to one (compiled) trace.

    Accepts a :class:`CompiledTrace` (fast path) or a materialized
    :class:`~repro.trace.events.Trace` (columns are rebuilt from the
    objects). ``run(plan)`` returns the same bit-identical
    :class:`SimResult` as the reference :class:`Processor`.
    """

    def __init__(
        self,
        config: ProcessorConfig,
        trace,
        dep_info: Optional[Dict[int, DependenceInfo]] = None,
        *,
        elide: Optional[bool] = None,
        record_elisions: bool = False,
        kernel_times: bool = False,
    ) -> None:
        if config.split.enabled:
            raise ValueError(
                "split-window configs require the reference backend"
            )
        if config.observe:
            raise ValueError(
                "observability requires the reference backend"
            )
        self.config = config
        if isinstance(trace, CompiledTrace):
            col = _columns_from_compiled(trace)
        else:
            col = _columns_from_trace(trace)
        _attach_dependences(col, trace, dep_info)
        self.col = col
        self.hierarchy = MemoryHierarchy(config)
        self.branch_unit = BranchUnit(config.branch)

        memdep = config.memdep
        self.as_mode = memdep.scheduling is SchedulingModel.AS
        self.policy = memdep.policy
        self.predictor: Optional[TwoBitPredictorTable] = None
        self.mdpt: Optional[MDPT] = None
        if self.policy in (
            SpeculationPolicy.SELECTIVE, SpeculationPolicy.STORE_BARRIER
        ):
            self.predictor = TwoBitPredictorTable(
                entries=memdep.predictor_entries,
                assoc=memdep.predictor_assoc,
                threshold=memdep.confidence_threshold,
            )
        elif self.policy is SpeculationPolicy.SYNC:
            self.mdpt = MDPT(
                entries=memdep.predictor_entries,
                assoc=memdep.predictor_assoc,
            )
        self.store_sets = None
        if self.policy is SpeculationPolicy.STORE_SETS:
            self.store_sets = StoreSetPredictor(
                ssit_entries=memdep.predictor_entries,
                lfst_entries=memdep.lfst_entries,
            )

        if self.as_mode:
            self._gate_kind = _GATE_AS
        elif self.policy is SpeculationPolicy.NAIVE:
            self._gate_kind = _GATE_OPEN
        elif self.policy is SpeculationPolicy.NO:
            self._gate_kind = _GATE_ALL_STORES
        elif self.policy is SpeculationPolicy.SELECTIVE:
            self._gate_kind = _GATE_PREDICTED
        elif self.policy is SpeculationPolicy.STORE_BARRIER:
            self._gate_kind = _GATE_BARRIER
        elif self.policy in (
            SpeculationPolicy.SYNC, SpeculationPolicy.STORE_SETS
        ):
            self._gate_kind = _GATE_SYNC
        elif self.policy is SpeculationPolicy.ORACLE:
            self._gate_kind = _GATE_ORACLE
        else:
            raise AssertionError(f"unhandled policy {self.policy}")

        self._selective = memdep.recovery == "selective"
        # Latency by op *byte* (latency tables are config-bound, so this
        # is per-processor, not per-column-set).
        self.lat = [
            config.latencies.latency(op) for op in col.ops
        ]
        self._issue_width = config.window.issue_width
        self._fu_copies = config.window.fu_copies
        self._memory_ports = config.window.memory_ports
        self._scan_budget = config.window.issue_width * 3
        fetch_cfg = config.fetch
        self._f_width = fetch_cfg.width
        self._f_max_blocks = fetch_cfg.max_blocks_per_cycle
        self._f_depth = fetch_cfg.front_end_depth
        self._f_block_shift = config.icache.block_bytes.bit_length() - 1
        self._f_hit_latency = config.icache.hit_latency

        # Event-horizon elision: when a cycle provably schedules nothing,
        # the clock jumps straight to the next possible event instead of
        # walking one cycle at a time. The jump target is the same value
        # the reference core's ``_advance_clock`` computes, so the
        # simulated trajectory (and every counter) is identical either
        # way; ``REPRO_VECTOR_ELIDE=0`` forces the single-step walk so CI
        # can exercise both paths.
        if elide is None:
            from repro.core.backend import ELIDE_ENV

            elide = os.environ.get(ELIDE_ENV, "1") != "0"
        self._elide = bool(elide)
        self._record_elisions = bool(record_elisions)
        self.skipped_cycles = 0
        self.elided_ranges: List = []
        # Per-kernel wall-time accounting (``--kernel-times``): ns spent
        # in each phase of the cycle loop plus an invocation count, so a
        # perf postmortem reads straight out of ``extra`` instead of
        # cProfile archaeology. Off by default: the flag is checked once
        # per phase per active cycle (a single cheap truth test).
        self._kernel_times = bool(kernel_times)
        self.phase_ns: Dict[str, int] = {}
        self.phase_calls: Dict[str, int] = {}

        n = col.n
        # Per-seq dynamic state (reference Entry fields). Allocated once
        # for the whole trace; a dispatch resets the slots it uses.
        self.serial = [0] * n
        self.sq = bytearray(n)        # squashed (current incarnation)
        self.a_pend = [0] * n
        self.d_pend = [0] * n
        self.a_rdy = [0] * n
        self.d_rdy = [0] * n
        self.rp_ref = [0] * n         # incarnation captured at rp push
        self.issue = [-1] * n         # issue_cycle
        self.agen = [-1] * n          # agen_done
        self.memc = [-1] * n          # mem_issue_cycle
        self.comp = [-1] * n          # complete_cycle
        self.write = [-1] * n         # write_cycle
        self.execd = bytearray(n)     # executed
        self.in_rp = bytearray(n)     # in_ready_pool
        self.in_mp = bytearray(n)     # in_mem_pool
        self.spec = bytearray(n)      # speculative
        self.fwd = [-1] * n           # forwarded_from
        self.waiters = [None] * n     # [(waiter_seq, is_data, ref)]
        self.consumers = [None] * n if self.as_mode else None
        self.pred_dep = bytearray(n)
        self.barrier = bytearray(n)
        self.sync_syn = [-1] * n
        self.sync_ws = [-1] * n       # sync_wait_store seq
        self.sync_ws_ref = [0] * n    # ... captured incarnation
        self.fd_start = [-1] * n      # fd_wait_start
        self.fd_cls = bytearray(n)    # 0=None 1="false" 2="true"
        self.fd_res = [-1] * n        # fd_resolved_cycle

        # Fetch run table: ``_f_run[s]`` is the length of the maximal
        # run of non-branch instructions starting at ``s`` that share
        # s's icache block (0 when s itself is a branch). The fetch
        # loop bulk-appends whole runs instead of walking per-op.
        shift = self._f_block_shift
        pcs = col.pc
        br = col.branch_b
        runs = [0] * (n + 1)
        i = n - 1
        while i >= 0:
            if not br[i]:
                nxt = runs[i + 1]
                if nxt and (pcs[i + 1] >> shift) == (pcs[i] >> shift):
                    runs[i] = nxt + 1
                else:
                    runs[i] = 1
            i -= 1
        self._f_run = runs

        self.cycle = 0
        self._next_flush = memdep.flush_interval

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def run(self, plan: Optional[SamplingPlan] = None) -> SimResult:
        if plan is None:
            plan = make_sampling_plan(self.col.n)
        total = SimResult(
            config_label=self.config.label,
            benchmark=self.col.name,
            suite=self.col.suite,
        )
        was_enabled = gc.isenabled()
        gc.disable()
        try:
            for segment in plan.segments:
                if segment.timing:
                    total.merge(
                        self._run_segment(segment.start, segment.stop)
                    )
                else:
                    self._warm_segment(segment.start, segment.stop)
        finally:
            if was_enabled:
                gc.enable()
        self._snapshot_caches(total)
        # ``extra`` is excluded from golden fixtures and result-store
        # keys, so elision telemetry never perturbs parity.
        total.extra["skipped_cycles"] = self.skipped_cycles
        total.extra["elide"] = 1 if self._elide else 0
        if self._record_elisions:
            total.extra["elided_ranges"] = list(self.elided_ranges)
        if self._kernel_times:
            total.extra["vector_phase_ns"] = dict(
                sorted(self.phase_ns.items())
            )
            total.extra["vector_phase_calls"] = dict(
                sorted(self.phase_calls.items())
            )
        return total

    def _phase_add(self, name: str, ns: int, calls: int = 1) -> None:
        pns = self.phase_ns
        pns[name] = pns.get(name, 0) + ns
        calls_d = self.phase_calls
        calls_d[name] = calls_d.get(name, 0) + calls

    # ------------------------------------------------------------------
    # functional warm-up (sampling)
    # ------------------------------------------------------------------

    def _warm_segment(self, start: int, stop: int) -> None:
        if self._kernel_times:
            from time import perf_counter_ns

            t0 = perf_counter_ns()
            self._warm_segment_inner(start, stop)
            self._phase_add("warm", perf_counter_ns() - t0)
            return
        self._warm_segment_inner(start, stop)

    def _warm_segment_inner(self, start: int, stop: int) -> None:
        col = self.col
        hierarchy = self.hierarchy
        icache_touch = hierarchy.icache.touch
        dcache_touch = hierarchy.dcache.touch
        l2_touch = hierarchy.l2.touch
        predict = self.branch_unit.predict_and_train_raw
        pcs = col.pc
        addrs = col.addr
        opb = col.opb
        ops = col.ops
        branch_b = col.branch_b
        mem_b = col.mem_b
        taken = col.taken
        target = col.target
        block_shift = self.config.icache.block_bytes.bit_length() - 1
        last_block = -1
        for seq in range(start, stop):
            pc = pcs[seq]
            block = pc >> block_shift
            if block != last_block:
                icache_touch(pc)
                l2_touch(pc)
                last_block = block
            if branch_b[seq]:
                predict(pc, ops[opb[seq]], taken[seq], target[seq])
            elif mem_b[seq]:
                addr = addrs[seq]
                dcache_touch(addr)
                l2_touch(addr)
        self.cycle += max(1, (stop - start) // 2)

    # ------------------------------------------------------------------
    # timing simulation
    # ------------------------------------------------------------------

    def _run_segment(self, start: int, stop: int) -> SimResult:
        cfg = self.config
        col = self.col
        if not 0 <= start <= stop <= col.n:
            # Same contract (and message) as the reference TraceCursor.
            raise ValueError("cursor range out of bounds")
        stats = SimResult(
            config_label=cfg.label,
            benchmark=col.name,
            suite=col.suite,
        )
        self.stats = stats
        # window = contiguous seq range [w_head, w_head + w_count).
        # ``w_head`` starts at the segment base so the static-rename
        # liveness test (``prod_flat[k] >= w_head``) rejects producers
        # from earlier segments before the first dispatch.
        self.w_head = start
        self.w_count = 0
        self.w_size = cfg.window.size
        # fetch state
        self.f_pos = start
        self.f_stop = stop
        self.f_buffer = deque()       # (seq, dispatch_at)
        self.f_stalled = self.cycle
        self.f_wait = -1              # waiting_on_branch seq
        self.f_recent: dict = {}
        fetch_cfg = cfg.fetch
        self.f_cap = fetch_cfg.width * fetch_cfg.front_end_depth
        # Functional-unit accounting (FunctionalUnits inlined: four
        # counters reset at the top of every cycle).
        self.fu_issued = 0
        self.fu_int = 0
        self.fu_fp = 0
        self.fu_ports = 0
        self.rp: List = []            # ready pool: (seq, ref) heap
        self.load_items: List = []    # mem pool: (seq, push_serial, ref)
        self.load_dead = 0
        self.load_live: Optional[List[int]] = None
        self.swp_items: List = []
        self.swp_dead = 0
        self.swp_live: Optional[List[int]] = None
        self._mp_serial = 0
        self.store_buffer = StoreBuffer(cfg.window.store_buffer_size)
        self.unexec_stores = UnexecutedStoreTracker()
        self.barrier_stores = UnexecutedStoreTracker()
        self._syn: Dict[int, List] = {}   # synonym -> [(seq, ref)]
        self._det: Dict[int, List] = {}   # store_seq -> [(load, ref)]
        self.addr_sched = (
            _VAddrSched(cfg.memdep.addr_scheduler_latency)
            if self.as_mode else None
        )
        # Calendar event queue: a bucket per distinct fire time (dict
        # time -> FIFO list of ``(kind, seq, ref)``) plus a heap of the
        # distinct times. Every schedule is strictly future, so a
        # drained bucket can never recur and the heap sees one push per
        # bucket instead of one per event; FIFO order within a bucket
        # is exactly the reference core's event-serial tie-break.
        self._evq: Dict[int, List] = {}
        self._evt: List[int] = []
        # Next-cycle fast lane: events scheduled for ``cycle + 1`` (the
        # dominant case — single-cycle ALU/load latencies) skip the
        # bucket dict and heap entirely. The drain merges the lane into
        # its bucket once per active cycle, preserving schedule order
        # (bucketed events for the same time were scheduled earlier).
        self._nx: List = []
        self._nx_time = -1
        self._hint = -1
        # Memoized memory scan: ``mem_dirty`` means state relevant to the
        # memory-issue gates may have changed since the last no-progress
        # scan; ``mem_wake`` is that scan's min unblock time (-1: none).
        self.mem_dirty = True
        self.mem_wake = -1

        start_cycle = self.cycle
        branch_unit = self.branch_unit
        branch_stats_base = (
            branch_unit.predictions, branch_unit.mispredictions,
        )

        evq = self._evq
        evt = self._evt
        nx = self._nx
        rp = self.rp
        issue_memory = self._issue_memory
        fetch_tick = self._fetch_tick
        maybe_flush = self._maybe_flush_tables
        on_store_write = self._on_store_write
        mp_push = self._mp_push
        resume_after_branch = self._resume_after_branch
        schedule = self._schedule
        pol = self.policy
        load_hook = (
            self._on_load_dispatch_policy
            if pol in (
                SpeculationPolicy.SELECTIVE, SpeculationPolicy.SYNC,
                SpeculationPolicy.STORE_SETS,
            ) else None
        )
        store_hook = (
            self._on_store_dispatch_policy
            if pol in (
                SpeculationPolicy.STORE_BARRIER, SpeculationPolicy.SYNC,
                SpeculationPolicy.STORE_SETS,
            ) else None
        )
        us_dispatch = self.unexec_stores._seqs.append
        as_unposted = (
            self.addr_sched._unposted.append if self.as_mode else None
        )
        dep_of = col.dep_of
        do_store_nas = self._do_issue_store_nas
        do_store_as = self._do_issue_store_agen_as
        reset_entry = self._reset_entry
        heappush = heapq.heappush
        heappop = heapq.heappop
        insort = bisect.insort
        buffer = self.f_buffer
        write = self.write
        comp = self.comp
        serial = self.serial
        sq = self.sq
        in_rp = self.in_rp
        rp_ref = self.rp_ref
        a_pend = self.a_pend
        d_pend = self.d_pend
        a_rdy = self.a_rdy
        d_rdy = self.d_rdy
        spec = self.spec
        fd_cls = self.fd_cls
        fd_res = self.fd_res
        fd_start = self.fd_start
        sync_syn = self.sync_syn
        sync_ws = self.sync_ws
        sync_ws_ref = self.sync_ws_ref
        issue = self.issue
        agen = self.agen
        in_mp = self.in_mp
        lat = self.lat
        waiters = self.waiters
        execd = self.execd
        consumers = self.consumers
        addr_sched = self.addr_sched
        store_sets = self.store_sets
        det = self._det
        is_store_b = col.is_store_b
        is_load_b = col.is_load_b
        branch_b = col.branch_b
        fp_b = col.fp_b
        opb = col.opb
        deps = col.deps
        ev_ready = _EV_READY
        ev_complete = _EV_COMPLETE
        ev_write = _EV_WRITE
        issue_width = self._issue_width
        scan_budget = self._scan_budget
        fu_copies = self._fu_copies
        memory_ports = self._memory_ports
        w_size = self.w_size
        f_cap = self.f_cap
        f_stop = self.f_stop
        elide = self._elide
        as_mode = self.as_mode
        # Frontier-batched kernels (repro.core.kernels): the numpy twins
        # engage only above the frontier-size thresholds, and not at all
        # when numpy is absent or REPRO_VECTOR_NO_NUMPY is set. Read at
        # segment start so tests can patch thresholds per run.
        use_np_kernels = _kernels.numpy_active()
        wakeup_np = _kernels.wakeup_scatter_np if use_np_kernels else None
        wakeup_min = _kernels.WAKEUP_MIN_FRONTIER
        issue_np = _kernels.issue_select_np if use_np_kernels else None
        issue_min = _kernels.ISSUE_MIN_FRONTIER
        record = self.elided_ranges if self._record_elisions else None
        has_tables = (
            self.predictor is not None
            or self.mdpt is not None
            or self.store_sets is not None
        )
        cycle = self.cycle
        kt = self._kernel_times
        if kt:
            from time import perf_counter_ns as _pcns

            _pns = self.phase_ns
            _pcalls = self.phase_calls
            for _name in (
                "advance", "events", "commit", "mem_issue",
                "exec_issue", "dispatch", "fetch",
            ):
                _pns.setdefault(_name, 0)
                _pcalls.setdefault(_name, 0)
        # Commit-side counters accumulate in locals for the whole
        # segment and flush into ``stats`` once, after the loop.
        c_committed = 0
        c_loads = 0
        c_stores = 0
        c_branches = 0
        c_spec = 0
        c_fd_false = 0
        c_fd_lat = 0
        c_fd_true = 0

        while True:
            if (
                not buffer and self.f_pos >= f_stop
                and not self.w_count and not evq and not nx
            ):
                break
            # -- advance clock (the event horizon) ----------------------
            # The step/jump decision is fully state-driven: walk the
            # next cycle only when the ready pool holds candidates or
            # the memory scan memo is dirty; otherwise jump straight to
            # the earliest standing wake source (scan wake, events,
            # commit head, fetch buffer head, fetch resume). Unlike the
            # reference core — which walks one probe cycle after every
            # active one before its ``_advance_clock`` can jump — this
            # elides the probe too when nothing can interact there; the
            # landing cycle is the same either way, so the simulated
            # trajectory is identical (macro-stepping, see docs/PERF.md).
            if kt:
                _t = _pcns()
            if rp or self.mem_dirty:
                cycle += 1
            else:
                best = self._hint
                self._hint = -1
                when = self.mem_wake
                if when >= 0 and (best < 0 or when < best):
                    best = when
                if evt:
                    when = evt[0]
                    if best < 0 or when < best:
                        best = when
                if nx:
                    when = self._nx_time
                    if best < 0 or when < best:
                        best = when
                if self.w_count:
                    h = self.w_head
                    done = write[h] if is_store_b[h] else comp[h]
                    if done >= 0 and (best < 0 or done < best):
                        best = done
                if buffer:
                    when = buffer[0][1]
                    if best < 0 or when < best:
                        best = when
                if (
                    self.f_wait < 0
                    and self.f_pos < f_stop
                    and len(buffer) < f_cap
                ):
                    when = self.f_stalled
                    if best < 0 or when < best:
                        best = when
                if best < 0:
                    self.cycle = cycle
                    raise SimulationStuck(
                        f"no progress possible at cycle {cycle} "
                        f"(window={self.w_count}, "
                        f"loads={len(self.load_items) - self.load_dead}, "
                        f"writes={len(self.swp_items) - self.swp_dead})"
                    )
                nxt = cycle + 1
                if best > nxt and elide and (
                    not has_tables or self._next_flush > nxt
                ):
                    # Table-flush boundaries pin the walk: the reference
                    # flushes at the end of every cycle it walks, so a
                    # boundary on the probe cycle must be walked here too
                    # or the tables would be consulted pre-flush later.
                    self.skipped_cycles += best - nxt
                    if record is not None:
                        record.append((nxt, best))
                    cycle = best
                else:
                    cycle = nxt
            self.cycle = cycle
            if kt:
                _now = _pcns()
                _pns["advance"] += _now - _t
                _pcalls["advance"] += 1
                _t = _now
            # -- events (inlined _process_events) -----------------------
            if nx and self._nx_time <= cycle:
                # Fold the next-cycle lane into its bucket; bucketed
                # events for the same time were scheduled on earlier
                # cycles, so bucket-then-lane is schedule order.
                t = self._nx_time
                b = evq.get(t)
                if b is None:
                    evq[t] = nx
                    heappush(evt, t)
                else:
                    b.extend(nx)
                self._nx = nx = []
            if evt and evt[0] <= cycle:
                dirty = False
                while evt and evt[0] <= cycle:
                    for ev in evq.pop(heappop(evt)):
                        s = ev[1]
                        if ev[2] != serial[s] or sq[s]:
                            continue
                        kind = ev[0]
                        if kind == ev_ready:
                            if not in_rp[s]:
                                in_rp[s] = 1
                                rp_ref[s] = serial[s]
                                heappush(rp, s)
                        elif kind == ev_complete:
                            # Completion + wakeup walk (was _on_complete):
                            # drain every waiter of ``s`` in one pass —
                            # the scalar twin of the CSR wakeup scatter.
                            done = comp[s]
                            if done > cycle:
                                # Pushed out (selective re-execution).
                                schedule(done, ev_complete, s)
                                continue
                            execd[s] = 1
                            wl = waiters[s]
                            if (
                                wl and wakeup_np is not None
                                and len(wl) >= wakeup_min
                            ):
                                # Wide frontier: apply the whole waiter
                                # scatter in one kernel call, then run
                                # the readiness dispatch once per
                                # distinct consumer. Same outcome as
                                # the record-by-record walk below: a
                                # consumer only becomes ready at its
                                # last record (each record decrements a
                                # pend count readiness requires at
                                # zero), and push order is not
                                # observable for ready events (heap)
                                # or mem-pool pushes (seq-sorted).
                                lseq = []
                                ldat = []
                                for wrec in wl:
                                    wseq = wrec[0]
                                    if (
                                        wrec[2] != serial[wseq]
                                        or sq[wseq]
                                    ):
                                        continue
                                    lseq.append(wseq)
                                    ldat.append(wrec[1])
                                for wseq in wakeup_np(
                                    lseq, ldat, done,
                                    a_pend, d_pend, a_rdy, d_rdy,
                                ):
                                    if issue[wseq] >= 0 or in_rp[wseq]:
                                        if (
                                            as_mode and is_store_b[wseq]
                                            and agen[wseq] >= 0
                                            and not d_pend[wseq]
                                            and not in_mp[wseq]
                                            and write[wseq] < 0
                                        ):
                                            if mp_push(
                                                self.swp_items, wseq
                                            ):
                                                self.swp_live = None
                                            dirty = True
                                        continue
                                    if is_store_b[wseq] and not as_mode:
                                        if a_pend[wseq] or d_pend[wseq]:
                                            continue
                                        ready_at = a_rdy[wseq]
                                        if d_rdy[wseq] > ready_at:
                                            ready_at = d_rdy[wseq]
                                    else:
                                        if a_pend[wseq]:
                                            continue
                                        ready_at = a_rdy[wseq]
                                    wref = serial[wseq]
                                    if ready_at <= cycle:
                                        in_rp[wseq] = 1
                                        rp_ref[wseq] = wref
                                        heappush(rp, wseq)
                                    elif ready_at == cycle + 1:
                                        self._nx_time = ready_at
                                        nx.append(
                                            (ev_ready, wseq, wref)
                                        )
                                    else:
                                        b = evq.get(ready_at)
                                        if b is None:
                                            evq[ready_at] = [
                                                (ev_ready, wseq, wref)
                                            ]
                                            heappush(evt, ready_at)
                                        else:
                                            b.append(
                                                (ev_ready, wseq, wref)
                                            )
                                if as_mode:
                                    cl = consumers[s]
                                    if cl:
                                        cl.extend(wl)
                                    else:
                                        consumers[s] = wl
                                waiters[s] = []
                            elif wl:
                                for wseq, is_data, wref in wl:
                                    if wref != serial[wseq] or sq[wseq]:
                                        continue
                                    if is_data:
                                        d_pend[wseq] -= 1
                                        if done > d_rdy[wseq]:
                                            d_rdy[wseq] = done
                                    else:
                                        a_pend[wseq] -= 1
                                        if done > a_rdy[wseq]:
                                            a_rdy[wseq] = done
                                    if issue[wseq] >= 0 or in_rp[wseq]:
                                        # Already issued/queued: only the
                                        # AS store data arrival matters.
                                        if (
                                            as_mode and is_store_b[wseq]
                                            and agen[wseq] >= 0
                                            and not d_pend[wseq]
                                            and not in_mp[wseq]
                                            and write[wseq] < 0
                                        ):
                                            if mp_push(
                                                self.swp_items, wseq
                                            ):
                                                self.swp_live = None
                                            dirty = True
                                        continue
                                    if is_store_b[wseq] and not as_mode:
                                        if a_pend[wseq] or d_pend[wseq]:
                                            continue
                                        ready_at = a_rdy[wseq]
                                        if d_rdy[wseq] > ready_at:
                                            ready_at = d_rdy[wseq]
                                    else:
                                        if a_pend[wseq]:
                                            continue
                                        ready_at = a_rdy[wseq]
                                    if ready_at <= cycle:
                                        in_rp[wseq] = 1
                                        rp_ref[wseq] = wref
                                        heappush(rp, wseq)
                                    elif ready_at == cycle + 1:
                                        self._nx_time = ready_at
                                        nx.append(
                                            (ev_ready, wseq, wref)
                                        )
                                    else:
                                        b = evq.get(ready_at)
                                        if b is None:
                                            evq[ready_at] = [
                                                (ev_ready, wseq, wref)
                                            ]
                                            heappush(evt, ready_at)
                                        else:
                                            b.append(
                                                (ev_ready, wseq, wref)
                                            )
                                if as_mode:
                                    cl = consumers[s]
                                    if cl:
                                        cl.extend(wl)
                                    else:
                                        consumers[s] = wl
                                waiters[s] = []
                            if branch_b[s]:
                                resume_after_branch(s, done)
                        elif kind == ev_write:
                            on_store_write(s)
                            dirty = True
                        else:  # _EV_POST
                            dirty = True
                if dirty:
                    # Only store writes, address posts and AS store-data
                    # pushes can move a memory gate; ALU/load completions
                    # wake through the ready pool.
                    self.mem_dirty = True
                if kt:
                    _now = _pcns()
                    _pns["events"] += _now - _t
                    _pcalls["events"] += 1
                    _t = _now
            # -- commit (inlined) ---------------------------------------
            if self.w_count:
                h = self.w_head
                done = write[h] if is_store_b[h] else comp[h]
                if 0 <= done <= cycle:
                    budget = issue_width
                    w_count = self.w_count
                    while True:
                        self.w_head = h + 1
                        w_count -= 1
                        budget -= 1
                        c_committed += 1
                        if is_load_b[h]:
                            c_loads += 1
                            if spec[h]:
                                c_spec += 1
                            cls = fd_cls[h]
                            if cls == 1:
                                c_fd_false += 1
                                if fd_res[h] >= 0:
                                    c_fd_lat += fd_res[h] - fd_start[h]
                            elif cls == 2:
                                c_fd_true += 1
                        elif is_store_b[h]:
                            c_stores += 1
                            det.pop(h, None)
                            syn = sync_syn[h]
                            if syn != -1:
                                producers = self._syn.get(syn)
                                if producers:
                                    rec = (h, serial[h])
                                    if rec in producers:
                                        producers.remove(rec)
                                        if not producers:
                                            del self._syn[syn]
                            if addr_sched is not None:
                                addr_sched.remove_store(h)
                            if store_sets is not None:
                                self._sset_store_retired(h)
                        elif branch_b[h]:
                            c_branches += 1
                        if not budget or not w_count:
                            break
                        h += 1
                        done = write[h] if is_store_b[h] else comp[h]
                        if done < 0 or done > cycle:
                            break
                    self.w_count = w_count
                    if as_mode:
                        # Retiring a store removes it from the address
                        # scheduler, which can open an AS load gate; no
                        # NAS gate reads anything commit touches.
                        self.mem_dirty = True
            if kt:
                _now = _pcns()
                _pns["commit"] += _now - _t
                _pcalls["commit"] += 1
                _t = _now
            self.fu_ports = 0
            if self.mem_dirty or 0 <= self.mem_wake <= cycle:
                issue_memory()
                if kt:
                    _now = _pcns()
                    _pns["mem_issue"] += _now - _t
                    _pcalls["mem_issue"] += 1
                    _t = _now
            # (A skipped scan needs no hint merge: ``mem_wake`` stands
            # as its own term in the advance-clock horizon above.)
            # -- issue (inlined _issue_exec) ----------------------------
            batched = False
            if issue_np is not None and len(rp) >= issue_min:
                # Batched issue selection: drain up to the scan budget
                # of valid candidates and cut by width and FU copies in
                # one kernel call. Only a store-free, all-ready frontier
                # takes the kernel — stores interact through ports and
                # store-load synchronization, and a not-ready candidate
                # changes the scan accounting — anything else restores
                # the pool untouched (collection only pops, it has no
                # other effects) and the scalar walk below runs as-is.
                cand = []
                while len(cand) < scan_budget and rp:
                    t = heappop(rp)
                    if rp_ref[t] != serial[t] or not in_rp[t]:
                        continue
                    in_rp[t] = 0
                    if sq[t]:
                        continue
                    cand.append(t)
                for t in cand:
                    if is_store_b[t] or a_pend[t] or a_rdy[t] > cycle:
                        break
                else:
                    batched = bool(cand)
                if batched:
                    take, defer = issue_np(
                        [fp_b[t] for t in cand],
                        issue_width, fu_copies,
                    )
                    for i in take:
                        s = cand[i]
                        issue[s] = cycle
                        if is_load_b[s]:
                            done = cycle + 1
                            agen[s] = done
                            if not in_mp[s]:
                                in_mp[s] = 1
                                mps = self._mp_serial + 1
                                self._mp_serial = mps
                                li = self.load_items
                                if not li or s > li[-1][0]:
                                    li.append((s, mps, serial[s]))
                                else:
                                    insort(li, (s, mps, serial[s]))
                                self.load_live = None
                            best = self._hint
                            if best < 0 or done < best:
                                self._hint = done
                        else:
                            done = cycle + lat[opb[s]]
                            comp[s] = done
                            if done == cycle + 1:
                                self._nx_time = done
                                nx.append((ev_complete, s, serial[s]))
                            else:
                                b = evq.get(done)
                                if b is None:
                                    evq[done] = [
                                        (ev_complete, s, serial[s])
                                    ]
                                    heappush(evt, done)
                                else:
                                    b.append(
                                        (ev_complete, s, serial[s])
                                    )
                    for i in defer:
                        s = cand[i]
                        in_rp[s] = 1
                        rp_ref[s] = serial[s]
                        heappush(rp, s)
                    self.mem_dirty = True
                    if kt:
                        _now = _pcns()
                        _pns["exec_issue"] += _now - _t
                        _pcalls["exec_issue"] += 1
                        _t = _now
                else:
                    for t in cand:
                        in_rp[t] = 1
                        heappush(rp, t)
            if rp and not batched:
                scans = scan_budget
                deferred = []
                ie_progress = False
                issued = 0
                fu_int = 0
                fu_fp = 0
                while issued < issue_width and scans:
                    scans -= 1
                    s = -1
                    while rp:
                        t = heappop(rp)
                        if rp_ref[t] != serial[t] or not in_rp[t]:
                            continue
                        in_rp[t] = 0
                        if sq[t]:
                            continue
                        s = t
                        break
                    if s < 0:
                        break
                    nas_store = is_store_b[s] and not as_mode
                    if nas_store:
                        if a_pend[s] or d_pend[s]:
                            continue
                        ready_at = a_rdy[s]
                        if d_rdy[s] > ready_at:
                            ready_at = d_rdy[s]
                    elif a_pend[s]:
                        continue
                    else:
                        ready_at = a_rdy[s]
                    if ready_at > cycle:
                        if ready_at == cycle + 1:
                            self._nx_time = ready_at
                            nx.append((ev_ready, s, serial[s]))
                        else:
                            b = evq.get(ready_at)
                            if b is None:
                                evq[ready_at] = [
                                    (ev_ready, s, serial[s])
                                ]
                                heappush(evt, ready_at)
                            else:
                                b.append((ev_ready, s, serial[s]))
                        continue
                    uses_fp = fp_b[s]
                    if (fu_fp if uses_fp else fu_int) >= fu_copies:
                        deferred.append(s)
                        continue
                    if nas_store:
                        ws = sync_ws[s]
                        if (
                            ws >= 0
                            and sync_ws_ref[s] == serial[ws]
                            and not sq[ws]
                            and issue[ws] < 0
                        ):
                            deferred.append(s)
                            continue
                        if self.fu_ports >= memory_ports:
                            deferred.append(s)
                            continue
                        issued += 1
                        if uses_fp:
                            fu_fp += 1
                        else:
                            fu_int += 1
                        self.fu_ports += 1
                        do_store_nas(s)
                    else:
                        issued += 1
                        if uses_fp:
                            fu_fp += 1
                        else:
                            fu_int += 1
                        if is_store_b[s]:
                            do_store_as(s)
                        elif is_load_b[s]:
                            issue[s] = cycle
                            done = cycle + 1
                            agen[s] = done
                            if not in_mp[s]:
                                in_mp[s] = 1
                                mps = self._mp_serial + 1
                                self._mp_serial = mps
                                li = self.load_items
                                if not li or s > li[-1][0]:
                                    li.append((s, mps, serial[s]))
                                else:
                                    insort(li, (s, mps, serial[s]))
                                self.load_live = None
                            best = self._hint
                            if best < 0 or done < best:
                                self._hint = done
                        else:
                            issue[s] = cycle
                            done = cycle + lat[opb[s]]
                            comp[s] = done
                            if done == cycle + 1:
                                self._nx_time = done
                                nx.append((ev_complete, s, serial[s]))
                            else:
                                b = evq.get(done)
                                if b is None:
                                    evq[done] = [
                                        (ev_complete, s, serial[s])
                                    ]
                                    heappush(evt, done)
                                else:
                                    b.append(
                                        (ev_complete, s, serial[s])
                                    )
                    ie_progress = True
                if deferred:
                    for s in deferred:
                        in_rp[s] = 1
                        rp_ref[s] = serial[s]
                        heappush(rp, s)
                    ie_progress = True
                if ie_progress:
                    self.mem_dirty = True
                if kt:
                    _now = _pcns()
                    _pns["exec_issue"] += _now - _t
                    _pcalls["exec_issue"] += 1
                    _t = _now
            # -- dispatch (inlined) -------------------------------------
            if (
                buffer and self.w_count < w_size
                and buffer[0][1] <= cycle
            ):
                budget = issue_width
                w_count = self.w_count
                while budget and w_count < w_size and buffer:
                    rec = buffer[0]
                    if rec[1] > cycle:
                        break
                    buffer.popleft()
                    s = rec[0]
                    ser = serial[s] + 1
                    serial[s] = ser
                    sq[s] = 0
                    a_rdy[s] = cycle
                    d_rdy[s] = cycle
                    if ser > 1:
                        reset_entry(s)
                    is_store = is_store_b[s]
                    ap = 0
                    dp = 0
                    w_head = self.w_head
                    for p, is_data in deps[s]:
                        if p < w_head:
                            continue
                        pdone = comp[p]
                        if pdone >= 0:
                            if is_data:
                                if pdone > d_rdy[s]:
                                    d_rdy[s] = pdone
                            elif pdone > a_rdy[s]:
                                a_rdy[s] = pdone
                        else:
                            wl = waiters[p]
                            if wl is None:
                                waiters[p] = [(s, is_data, ser)]
                            else:
                                wl.append((s, is_data, ser))
                            if is_data:
                                dp += 1
                            else:
                                ap += 1
                    a_pend[s] = ap
                    d_pend[s] = dp
                    if not w_count:
                        self.w_head = s
                    w_count += 1
                    self.w_count = w_count
                    budget -= 1
                    if is_load_b[s]:
                        # Dependence-detection record (was the common
                        # prefix of _on_load_dispatch).
                        ds = dep_of[s]
                        if ds >= 0:
                            rec = (s, ser)
                            dl = det.get(ds)
                            if dl is None:
                                det[ds] = [rec]
                            else:
                                dl.append(rec)
                        if load_hook is not None:
                            load_hook(s)
                    elif is_store:
                        # Stores dispatch in program order, so the
                        # tracker append needs no ordering check here.
                        us_dispatch(s)
                        if as_unposted is not None:
                            as_unposted(s)
                        if store_hook is not None:
                            store_hook(s)
                    # _maybe_ready for a fresh entry (issue < 0, not in
                    # the ready pool), inlined:
                    if is_store and not as_mode:
                        if ap or dp:
                            continue
                        ready_at = a_rdy[s]
                        if d_rdy[s] > ready_at:
                            ready_at = d_rdy[s]
                    else:
                        if ap:
                            continue
                        ready_at = a_rdy[s]
                    if ready_at <= cycle:
                        in_rp[s] = 1
                        rp_ref[s] = ser
                        heappush(rp, s)
                    elif ready_at == cycle + 1:
                        self._nx_time = ready_at
                        nx.append((ev_ready, s, ser))
                    else:
                        b = evq.get(ready_at)
                        if b is None:
                            evq[ready_at] = [(ev_ready, s, ser)]
                            heappush(evt, ready_at)
                        else:
                            b.append((ev_ready, s, ser))
                if kt:
                    _now = _pcns()
                    _pns["dispatch"] += _now - _t
                    _pcalls["dispatch"] += 1
                    _t = _now
            if (
                self.f_wait < 0
                and cycle >= self.f_stalled
                and self.f_pos < f_stop
                and len(buffer) < f_cap
            ):
                if kt:
                    _t = _pcns()
                fetch_tick(cycle)
                if kt:
                    _pns["fetch"] += _pcns() - _t
                    _pcalls["fetch"] += 1
            if has_tables and cycle >= self._next_flush:
                maybe_flush()

        stats.cycles = self.cycle - start_cycle
        stats.committed += c_committed
        stats.committed_loads += c_loads
        stats.committed_stores += c_stores
        stats.committed_branches += c_branches
        stats.speculative_loads += c_spec
        stats.false_dependence_loads += c_fd_false
        stats.false_dependence_latency += c_fd_lat
        stats.true_dependence_loads += c_fd_true
        stats.branch_predictions = (
            branch_unit.predictions - branch_stats_base[0]
        )
        stats.branch_mispredictions = (
            branch_unit.mispredictions - branch_stats_base[1]
        )
        stats.load_forwards = self.store_buffer.forwards
        return stats

    # -- clock ---------------------------------------------------------

    def _schedule(self, cycle: int, kind: int, seq: int) -> None:
        if cycle == self.cycle + 1:
            self._nx_time = cycle
            self._nx.append((kind, seq, self.serial[seq]))
            return
        evq = self._evq
        b = evq.get(cycle)
        if b is None:
            evq[cycle] = [(kind, seq, self.serial[seq])]
            heapq.heappush(self._evt, cycle)
        else:
            b.append((kind, seq, self.serial[seq]))

    # -- events --------------------------------------------------------

    def _on_store_write(self, seq: int) -> None:
        wc = self.write[seq]
        if wc >= 0 and wc > self.cycle:
            self._schedule(wc, _EV_WRITE, seq)
            return
        cycle = wc
        self.execd[seq] = 1
        self.hierarchy.store(self.col.addr[seq], cycle)

        records = self._det.get(seq)
        if not records:
            return
        serial = self.serial
        sq = self.sq
        memc = self.memc
        fwd = self.fwd
        violators = None
        for ls, ref in records:
            if ref != serial[ls] or sq[ls]:
                continue
            mc = memc[ls]
            if mc < 0 or mc > cycle:
                continue
            if fwd[ls] == seq:
                continue
            if violators is None:
                violators = [ls]
            else:
                violators.append(ls)
        if violators is None:
            return
        if self.as_mode:
            stale_of = self.col.stale_of
            violators = [
                ls for ls in violators
                if not stale_of[ls]
                and self._value_propagated(ls, cycle)
            ]
        if violators:
            oldest = min(violators)
            if self._selective:
                self._selective_reexecute(oldest, seq, cycle)
            else:
                self._squash_for_violation(oldest, seq, cycle)

    def _value_propagated(self, ls: int, write_cycle: int) -> bool:
        consumers = self.consumers[ls]
        waiters = self.waiters[ls]
        if consumers and waiters:
            combined = consumers + waiters
        elif consumers:
            combined = consumers
        elif waiters:
            combined = waiters
        else:
            return False
        serial = self.serial
        sq = self.sq
        issue = self.issue
        propagated = False
        for wseq, _, wref in combined:
            if wref != serial[wseq] or sq[wseq]:
                continue
            ic = issue[wseq]
            if ic >= 0 and ic <= write_cycle:
                propagated = True
                break
        if not propagated:
            d_rdy = self.d_rdy
            a_rdy = self.a_rdy
            fix = write_cycle + 1
            for wseq, is_data, wref in combined:
                if (
                    wref != serial[wseq] or sq[wseq]
                    or issue[wseq] >= 0
                ):
                    continue
                if is_data:
                    if fix > d_rdy[wseq]:
                        d_rdy[wseq] = fix
                elif fix > a_rdy[wseq]:
                    a_rdy[wseq] = fix
        return propagated

    def _store_buffer_insert(self, seq: int, data_ready: int) -> None:
        buffer = self.store_buffer
        if buffer.full:
            head_seq = self.w_head if self.w_count else seq
            if not buffer.evict_oldest_before(head_seq):
                raise SimulationStuck("store buffer wedged")
        col = self.col
        wc = self.write[seq]
        buffer.insert(StoreBufferEntry(
            seq=seq,
            addr=col.addr[seq],
            size=col.size[seq],
            value=col.value[seq],
            data_ready_cycle=data_ready,
            drain_cycle=wc if wc >= 0 else None,
        ))

    # -- squash --------------------------------------------------------

    def _window_squash_from(self, seq: int) -> int:
        """Flag entries with seq >= *seq* squashed; returns the count.

        No rename-map repair is needed: producers come from the static
        ``prod_flat`` column, whose liveness test (``p >= w_head``) is
        unaffected by squashing the window tail.
        """
        tail = self.w_head + self.w_count
        self.sq[seq:tail] = b"\x01" * (tail - seq)
        self.w_count = seq - self.w_head
        return tail - seq

    def _syn_squash(self, from_seq: int) -> None:
        syn = self._syn
        for key in list(syn):
            kept = [rec for rec in syn[key] if rec[0] < from_seq]
            if kept:
                syn[key] = kept
            else:
                del syn[key]

    def _det_squash(self, from_seq: int) -> None:
        det = self._det
        for key in list(det):
            kept = [rec for rec in det[key] if rec[0] < from_seq]
            if kept:
                det[key] = kept
            else:
                del det[key]

    def _sset_squash(self, from_seq: int) -> None:
        lfst = self.store_sets._lfst
        serial = self.serial
        sq = self.sq
        for slot, handle in enumerate(lfst):
            if handle is None:
                continue
            s, _, ref = handle
            if ref != serial[s] or sq[s] or s >= from_seq:
                lfst[slot] = None

    def _squash_for_violation(
        self, ls: int, ss: int, cycle: int
    ) -> None:
        stats = self.stats
        stats.misspeculations += 1
        count = self._window_squash_from(ls)
        stats.squashed_instructions += count
        self.load_live = None
        self.swp_live = None
        self.unexec_stores.squash(ls)
        self.barrier_stores.squash(ls)
        self._syn_squash(ls)
        self._det_squash(ls)
        self.store_buffer.squash_younger(ls)
        if self.addr_sched is not None:
            self.addr_sched.squash(ls)
        if self.store_sets is not None:
            self._sset_squash(ls)
        resume = cycle + self.config.memdep.squash_refill_penalty
        self._fetch_squash(ls, resume)

        pcs = self.col.pc
        if self.policy is SpeculationPolicy.SELECTIVE:
            self.predictor.record_misspeculation(pcs[ls])
        elif self.policy is SpeculationPolicy.STORE_BARRIER:
            self.predictor.record_misspeculation(pcs[ss])
        elif self.policy is SpeculationPolicy.SYNC:
            self.mdpt.record_violation(pcs[ls], pcs[ss])
        elif self.policy is SpeculationPolicy.STORE_SETS:
            self.store_sets.record_violation(pcs[ls], pcs[ss])

    def _selective_reexecute(
        self, ls: int, ss: int, cycle: int
    ) -> None:
        stats = self.stats
        stats.misspeculations += 1
        col = self.col
        lat = self.lat
        opb = col.opb
        is_load_b = col.is_load_b
        is_store_b = col.is_store_b
        comp = self.comp
        write = self.write
        issue = self.issue
        srcs_off = col.srcs_off
        prod_flat = col.prod_flat
        new_complete: Dict[int, int] = {}
        reexecuted = 0

        self.fwd[ls] = ss
        old = comp[ls]
        corrected = max(old if old >= 0 else 0, cycle + 1)
        if corrected != old:
            comp[ls] = corrected
            self._schedule(corrected, _EV_COMPLETE, ls)
        new_complete[ls] = corrected

        a_rdy = self.a_rdy
        d_rdy = self.d_rdy
        sq = self.sq
        w_head = self.w_head
        for s in range(w_head, w_head + self.w_count):
            if s <= ls or sq[s]:
                continue
            bump = 0
            for k in range(srcs_off[s], srcs_off[s + 1]):
                p = prod_flat[k]
                # Live producers only; committed ones cannot be in
                # ``new_complete`` (its keys are window entries > ls).
                if p >= w_head:
                    when = new_complete.get(p)
                    if when is not None and when > bump:
                        bump = when
            if not bump or issue[s] < 0:
                if bump:
                    if bump > a_rdy[s]:
                        a_rdy[s] = bump
                    if bump > d_rdy[s]:
                        d_rdy[s] = bump
                continue
            latency = lat[opb[s]]
            if is_load_b[s]:
                latency += 2
            corrected = bump + latency
            old = write[s] if is_store_b[s] else comp[s]
            if old >= 0 and corrected > old:
                reexecuted += 1
                if is_store_b[s]:
                    write[s] = corrected
                    comp[s] = corrected
                    self._schedule(corrected, _EV_WRITE, s)
                else:
                    comp[s] = corrected
                    self._schedule(corrected, _EV_COMPLETE, s)
                new_complete[s] = corrected
        stats.squashed_instructions += reexecuted

    # -- commit --------------------------------------------------------

    def _sset_store_retired(self, seq: int) -> None:
        predictor = self.store_sets
        ssid = predictor.ssid_of(self.col.pc[seq])
        if ssid is None:
            return
        slot = predictor._ssid_slot(ssid)
        handle = predictor._lfst[slot]
        if (
            handle is not None
            and handle[0] == seq
            and handle[2] == self.serial[seq]
        ):
            predictor._lfst[slot] = None

    # -- dispatch ------------------------------------------------------

    def _reset_entry(self, s: int) -> None:
        """Re-dispatch after a squash: restore Entry defaults."""
        self.a_pend[s] = 0
        self.d_pend[s] = 0
        self.issue[s] = -1
        self.agen[s] = -1
        self.memc[s] = -1
        self.comp[s] = -1
        self.write[s] = -1
        self.execd[s] = 0
        self.in_rp[s] = 0
        self.in_mp[s] = 0
        self.spec[s] = 0
        self.fwd[s] = -1
        self.waiters[s] = None
        if self.consumers is not None:
            self.consumers[s] = None
        self.pred_dep[s] = 0
        self.barrier[s] = 0
        self.sync_syn[s] = -1
        self.sync_ws[s] = -1
        self.fd_start[s] = -1
        self.fd_cls[s] = 0
        self.fd_res[s] = -1

    def _on_load_dispatch_policy(self, s: int) -> None:
        # Policy-specific load-dispatch work; the dependence-detection
        # record is inlined at the dispatch site (it applies to every
        # policy), so only SELECTIVE/SYNC/STORE_SETS land here.
        policy = self.policy
        if policy is SpeculationPolicy.SELECTIVE:
            if self.predictor.predicts_dependence(self.col.pc[s]):
                self.pred_dep[s] = 1
        elif policy is SpeculationPolicy.SYNC:
            prediction = self.mdpt.predict_load(self.col.pc[s])
            if prediction is not None:
                synonym = prediction.synonym
                self.sync_syn[s] = synonym
                best = -1
                best_ref = 0
                serial = self.serial
                sq = self.sq
                for ws, ref in self._syn.get(synonym, ()):
                    if ref != serial[ws] or sq[ws] or ws >= s:
                        continue
                    if ws > best:
                        best = ws
                        best_ref = ref
                if best >= 0:
                    self.sync_ws[s] = best
                    self.sync_ws_ref[s] = best_ref
        elif policy is SpeculationPolicy.STORE_SETS:
            predictor = self.store_sets
            ssid = predictor.ssid_of(self.col.pc[s])
            if ssid is not None:
                handle = predictor._lfst[predictor._ssid_slot(ssid)]
                if handle is not None:
                    ws, _, ref = handle
                    if (
                        ref == self.serial[ws] and not self.sq[ws]
                        and ws < s
                    ):
                        self.sync_ws[s] = ws
                        self.sync_ws_ref[s] = ref

    def _on_store_dispatch_policy(self, s: int) -> None:
        # Policy-specific store-dispatch work; the unexecuted-store and
        # address-scheduler bookkeeping is inlined at the dispatch site.
        policy = self.policy
        if policy is SpeculationPolicy.STORE_BARRIER:
            if self.predictor.predicts_dependence(self.col.pc[s]):
                self.barrier[s] = 1
                self.barrier_stores.on_dispatch(s)
        elif policy is SpeculationPolicy.SYNC:
            prediction = self.mdpt.predict_store(self.col.pc[s])
            if prediction is not None:
                synonym = prediction.synonym
                self.sync_syn[s] = synonym
                rec = (s, self.serial[s])
                producers = self._syn.get(synonym)
                if producers is None:
                    self._syn[synonym] = [rec]
                else:
                    producers.append(rec)
        elif policy is SpeculationPolicy.STORE_SETS:
            predictor = self.store_sets
            ssid = predictor.ssid_of(self.col.pc[s])
            if ssid is not None:
                slot = predictor._ssid_slot(ssid)
                previous = predictor._lfst[slot]
                predictor._lfst[slot] = (s, 0, self.serial[s])
                if previous is not None:
                    ws, _, ref = previous
                    if ref == self.serial[ws] and not self.sq[ws]:
                        self.sync_ws[s] = ws
                        self.sync_ws_ref[s] = ref

    # -- readiness -----------------------------------------------------

    def _rp_push(self, s: int) -> None:
        # The ready pool is a plain int heap: the incarnation that pushed
        # is captured in ``rp_ref`` instead of a tuple. Two records for
        # the same seq can coexist after a squash + re-dispatch; the pop
        # consumes exactly one (the duplicate skips on ``in_rp``), at the
        # same heap position equal keys would occupy either way.
        if self.in_rp[s] or self.sq[s]:
            return
        self.in_rp[s] = 1
        self.rp_ref[s] = self.serial[s]
        heapq.heappush(self.rp, s)

    def _mp_push(self, items: List, s: int) -> bool:
        """Push *s* onto a mem pool. Returns True if pushed."""
        if self.in_mp[s] or self.sq[s]:
            return False
        self.in_mp[s] = 1
        self._mp_serial += 1
        item = (s, self._mp_serial, self.serial[s])
        if not items or s > items[-1][0]:
            items.append(item)
        else:
            bisect.insort(items, item)
        return True

    def _mp_live(self, which: str) -> List[int]:
        """Live seqs, oldest-first, pruning dead records (MemPool
        ``live_entries`` port)."""
        if which == "load":
            live = self.load_live
            items = self.load_items
        else:
            live = self.swp_live
            items = self.swp_items
        if live is not None:
            return live
        if not items:
            live = []
        else:
            serial = self.serial
            sq = self.sq
            in_mp = self.in_mp
            live = [
                s for s, _, ref in items
                if ref == serial[s] and in_mp[s] and not sq[s]
            ]
            if len(live) != len(items):
                items = [(s, 0, serial[s]) for s in live]
                if which == "load":
                    self.load_items = items
                    self.load_dead = 0
                else:
                    self.swp_items = items
                    self.swp_dead = 0
        if which == "load":
            self.load_live = live
        else:
            self.swp_live = live
        return live

    # -- issue ---------------------------------------------------------

    def _do_issue_store_nas(self, s: int) -> None:
        cycle = self.cycle
        self.issue[s] = cycle
        self.agen[s] = cycle + 1
        wc = cycle + 2
        self.write[s] = wc
        self.comp[s] = wc
        self.unexec_stores.on_execute(s)
        if self.barrier[s]:
            self.barrier_stores.on_execute(s)
        self._store_buffer_insert(s, data_ready=cycle + 1)
        self._schedule(wc, _EV_WRITE, s)

    def _do_issue_store_agen_as(self, s: int) -> None:
        cycle = self.cycle
        self.issue[s] = cycle
        agen = cycle + 1
        self.agen[s] = agen
        col = self.col
        visible = self.addr_sched.post_address(
            s, col.addr[s], col.size[s], agen
        )
        self._schedule(visible, _EV_POST, s)
        if not self.d_pend[s]:
            if self._mp_push(self.swp_items, s):
                self.swp_live = None

    # -- memory stage --------------------------------------------------

    def _issue_memory(self) -> None:
        loads = self._mp_live("load")
        if self.as_mode:
            writes = self._mp_live("swp")
            if writes:
                if loads:
                    candidates = sorted(loads + writes)
                else:
                    candidates = writes
            else:
                candidates = loads
        else:
            candidates = loads
        if not candidates:
            self.mem_wake = -1
            self.mem_dirty = False
            return
        cycle = self.cycle
        kind = self._gate_kind
        # ``wake`` collects only this scan's own unblock times; it is
        # kept as the standing wake time for the advance-clock horizon
        # in the main loop.
        wake = -1
        progress = False
        blocked_tail = -1
        ports_left = self._memory_ports - self.fu_ports
        if kind == _GATE_ALL_STORES or kind == _GATE_PREDICTED:
            blocked_from = self.unexec_stores.oldest()
        elif kind == _GATE_BARRIER:
            blocked_from = self.barrier_stores.oldest()
        else:
            blocked_from = None
        col = self.col
        is_store_b = col.is_store_b
        col_addr = col.addr
        col_size = col.size
        agen = self.agen
        write = self.write
        comp = self.comp
        d_rdy = self.d_rdy
        in_mp = self.in_mp
        memc = self.memc
        spec = self.spec
        fwd = self.fwd
        serial = self.serial
        fd_start = self.fd_start
        fd_res = self.fd_res
        note_fd_wait = self._note_fd_wait
        store_buffer = self.store_buffer
        sb_blocks = store_buffer._blocks
        sb_search = store_buffer.search
        hier_load = self.hierarchy.load
        unexec_seqs = self.unexec_stores._seqs
        evq = self._evq
        evt = self._evt
        nx = self._nx
        ncy = cycle + 1
        heappush = heapq.heappush
        ev_complete = _EV_COMPLETE
        ev_write = _EV_WRITE
        gate_open = kind == _GATE_OPEN
        gate_as = kind == _GATE_AS
        if gate_as:
            sched = self.addr_sched
            as_lat = sched.latency
            as_no = self.policy is SpeculationPolicy.NO
            yom = sched.youngest_older_match
            aop = sched.all_older_posted
        for s in candidates:
            if not ports_left:
                progress = True
                break
            if is_store_b[s]:
                ready = d_rdy[s]
                a = agen[s]
                if a > ready:
                    ready = a
                if ready > cycle:
                    if wake < 0 or ready < wake:
                        wake = ready
                    continue
                ports_left -= 1
                if in_mp[s]:
                    in_mp[s] = 0
                    self.swp_dead += 1
                    self.swp_live = None
                wc = cycle + 1
                write[s] = wc
                comp[s] = wc
                self.unexec_stores.on_execute(s)
                if self.barrier[s]:
                    self.barrier_stores.on_execute(s)
                self._store_buffer_insert(s, data_ready=cycle + 1)
                self._nx_time = wc
                nx.append((ev_write, s, serial[s]))
                progress = True
                continue
            # -- loads: the policy gate, inlined -----------------------
            a = agen[s]
            if a < 0 or a > cycle:
                if a >= 0 and (wake < 0 or a < wake):
                    wake = a
                continue
            if gate_open:
                pass
            elif gate_as:
                # _load_gate_as, inlined.
                search_from = a + as_lat
                if cycle < search_from:
                    if wake < 0 or search_from < wake:
                        wake = search_from
                    continue
                if as_no and not aop(s, cycle):
                    note_fd_wait(s)
                    continue
                m = yom(s, col_addr[s], col_size[s], cycle)
                if m >= 0:
                    wc = write[m]
                    if wc < 0:
                        continue
                    if cycle < wc:
                        if wake < 0 or wc < wake:
                            wake = wc
                        continue
            elif kind == _GATE_ALL_STORES:
                if blocked_from is not None and blocked_from < s:
                    # The gate is global: every younger candidate is
                    # blocked by the same oldest store. Finish them in
                    # the cheap tail pass below.
                    blocked_tail = s
                    break
            elif kind == _GATE_PREDICTED:
                if (
                    self.pred_dep[s]
                    and blocked_from is not None
                    and blocked_from < s
                ):
                    if fd_start[s] < 0:
                        note_fd_wait(s)
                    continue
            elif kind == _GATE_BARRIER:
                if blocked_from is not None and blocked_from < s:
                    blocked_tail = s
                    break
            elif kind == _GATE_SYNC:
                ws = self.sync_ws[s]
                if (
                    ws >= 0
                    and self.sync_ws_ref[s] == serial[ws]
                    and not self.sq[ws]
                    and not self.execd[ws]
                ):
                    issued = self.issue[ws]
                    if issued < 0:
                        continue
                    if cycle < issued + 1:
                        if wake < 0 or issued + 1 < wake:
                            wake = issued + 1
                        continue
            else:  # _GATE_ORACLE
                # ``ds`` is older than the live load s, so it is in the
                # window exactly when it has not committed yet.
                ds = col.dep_of[s]
                if ds >= self.w_head and not self.execd[ds]:
                    issued = self.issue[ds]
                    if issued < 0:
                        if fd_start[s] < 0:
                            note_fd_wait(s)
                        continue
                    if cycle < issued + 1:
                        if wake < 0 or issued + 1 < wake:
                            wake = issued + 1
                        continue
            if fd_start[s] >= 0 and fd_res[s] < 0:
                fd_res[s] = cycle
            ports_left -= 1
            if in_mp[s]:
                in_mp[s] = 0
                self.load_dead += 1
                self.load_live = None
            # -- _access_memory, inlined ------------------------------
            memc[s] = cycle
            if unexec_seqs and unexec_seqs[0] < s:
                spec[s] = 1
            addr = col_addr[s]
            size = col_size[s]
            # Block-granular prefilter (the same one ``search`` runs):
            # most loads overlap no buffered store — answer those
            # without the call.
            blk = addr >> 3
            end_blk = (addr + size - 1) >> 3
            if blk == end_blk:
                overlap = blk in sb_blocks
            else:
                overlap = False
                while blk <= end_blk:
                    if blk in sb_blocks:
                        overlap = True
                        break
                    blk += 1
            buffered = None
            if overlap:
                buffered, full = sb_search(s, addr, size)
            if buffered is None:
                complete = hier_load(addr, cycle)
            elif full:
                drc = buffered.data_ready_cycle + 1
                complete = drc if drc > cycle + 1 else cycle + 1
                fwd[s] = buffered.seq
            else:
                dstart = buffered.data_ready_cycle
                if dstart < cycle:
                    dstart = cycle
                complete = hier_load(addr, dstart)
            comp[s] = complete
            if complete == ncy:
                self._nx_time = complete
                nx.append((ev_complete, s, serial[s]))
            else:
                b = evq.get(complete)
                if b is None:
                    evq[complete] = [(ev_complete, s, serial[s])]
                    heappush(evt, complete)
                else:
                    b.append((ev_complete, s, serial[s]))
            progress = True
        if blocked_tail >= 0:
            # Tail of an ALL_STORES/BARRIER scan: the gate blocks every
            # candidate from ``blocked_tail`` on (candidates ascend and
            # the blocking store is global), so reproduce exactly what
            # the reference does for each — merge a pending agen time
            # into the wake hint, otherwise note the false-dependence
            # wait (``fd_start`` timing feeds the latency stats). Ports
            # are untouched here, so no port-exhaustion break can occur
            # mid-tail.
            lo = bisect.bisect_left(candidates, blocked_tail)
            for t in candidates[lo:]:
                a = agen[t]
                if a < 0 or a > cycle:
                    if a >= 0 and (wake < 0 or a < wake):
                        wake = a
                elif fd_start[t] < 0:
                    note_fd_wait(t)
        self.fu_ports = self._memory_ports - ports_left
        # No hint merge: ``mem_wake`` is a standing advance-clock term.
        self.mem_wake = wake
        if progress:
            self.mem_dirty = True
        else:
            self.mem_dirty = False

    def _note_fd_wait(self, s: int) -> None:
        if self.fd_start[s] >= 0:
            return
        self.fd_start[s] = self.cycle
        ds = self.col.dep_of[s]
        # Older dep of a live load: in the window iff not yet committed.
        if ds >= self.w_head and not self.execd[ds]:
            self.fd_cls[s] = 2
        else:
            self.fd_cls[s] = 1

    # -- fetch ---------------------------------------------------------

    def _fetch_tick(self, cycle: int) -> int:
        if cycle < self.f_stalled or self.f_wait >= 0:
            return 0
        buffer = self.f_buffer
        buffer_cap = self.f_cap
        if len(buffer) >= buffer_cap:
            return 0
        fetched = 0
        blocks_used = 0
        current_block = None
        width = self._f_width
        max_blocks = self._f_max_blocks
        block_shift = self._f_block_shift
        recent_blocks = self.f_recent
        recent_cap = 4 * max_blocks
        hit_by = cycle + self._f_hit_latency
        dispatch_at = cycle + self._f_depth
        col = self.col
        pcs = col.pc
        branch_b = col.branch_b
        opb = col.opb
        ops = col.ops
        taken = col.taken
        target = col.target
        predict = self.branch_unit.predict_and_train_raw
        fetch_block = self.hierarchy.fetch
        pos = self.f_pos
        stop = self.f_stop
        runs = self._f_run
        while (
            fetched < width
            and len(buffer) < buffer_cap
            and pos < stop
        ):
            pc = pcs[pos]
            block = pc >> block_shift
            if block != current_block:
                if blocks_used >= max_blocks:
                    break
                blocks_used += 1
                current_block = block
                available = recent_blocks.get(block)
                if available is None:
                    available = fetch_block(pc, cycle)
                    recent_blocks[block] = available
                    if len(recent_blocks) > recent_cap:
                        oldest = next(iter(recent_blocks))
                        del recent_blocks[oldest]
                if available > hit_by:
                    self.f_stalled = available
                    break
            k = runs[pos]
            if k > 1:
                # Bulk-append the same-block non-branch run, clipped to
                # the width / buffer / segment limits.
                lim = width - fetched
                room = buffer_cap - len(buffer)
                if room < lim:
                    lim = room
                room = stop - pos
                if room < lim:
                    lim = room
                if k > lim:
                    k = lim
                if k > 1:
                    end = pos + k
                    buffer.extend(
                        zip(range(pos, end), _irepeat(dispatch_at))
                    )
                    pos = end
                    fetched += k
                    continue
            s = pos
            pos += 1
            buffer.append((s, dispatch_at))
            fetched += 1
            if branch_b[s]:
                correct = predict(
                    pc, ops[opb[s]], taken[s], target[s]
                )[2]
                if not correct:
                    self.f_wait = s
                    break
                if taken[s]:
                    current_block = None
        self.f_pos = pos
        return fetched

    def _fetch_squash(self, seq: int, resume_cycle: int) -> None:
        buffer = self.f_buffer
        while buffer and buffer[-1][0] >= seq:
            buffer.pop()
        if self.f_pos > seq:
            self.f_pos = seq
        if self.f_wait >= 0 and self.f_wait >= seq:
            self.f_wait = -1
        if resume_cycle > self.f_stalled:
            self.f_stalled = resume_cycle

    def _resume_after_branch(self, seq: int, cycle: int) -> None:
        if self.f_wait == seq:
            self.f_wait = -1
            resume = cycle + self.config.branch_redirect_penalty
            if resume > self.f_stalled:
                self.f_stalled = resume

    # -- periodic table flushes ----------------------------------------

    def _maybe_flush_tables(self) -> None:
        if self.cycle < self._next_flush:
            return
        interval = self.config.memdep.flush_interval
        while self._next_flush <= self.cycle:
            self._next_flush += interval
        if self.predictor is not None:
            self.predictor.flush()
        if self.mdpt is not None:
            self.mdpt.flush()
        if self.store_sets is not None:
            self.store_sets.flush()

    # -- cache stat snapshots ------------------------------------------

    def _snapshot_caches(self, stats: SimResult) -> None:
        stats.dcache_accesses = self.hierarchy.dcache.accesses
        stats.dcache_misses = self.hierarchy.dcache.misses
        stats.icache_accesses = self.hierarchy.icache.accesses
        stats.icache_misses = self.hierarchy.icache.misses
        stats.l2_accesses = self.hierarchy.l2.accesses
        stats.l2_misses = self.hierarchy.l2.misses




