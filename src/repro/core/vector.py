"""Structure-of-arrays simulator core (the ``vector`` backend).

A line-by-line port of :class:`repro.core.processor.Processor` onto
packed per-instruction columns consumed straight from
:class:`~repro.trace.compiled.CompiledTrace`: no ``DynInst`` or
``Entry`` objects exist on the fast path. Every per-entry attribute of
the reference core becomes one slot of a preallocated array indexed by
``seq``, and object identity (the reference's ``entry.squashed`` /
``is entry`` tests) becomes an *incarnation serial*: ``serial[seq]``
increments each time ``seq`` is (re-)dispatched after a squash, and any
record that captured ``(seq, ref)`` is stale exactly when
``ref != serial[seq]``.

The port must stay bit-identical to the reference — the golden-parity
suite and CI's ``backend-parity`` job compare every :class:`SimResult`
field. Anything this core cannot express (observability, timelines,
telemetry, split windows) is routed to the reference backend by
:func:`repro.core.backend.vector_limitation`; this class rejects those
arguments outright.
"""

from __future__ import annotations

import gc
import heapq
from collections import deque
from typing import Dict, List, Optional

from repro.branch.unit import BranchUnit
from repro.config.processor import (
    ProcessorConfig,
    SchedulingModel,
    SpeculationPolicy,
)
from repro.core.lsq import UnexecutedStoreTracker
from repro.core.processor import (
    SimulationStuck,
    _EV_COMPLETE,
    _EV_POST,
    _EV_READY,
    _EV_WRITE,
    _GATE_ALL_STORES,
    _GATE_AS,
    _GATE_BARRIER,
    _GATE_OPEN,
    _GATE_ORACLE,
    _GATE_PREDICTED,
    _GATE_SYNC,
)
from repro.core.result import SimResult
from repro.core.scheduler import FunctionalUnits
from repro.isa.opcodes import OpClass
from repro.isa.registers import REG_ZERO
from repro.memdep.store_sets import StoreSetPredictor
from repro.memdep.sync import MDPT
from repro.memdep.tables import TwoBitPredictorTable
from repro.memory.hierarchy import MemoryHierarchy
from repro.memory.store_buffer import StoreBuffer, StoreBufferEntry
from repro.trace.compiled import CompiledTrace, _mask_bit, _op_table
from repro.trace.dependences import DependenceInfo
from repro.trace.sampling import SamplingPlan, make_sampling_plan

_TAKEN_MAP = (None, False, True)


def _class_table(ops, predicate) -> bytes:
    """256-byte translate table: op byte -> 1 where predicate holds."""
    table = bytearray(256)
    for i, op in enumerate(ops):
        if predicate(op):
            table[i] = 1
    return bytes(table)


class _Columns:
    """Static per-seq columns shared by every segment of one run."""

    __slots__ = (
        "n", "name", "suite", "ops", "opb", "pc", "size", "addr",
        "value", "target", "taken", "dest_eff", "srcs_off", "srcs_flat",
        "is_load_b", "is_store_b", "branch_b", "mem_b", "fp_b",
        "dep_of", "stale_of",
    )


def _columns_from_compiled(compiled: CompiledTrace) -> _Columns:
    n = compiled.length
    col = _Columns()
    col.n = n
    col.name = compiled.name
    col.suite = compiled.suite
    ops = _op_table(compiled)
    col.ops = ops
    col.opb = bytes(compiled.op)
    col.pc = compiled.pc.tolist()
    col.size = compiled.size.tolist()
    col.addr = compiled.addr.tolist()
    value = compiled.value.tolist()
    target = compiled.target.tolist()
    dest = compiled.dest.tolist()
    # Null masks: sparse per-byte walk (most bytes are 0x00 or 0xff).
    for mask, out, null in (
        (compiled.value_null, value, None),
        (compiled.target_null, target, None),
    ):
        for bi, byte in enumerate(mask):
            if not byte:
                continue
            base = bi << 3
            for bit in range(8):
                if byte & (1 << bit):
                    i = base + bit
                    if i < n:
                        out[i] = null
    # dest: None packs as 0 and REG_ZERO == 0; both mean "no register
    # result" to dispatch/commit/squash, so fold them to -1. (addr nulls
    # stay 0 — only memory ops read the addr column.)
    col.dest_eff = [d if d else -1 for d in dest]
    col.taken = [_TAKEN_MAP[b] for b in compiled.taken]
    col.srcs_off = compiled.srcs_off
    col.srcs_flat = compiled.srcs_flat.tolist()
    for column, table in compiled.overflow.items():
        if column == "pc":
            for i, big in table.items():
                col.pc[int(i)] = big
        elif column == "addr":
            for i, big in table.items():
                col.addr[int(i)] = big
        elif column == "size":
            for i, big in table.items():
                col.size[int(i)] = big
        elif column == "value":
            for i, big in table.items():
                value[int(i)] = big
        elif column == "target":
            for i, big in table.items():
                target[int(i)] = big
        elif column == "dest":
            for i, big in table.items():
                col.dest_eff[int(i)] = big
        elif column == "srcs_flat":
            for i, big in table.items():
                col.srcs_flat[int(i)] = big
    col.value = value
    col.target = target
    col.is_load_b = col.opb.translate(
        _class_table(ops, lambda op: op is OpClass.LOAD)
    )
    col.is_store_b = col.opb.translate(
        _class_table(ops, lambda op: op is OpClass.STORE)
    )
    col.branch_b = col.opb.translate(
        _class_table(ops, lambda op: op.branch_class)
    )
    col.mem_b = col.opb.translate(
        _class_table(ops, lambda op: op.mem_class)
    )
    col.fp_b = col.opb.translate(
        _class_table(ops, lambda op: op.fp_class)
    )
    return col


def _columns_from_trace(trace) -> _Columns:
    """Fallback: build the same columns from a materialized Trace."""
    instructions = trace.instructions
    n = len(instructions)
    col = _Columns()
    col.n = n
    col.name = trace.name
    col.suite = getattr(trace, "suite", None)
    ops = tuple(OpClass)
    op_index = {op: i for i, op in enumerate(ops)}
    col.ops = ops
    opb = bytearray(n)
    col.pc = pc = [0] * n
    col.size = size = [0] * n
    col.addr = addr = [0] * n
    col.value = value = [None] * n
    col.target = target = [None] * n
    col.taken = taken = [None] * n
    col.dest_eff = dest_eff = [-1] * n
    srcs_off = [0] * (n + 1)
    srcs_flat: List[int] = []
    for i, inst in enumerate(instructions):
        opb[i] = op_index[inst.op]
        pc[i] = inst.pc
        size[i] = inst.size
        if inst.addr is not None:
            addr[i] = inst.addr
        value[i] = inst.value
        target[i] = inst.target
        taken[i] = inst.taken
        d = inst.dest
        if d is not None and d != REG_ZERO:
            dest_eff[i] = d
        srcs_flat.extend(inst.srcs)
        srcs_off[i + 1] = len(srcs_flat)
    col.opb = bytes(opb)
    col.srcs_off = srcs_off
    col.srcs_flat = srcs_flat
    col.is_load_b = col.opb.translate(
        _class_table(ops, lambda op: op is OpClass.LOAD)
    )
    col.is_store_b = col.opb.translate(
        _class_table(ops, lambda op: op is OpClass.STORE)
    )
    col.branch_b = col.opb.translate(
        _class_table(ops, lambda op: op.branch_class)
    )
    col.mem_b = col.opb.translate(
        _class_table(ops, lambda op: op.mem_class)
    )
    col.fp_b = col.opb.translate(
        _class_table(ops, lambda op: op.fp_class)
    )
    return col


def _attach_dependences(
    col: _Columns,
    source,
    dep_info: Optional[Dict[int, DependenceInfo]],
) -> None:
    """Fill ``dep_of``/``stale_of`` (static: identical every dispatch)."""
    n = col.n
    dep_of = [-1] * n
    # Entry.stale_equal defaults to True; loads without a DependenceInfo
    # record keep that default in the reference core.
    stale_of = bytearray(b"\x01" * n)
    if dep_info is not None:
        for seq, info in dep_info.items():
            dep_of[seq] = info.store_seq
            if not info.stale_equal:
                stale_of[seq] = 0
    elif isinstance(source, CompiledTrace) and source.has_dependences:
        stale = source.dep_stale
        for i, (load, store) in enumerate(
            zip(source.dep_load, source.dep_store)
        ):
            dep_of[load] = store
            if not _mask_bit(stale, i):
                stale_of[load] = 0
    else:
        if isinstance(source, CompiledTrace):
            info = source.compute_dependence_info()
        else:
            from repro.trace.dependences import compute_dependence_info

            info = compute_dependence_info(source)
        for seq, rec in info.items():
            dep_of[seq] = rec.store_seq
            if not rec.stale_equal:
                stale_of[seq] = 0
    col.dep_of = dep_of
    col.stale_of = stale_of


class _VAddrSched:
    """Seq-keyed port of :class:`repro.memdep.addr_scheduler
    .AddressScheduler` (records are always current incarnations:
    squash truncates by seq before any re-dispatch)."""

    __slots__ = (
        "latency", "_unposted", "_seqs", "_addrs", "_sizes",
        "_visibles", "_blocks", "_max_visible", "posts", "searches",
    )

    def __init__(self, latency: int) -> None:
        self.latency = latency
        self._unposted: List[int] = []
        self._seqs: List[int] = []
        self._addrs: List[int] = []
        self._sizes: List[int] = []
        self._visibles: List[int] = []
        self._blocks: dict = {}
        self._max_visible = -1
        self.posts = 0
        self.searches = 0

    def on_store_dispatch(self, seq: int) -> None:
        self._unposted.append(seq)

    def post_address(
        self, seq: int, addr: int, size: int, cycle: int
    ) -> int:
        unposted = self._unposted
        lo, hi = 0, len(unposted)
        while lo < hi:
            mid = (lo + hi) // 2
            if unposted[mid] < seq:
                lo = mid + 1
            else:
                hi = mid
        if lo < len(unposted) and unposted[lo] == seq:
            unposted.pop(lo)
        visible = cycle + self.latency
        seqs = self._seqs
        lo, hi = 0, len(seqs)
        while lo < hi:
            mid = (lo + hi) // 2
            if seqs[mid] < seq:
                lo = mid + 1
            else:
                hi = mid
        seqs.insert(lo, seq)
        self._addrs.insert(lo, addr)
        self._sizes.insert(lo, size)
        self._visibles.insert(lo, visible)
        blocks = self._blocks
        for block in range(addr >> 3, ((addr + size - 1) >> 3) + 1):
            blocks[block] = blocks.get(block, 0) + 1
        if visible > self._max_visible:
            self._max_visible = visible
        self.posts += 1
        return visible

    def _uncover(self, index: int) -> None:
        addr = self._addrs[index]
        size = self._sizes[index]
        blocks = self._blocks
        for block in range(addr >> 3, ((addr + size - 1) >> 3) + 1):
            count = blocks[block] - 1
            if count:
                blocks[block] = count
            else:
                del blocks[block]

    def remove_store(self, seq: int) -> None:
        import bisect

        seqs = self._seqs
        index = bisect.bisect_left(seqs, seq)
        if index < len(seqs) and seqs[index] == seq:
            self._uncover(index)
            del seqs[index]
            del self._addrs[index]
            del self._sizes[index]
            del self._visibles[index]

    def squash(self, from_seq: int) -> None:
        import bisect

        cut = bisect.bisect_left(self._unposted, from_seq)
        del self._unposted[cut:]
        cut = bisect.bisect_left(self._seqs, from_seq)
        for index in range(cut, len(self._seqs)):
            self._uncover(index)
        del self._seqs[cut:]
        del self._addrs[cut:]
        del self._sizes[cut:]
        del self._visibles[cut:]

    def all_older_posted(self, seq: int, cycle: int) -> bool:
        if self._unposted and self._unposted[0] < seq:
            return False
        if self._max_visible <= cycle:
            return True
        visibles = self._visibles
        for i, rseq in enumerate(self._seqs):
            if rseq >= seq:
                break
            if visibles[i] > cycle:
                return False
        return True

    def youngest_older_match(
        self, seq: int, addr: int, size: int, cycle: int
    ) -> int:
        """Seq of the youngest older visible overlapping store, or -1."""
        import bisect

        self.searches += 1
        blocks = self._blocks
        end = addr + size
        for block in range(addr >> 3, ((end - 1) >> 3) + 1):
            if block in blocks:
                break
        else:
            return -1
        addrs = self._addrs
        sizes = self._sizes
        visibles = self._visibles
        for i in range(bisect.bisect_left(self._seqs, seq) - 1, -1, -1):
            if visibles[i] > cycle:
                continue
            raddr = addrs[i]
            if raddr < end and addr < raddr + sizes[i]:
                return self._seqs[i]
        return -1


class VectorProcessor:
    """One simulated machine bound to one (compiled) trace.

    Accepts a :class:`CompiledTrace` (fast path) or a materialized
    :class:`~repro.trace.events.Trace` (columns are rebuilt from the
    objects). ``run(plan)`` returns the same bit-identical
    :class:`SimResult` as the reference :class:`Processor`.
    """

    def __init__(
        self,
        config: ProcessorConfig,
        trace,
        dep_info: Optional[Dict[int, DependenceInfo]] = None,
    ) -> None:
        if config.split.enabled:
            raise ValueError(
                "split-window configs require the reference backend"
            )
        if config.observe:
            raise ValueError(
                "observability requires the reference backend"
            )
        self.config = config
        if isinstance(trace, CompiledTrace):
            col = _columns_from_compiled(trace)
        else:
            col = _columns_from_trace(trace)
        _attach_dependences(col, trace, dep_info)
        self.col = col
        self.hierarchy = MemoryHierarchy(config)
        self.branch_unit = BranchUnit(config.branch)

        memdep = config.memdep
        self.as_mode = memdep.scheduling is SchedulingModel.AS
        self.policy = memdep.policy
        self.predictor: Optional[TwoBitPredictorTable] = None
        self.mdpt: Optional[MDPT] = None
        if self.policy in (
            SpeculationPolicy.SELECTIVE, SpeculationPolicy.STORE_BARRIER
        ):
            self.predictor = TwoBitPredictorTable(
                entries=memdep.predictor_entries,
                assoc=memdep.predictor_assoc,
                threshold=memdep.confidence_threshold,
            )
        elif self.policy is SpeculationPolicy.SYNC:
            self.mdpt = MDPT(
                entries=memdep.predictor_entries,
                assoc=memdep.predictor_assoc,
            )
        self.store_sets = None
        if self.policy is SpeculationPolicy.STORE_SETS:
            self.store_sets = StoreSetPredictor(
                ssit_entries=memdep.predictor_entries,
                lfst_entries=memdep.lfst_entries,
            )

        if self.as_mode:
            self._gate_kind = _GATE_AS
        elif self.policy is SpeculationPolicy.NAIVE:
            self._gate_kind = _GATE_OPEN
        elif self.policy is SpeculationPolicy.NO:
            self._gate_kind = _GATE_ALL_STORES
        elif self.policy is SpeculationPolicy.SELECTIVE:
            self._gate_kind = _GATE_PREDICTED
        elif self.policy is SpeculationPolicy.STORE_BARRIER:
            self._gate_kind = _GATE_BARRIER
        elif self.policy in (
            SpeculationPolicy.SYNC, SpeculationPolicy.STORE_SETS
        ):
            self._gate_kind = _GATE_SYNC
        elif self.policy is SpeculationPolicy.ORACLE:
            self._gate_kind = _GATE_ORACLE
        else:
            raise AssertionError(f"unhandled policy {self.policy}")

        self._selective = memdep.recovery == "selective"
        # Latency by op *byte* (latency tables are config-bound, so this
        # is per-processor, not per-column-set).
        self.lat = [
            config.latencies.latency(op) for op in col.ops
        ]
        self._issue_width = config.window.issue_width
        self._scan_budget = config.window.issue_width * 3

        n = col.n
        # Per-seq dynamic state (reference Entry fields). Allocated once
        # for the whole trace; a dispatch resets the slots it uses.
        self.serial = [0] * n
        self.sq = bytearray(n)        # squashed (current incarnation)
        self.inw = bytearray(n)       # in window
        self.a_pend = [0] * n
        self.d_pend = [0] * n
        self.a_rdy = [0] * n
        self.d_rdy = [0] * n
        self.issue = [-1] * n         # issue_cycle
        self.agen = [-1] * n          # agen_done
        self.memc = [-1] * n          # mem_issue_cycle
        self.comp = [-1] * n          # complete_cycle
        self.write = [-1] * n         # write_cycle
        self.execd = bytearray(n)     # executed
        self.in_rp = bytearray(n)     # in_ready_pool
        self.in_mp = bytearray(n)     # in_mem_pool
        self.spec = bytearray(n)      # speculative
        self.fwd = [-1] * n           # forwarded_from
        self.waiters = [None] * n     # [(waiter_seq, is_data, ref)]
        self.consumers = [None] * n if self.as_mode else None
        self.producers = [None] * n if self._selective else None
        self.pred_dep = bytearray(n)
        self.barrier = bytearray(n)
        self.sync_syn = [-1] * n
        self.sync_ws = [-1] * n       # sync_wait_store seq
        self.sync_ws_ref = [0] * n    # ... captured incarnation
        self.fd_start = [-1] * n      # fd_wait_start
        self.fd_cls = bytearray(n)    # 0=None 1="false" 2="true"
        self.fd_res = [-1] * n        # fd_resolved_cycle

        self.cycle = 0
        self._next_flush = memdep.flush_interval

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def run(self, plan: Optional[SamplingPlan] = None) -> SimResult:
        if plan is None:
            plan = make_sampling_plan(self.col.n)
        total = SimResult(
            config_label=self.config.label,
            benchmark=self.col.name,
            suite=self.col.suite,
        )
        was_enabled = gc.isenabled()
        gc.disable()
        try:
            for segment in plan.segments:
                if segment.timing:
                    total.merge(
                        self._run_segment(segment.start, segment.stop)
                    )
                else:
                    self._warm_segment(segment.start, segment.stop)
        finally:
            if was_enabled:
                gc.enable()
        self._snapshot_caches(total)
        return total

    # ------------------------------------------------------------------
    # functional warm-up (sampling)
    # ------------------------------------------------------------------

    def _warm_segment(self, start: int, stop: int) -> None:
        col = self.col
        hierarchy = self.hierarchy
        icache_touch = hierarchy.icache.touch
        dcache_touch = hierarchy.dcache.touch
        l2_touch = hierarchy.l2.touch
        predict = self.branch_unit.predict_and_train_raw
        pcs = col.pc
        addrs = col.addr
        opb = col.opb
        ops = col.ops
        branch_b = col.branch_b
        mem_b = col.mem_b
        taken = col.taken
        target = col.target
        block_shift = self.config.icache.block_bytes.bit_length() - 1
        last_block = -1
        for seq in range(start, stop):
            pc = pcs[seq]
            block = pc >> block_shift
            if block != last_block:
                icache_touch(pc)
                l2_touch(pc)
                last_block = block
            if branch_b[seq]:
                predict(pc, ops[opb[seq]], taken[seq], target[seq])
            elif mem_b[seq]:
                addr = addrs[seq]
                dcache_touch(addr)
                l2_touch(addr)
        self.cycle += max(1, (stop - start) // 2)

    # ------------------------------------------------------------------
    # timing simulation
    # ------------------------------------------------------------------

    def _run_segment(self, start: int, stop: int) -> SimResult:
        cfg = self.config
        col = self.col
        if not 0 <= start <= stop <= col.n:
            # Same contract (and message) as the reference TraceCursor.
            raise ValueError("cursor range out of bounds")
        stats = SimResult(
            config_label=cfg.label,
            benchmark=col.name,
            suite=col.suite,
        )
        self.stats = stats
        # window = contiguous seq range [w_head, w_head + w_count)
        self.w_head = 0
        self.w_count = 0
        self.w_size = cfg.window.size
        self.last_writer: Dict[int, int] = {}
        # fetch state
        self.f_pos = start
        self.f_stop = stop
        self.f_buffer = deque()       # (seq, dispatch_at)
        self.f_stalled = self.cycle
        self.f_wait = -1              # waiting_on_branch seq
        self.f_recent: dict = {}
        fetch_cfg = cfg.fetch
        self.f_cap = fetch_cfg.width * fetch_cfg.front_end_depth
        self.funits = FunctionalUnits(cfg.window)
        self.rp: List = []            # ready pool: (seq, ref) heap
        self.load_items: List = []    # mem pool: (seq, push_serial, ref)
        self.load_dead = 0
        self.load_live: Optional[List[int]] = None
        self.swp_items: List = []
        self.swp_dead = 0
        self.swp_live: Optional[List[int]] = None
        self._mp_serial = 0
        self.store_buffer = StoreBuffer(cfg.window.store_buffer_size)
        self.unexec_stores = UnexecutedStoreTracker()
        self.barrier_stores = UnexecutedStoreTracker()
        self._syn: Dict[int, List] = {}   # synonym -> [(seq, ref)]
        self._det: Dict[int, List] = {}   # store_seq -> [(load, ref)]
        self.addr_sched = (
            _VAddrSched(cfg.memdep.addr_scheduler_latency)
            if self.as_mode else None
        )
        self._events: List = []
        self._event_serial = 0
        self._hint = -1
        self._progress = False

        start_cycle = self.cycle
        branch_unit = self.branch_unit
        branch_stats_base = (
            branch_unit.predictions, branch_unit.mispredictions,
        )

        events = self._events
        advance_clock = self._advance_clock
        process_events = self._process_events
        commit = self._commit
        begin_cycle = self.funits.begin_cycle
        issue_memory = self._issue_memory
        issue_exec = self._issue_exec
        dispatch = self._dispatch
        fetch_tick = self._fetch_tick
        maybe_flush = self._maybe_flush_tables
        buffer = self.f_buffer

        while True:
            if (
                not buffer and self.f_pos >= self.f_stop
                and not self.w_count and not events
            ):
                break
            advance_clock()
            process_events()
            commit()
            begin_cycle(self.cycle)
            issue_memory()
            issue_exec()
            dispatch()
            if fetch_tick(self.cycle):
                self._progress = True
            if self.cycle >= self._next_flush:
                maybe_flush()

        stats.cycles = self.cycle - start_cycle
        stats.branch_predictions = (
            branch_unit.predictions - branch_stats_base[0]
        )
        stats.branch_mispredictions = (
            branch_unit.mispredictions - branch_stats_base[1]
        )
        stats.load_forwards = self.store_buffer.forwards
        return stats

    # -- clock ---------------------------------------------------------

    def _advance_clock(self) -> None:
        if self._progress or self.rp:
            self._progress = False
            self.cycle += 1
            return
        best = self._hint
        self._hint = -1
        if self._events:
            when = self._events[0][0]
            if best < 0 or when < best:
                best = when
        buffer = self.f_buffer
        if buffer:
            nxt = buffer[0][1]
            if best < 0 or nxt < best:
                best = nxt
        if (
            self.f_wait < 0
            and self.f_pos < self.f_stop
            and len(buffer) < self.f_cap
        ):
            when = self.f_stalled
            if best < 0 or when < best:
                best = when
        if best < 0:
            raise SimulationStuck(
                f"no progress possible at cycle {self.cycle} "
                f"(window={self.w_count}, "
                f"loads={len(self.load_items) - self.load_dead}, "
                f"writes={len(self.swp_items) - self.swp_dead})"
            )
        nxt_cycle = self.cycle + 1
        self.cycle = best if best > nxt_cycle else nxt_cycle

    def _schedule(self, cycle: int, kind: int, seq: int) -> None:
        self._event_serial += 1
        heapq.heappush(
            self._events,
            (cycle, self._event_serial, kind, seq, self.serial[seq]),
        )

    # -- events --------------------------------------------------------

    def _process_events(self) -> None:
        events = self._events
        if not events or events[0][0] > self.cycle:
            return
        cycle = self.cycle
        pop = heapq.heappop
        serial = self.serial
        sq = self.sq
        while events and events[0][0] <= cycle:
            _, _, kind, seq, ref = pop(events)
            if ref != serial[seq] or sq[seq]:
                continue
            if kind == _EV_READY:
                self._rp_push(seq)
            elif kind == _EV_COMPLETE:
                self._on_complete(seq)
            elif kind == _EV_WRITE:
                self._on_store_write(seq)
            elif kind == _EV_POST:
                self._progress = True

    def _on_complete(self, seq: int) -> None:
        done = self.comp[seq]
        if done >= 0 and done > self.cycle:
            self._schedule(done, _EV_COMPLETE, seq)
            return
        self.execd[seq] = 1
        waiters = self.waiters[seq]
        if waiters:
            serial = self.serial
            sq = self.sq
            d_pend = self.d_pend
            a_pend = self.a_pend
            d_rdy = self.d_rdy
            a_rdy = self.a_rdy
            maybe_ready = self._maybe_ready
            for wseq, is_data, wref in waiters:
                if wref != serial[wseq] or sq[wseq]:
                    continue
                if is_data:
                    d_pend[wseq] -= 1
                    if done > d_rdy[wseq]:
                        d_rdy[wseq] = done
                else:
                    a_pend[wseq] -= 1
                    if done > a_rdy[wseq]:
                        a_rdy[wseq] = done
                maybe_ready(wseq)
            if self.as_mode:
                consumers = self.consumers[seq]
                if consumers:
                    consumers.extend(waiters)
                else:
                    self.consumers[seq] = waiters
            self.waiters[seq] = []
        if self.col.branch_b[seq]:
            self._resume_after_branch(seq, done)
        self._progress = True

    def _on_store_write(self, seq: int) -> None:
        wc = self.write[seq]
        if wc >= 0 and wc > self.cycle:
            self._schedule(wc, _EV_WRITE, seq)
            return
        cycle = wc
        self.execd[seq] = 1
        self.hierarchy.store(self.col.addr[seq], cycle)
        self._progress = True

        records = self._det.get(seq)
        if not records:
            return
        serial = self.serial
        sq = self.sq
        memc = self.memc
        fwd = self.fwd
        violators = None
        for ls, ref in records:
            if ref != serial[ls] or sq[ls]:
                continue
            mc = memc[ls]
            if mc < 0 or mc > cycle:
                continue
            if fwd[ls] == seq:
                continue
            if violators is None:
                violators = [ls]
            else:
                violators.append(ls)
        if violators is None:
            return
        if self.as_mode:
            stale_of = self.col.stale_of
            violators = [
                ls for ls in violators
                if not stale_of[ls]
                and self._value_propagated(ls, cycle)
            ]
        if violators:
            oldest = min(violators)
            if self._selective:
                self._selective_reexecute(oldest, seq, cycle)
            else:
                self._squash_for_violation(oldest, seq, cycle)

    def _value_propagated(self, ls: int, write_cycle: int) -> bool:
        consumers = self.consumers[ls]
        waiters = self.waiters[ls]
        if consumers and waiters:
            combined = consumers + waiters
        elif consumers:
            combined = consumers
        elif waiters:
            combined = waiters
        else:
            return False
        serial = self.serial
        sq = self.sq
        issue = self.issue
        propagated = False
        for wseq, _, wref in combined:
            if wref != serial[wseq] or sq[wseq]:
                continue
            ic = issue[wseq]
            if ic >= 0 and ic <= write_cycle:
                propagated = True
                break
        if not propagated:
            d_rdy = self.d_rdy
            a_rdy = self.a_rdy
            fix = write_cycle + 1
            for wseq, is_data, wref in combined:
                if (
                    wref != serial[wseq] or sq[wseq]
                    or issue[wseq] >= 0
                ):
                    continue
                if is_data:
                    if fix > d_rdy[wseq]:
                        d_rdy[wseq] = fix
                elif fix > a_rdy[wseq]:
                    a_rdy[wseq] = fix
        return propagated

    def _store_buffer_insert(self, seq: int, data_ready: int) -> None:
        buffer = self.store_buffer
        if buffer.full:
            head_seq = self.w_head if self.w_count else seq
            if not buffer.evict_oldest_before(head_seq):
                raise SimulationStuck("store buffer wedged")
        col = self.col
        wc = self.write[seq]
        buffer.insert(StoreBufferEntry(
            seq=seq,
            addr=col.addr[seq],
            size=col.size[seq],
            value=col.value[seq],
            data_ready_cycle=data_ready,
            drain_cycle=wc if wc >= 0 else None,
        ))

    # -- squash --------------------------------------------------------

    def _window_squash_from(self, seq: int) -> int:
        """Flag entries with seq >= *seq* squashed; returns the count."""
        sq = self.sq
        inw = self.inw
        dest_eff = self.col.dest_eff
        last_writer = self.last_writer
        tail = self.w_head + self.w_count - 1
        dirty = None
        for s in range(tail, seq - 1, -1):
            sq[s] = 1
            inw[s] = 0
            d = dest_eff[s]
            if d >= 0 and last_writer.get(d) == s:
                del last_writer[d]
                if dirty is None:
                    dirty = set()
                dirty.add(d)
        count = tail - seq + 1
        self.w_count = seq - self.w_head
        if dirty:
            for s in range(seq - 1, self.w_head - 1, -1):
                d = dest_eff[s]
                if d in dirty:
                    last_writer[d] = s
                    dirty.discard(d)
                    if not dirty:
                        break
        return count

    def _syn_squash(self, from_seq: int) -> None:
        syn = self._syn
        for key in list(syn):
            kept = [rec for rec in syn[key] if rec[0] < from_seq]
            if kept:
                syn[key] = kept
            else:
                del syn[key]

    def _det_squash(self, from_seq: int) -> None:
        det = self._det
        for key in list(det):
            kept = [rec for rec in det[key] if rec[0] < from_seq]
            if kept:
                det[key] = kept
            else:
                del det[key]

    def _sset_squash(self, from_seq: int) -> None:
        lfst = self.store_sets._lfst
        serial = self.serial
        sq = self.sq
        for slot, handle in enumerate(lfst):
            if handle is None:
                continue
            s, _, ref = handle
            if ref != serial[s] or sq[s] or s >= from_seq:
                lfst[slot] = None

    def _squash_for_violation(
        self, ls: int, ss: int, cycle: int
    ) -> None:
        stats = self.stats
        stats.misspeculations += 1
        count = self._window_squash_from(ls)
        stats.squashed_instructions += count
        self.load_live = None
        self.swp_live = None
        self.unexec_stores.squash(ls)
        self.barrier_stores.squash(ls)
        self._syn_squash(ls)
        self._det_squash(ls)
        self.store_buffer.squash_younger(ls)
        if self.addr_sched is not None:
            self.addr_sched.squash(ls)
        if self.store_sets is not None:
            self._sset_squash(ls)
        resume = cycle + self.config.memdep.squash_refill_penalty
        self._fetch_squash(ls, resume)

        pcs = self.col.pc
        if self.policy is SpeculationPolicy.SELECTIVE:
            self.predictor.record_misspeculation(pcs[ls])
        elif self.policy is SpeculationPolicy.STORE_BARRIER:
            self.predictor.record_misspeculation(pcs[ss])
        elif self.policy is SpeculationPolicy.SYNC:
            self.mdpt.record_violation(pcs[ls], pcs[ss])
        elif self.policy is SpeculationPolicy.STORE_SETS:
            self.store_sets.record_violation(pcs[ls], pcs[ss])

    def _selective_reexecute(
        self, ls: int, ss: int, cycle: int
    ) -> None:
        stats = self.stats
        stats.misspeculations += 1
        col = self.col
        lat = self.lat
        opb = col.opb
        is_load_b = col.is_load_b
        is_store_b = col.is_store_b
        comp = self.comp
        write = self.write
        issue = self.issue
        producers = self.producers
        new_complete: Dict[int, int] = {}
        reexecuted = 0

        self.fwd[ls] = ss
        old = comp[ls]
        corrected = max(old if old >= 0 else 0, cycle + 1)
        if corrected != old:
            comp[ls] = corrected
            self._schedule(corrected, _EV_COMPLETE, ls)
        new_complete[ls] = corrected

        a_rdy = self.a_rdy
        d_rdy = self.d_rdy
        sq = self.sq
        for s in range(self.w_head, self.w_head + self.w_count):
            if s <= ls or sq[s]:
                continue
            bump = 0
            prods = producers[s]
            if prods:
                for p in prods:
                    when = new_complete.get(p)
                    if when is not None and when > bump:
                        bump = when
            if not bump or issue[s] < 0:
                if bump:
                    if bump > a_rdy[s]:
                        a_rdy[s] = bump
                    if bump > d_rdy[s]:
                        d_rdy[s] = bump
                continue
            latency = lat[opb[s]]
            if is_load_b[s]:
                latency += 2
            corrected = bump + latency
            old = write[s] if is_store_b[s] else comp[s]
            if old >= 0 and corrected > old:
                reexecuted += 1
                if is_store_b[s]:
                    write[s] = corrected
                    comp[s] = corrected
                    self._schedule(corrected, _EV_WRITE, s)
                else:
                    comp[s] = corrected
                    self._schedule(corrected, _EV_COMPLETE, s)
                new_complete[s] = corrected
        stats.squashed_instructions += reexecuted

    # -- commit --------------------------------------------------------

    def _commit(self) -> None:
        if not self.w_count:
            return
        stats = self.stats
        budget = self._issue_width
        cycle = self.cycle
        col = self.col
        is_load_b = col.is_load_b
        is_store_b = col.is_store_b
        branch_b = col.branch_b
        dest_eff = col.dest_eff
        comp = self.comp
        write = self.write
        last_writer = self.last_writer
        committed = 0
        while budget and self.w_count:
            h = self.w_head
            done = write[h] if is_store_b[h] else comp[h]
            if done < 0 or done > cycle:
                break
            self.w_head = h + 1
            self.w_count -= 1
            self.inw[h] = 0
            d = dest_eff[h]
            if d >= 0 and last_writer.get(d) == h:
                del last_writer[d]
            budget -= 1
            committed += 1
            if is_load_b[h]:
                stats.committed_loads += 1
                if self.spec[h]:
                    stats.speculative_loads += 1
                cls = self.fd_cls[h]
                if cls == 1:
                    stats.false_dependence_loads += 1
                    if self.fd_res[h] >= 0:
                        stats.false_dependence_latency += (
                            self.fd_res[h] - self.fd_start[h]
                        )
                elif cls == 2:
                    stats.true_dependence_loads += 1
            elif is_store_b[h]:
                stats.committed_stores += 1
                self._det.pop(h, None)
                syn = self.sync_syn[h]
                if syn != -1:
                    producers = self._syn.get(syn)
                    if producers:
                        rec = (h, self.serial[h])
                        if rec in producers:
                            producers.remove(rec)
                            if not producers:
                                del self._syn[syn]
                if self.addr_sched is not None:
                    self.addr_sched.remove_store(h)
                if self.store_sets is not None:
                    self._sset_store_retired(h)
            elif branch_b[h]:
                stats.committed_branches += 1
        if committed:
            stats.committed += committed
            self._progress = True

    def _sset_store_retired(self, seq: int) -> None:
        predictor = self.store_sets
        ssid = predictor.ssid_of(self.col.pc[seq])
        if ssid is None:
            return
        slot = predictor._ssid_slot(ssid)
        handle = predictor._lfst[slot]
        if (
            handle is not None
            and handle[0] == seq
            and handle[2] == self.serial[seq]
        ):
            predictor._lfst[slot] = None

    # -- dispatch ------------------------------------------------------

    def _dispatch(self) -> None:
        capacity = self.w_size
        occupancy = self.w_count
        if occupancy >= capacity:
            return
        buffer = self.f_buffer
        maybe_ready = self._maybe_ready
        budget = self._issue_width
        cycle = self.cycle
        is_load_b = self.col.is_load_b
        is_store_b = self.col.is_store_b
        while budget and occupancy < capacity:
            if not buffer or buffer[0][1] > cycle:
                break
            s = buffer.popleft()[0]
            occupancy += 1
            self._dispatch_entry(s, cycle)
            budget -= 1
            self._progress = True
            if is_load_b[s]:
                self._on_load_dispatch(s)
            elif is_store_b[s]:
                self._on_store_dispatch(s)
            maybe_ready(s)

    def _dispatch_entry(self, s: int, cycle: int) -> None:
        ser = self.serial[s] + 1
        self.serial[s] = ser
        self.sq[s] = 0
        self.inw[s] = 1
        self.a_rdy[s] = cycle
        self.d_rdy[s] = cycle
        if ser > 1:
            # Re-dispatch after a squash: restore Entry defaults.
            self.a_pend[s] = 0
            self.d_pend[s] = 0
            self.issue[s] = -1
            self.agen[s] = -1
            self.memc[s] = -1
            self.comp[s] = -1
            self.write[s] = -1
            self.execd[s] = 0
            self.in_rp[s] = 0
            self.in_mp[s] = 0
            self.spec[s] = 0
            self.fwd[s] = -1
            self.waiters[s] = None
            if self.consumers is not None:
                self.consumers[s] = None
            if self.producers is not None:
                self.producers[s] = None
            self.pred_dep[s] = 0
            self.barrier[s] = 0
            self.sync_syn[s] = -1
            self.sync_ws[s] = -1
            self.fd_start[s] = -1
            self.fd_cls[s] = 0
            self.fd_res[s] = -1
        col = self.col
        srcs_off = col.srcs_off
        srcs_flat = col.srcs_flat
        last_writer = self.last_writer
        is_store = col.is_store_b[s]
        lo = srcs_off[s]
        hi = srcs_off[s + 1]
        producers = self.producers
        comp = self.comp
        waiters = self.waiters
        for k in range(lo, hi):
            src = srcs_flat[k]
            if src == REG_ZERO:
                continue
            is_data = bool(is_store) and k == lo + 1
            p = last_writer.get(src)
            if p is None:
                # The rename map never holds squashed producers: commit
                # and squash-repair both maintain that invariant.
                continue
            if producers is not None:
                plist = producers[s]
                if plist is None:
                    producers[s] = [p]
                else:
                    plist.append(p)
            pdone = comp[p]
            if pdone >= 0:
                if is_data:
                    if pdone > self.d_rdy[s]:
                        self.d_rdy[s] = pdone
                elif pdone > self.a_rdy[s]:
                    self.a_rdy[s] = pdone
            else:
                wl = waiters[p]
                if wl is None:
                    waiters[p] = [(s, is_data, ser)]
                else:
                    wl.append((s, is_data, ser))
                if is_data:
                    self.d_pend[s] += 1
                else:
                    self.a_pend[s] += 1
        d = col.dest_eff[s]
        if d >= 0:
            last_writer[d] = s
        if not self.w_count:
            self.w_head = s
        self.w_count += 1

    def _on_load_dispatch(self, s: int) -> None:
        ds = self.col.dep_of[s]
        if ds >= 0:
            det = self._det
            rec = (s, self.serial[s])
            dl = det.get(ds)
            if dl is None:
                det[ds] = [rec]
            else:
                dl.append(rec)
        policy = self.policy
        if policy is SpeculationPolicy.SELECTIVE:
            if self.predictor.predicts_dependence(self.col.pc[s]):
                self.pred_dep[s] = 1
        elif policy is SpeculationPolicy.SYNC:
            prediction = self.mdpt.predict_load(self.col.pc[s])
            if prediction is not None:
                synonym = prediction.synonym
                self.sync_syn[s] = synonym
                best = -1
                best_ref = 0
                serial = self.serial
                sq = self.sq
                for ws, ref in self._syn.get(synonym, ()):
                    if ref != serial[ws] or sq[ws] or ws >= s:
                        continue
                    if ws > best:
                        best = ws
                        best_ref = ref
                if best >= 0:
                    self.sync_ws[s] = best
                    self.sync_ws_ref[s] = best_ref
        elif policy is SpeculationPolicy.STORE_SETS:
            predictor = self.store_sets
            ssid = predictor.ssid_of(self.col.pc[s])
            if ssid is not None:
                handle = predictor._lfst[predictor._ssid_slot(ssid)]
                if handle is not None:
                    ws, _, ref = handle
                    if (
                        ref == self.serial[ws] and not self.sq[ws]
                        and ws < s
                    ):
                        self.sync_ws[s] = ws
                        self.sync_ws_ref[s] = ref

    def _on_store_dispatch(self, s: int) -> None:
        self.unexec_stores.on_dispatch(s)
        if self.addr_sched is not None:
            self.addr_sched.on_store_dispatch(s)
        policy = self.policy
        if policy is SpeculationPolicy.STORE_BARRIER:
            if self.predictor.predicts_dependence(self.col.pc[s]):
                self.barrier[s] = 1
                self.barrier_stores.on_dispatch(s)
        elif policy is SpeculationPolicy.SYNC:
            prediction = self.mdpt.predict_store(self.col.pc[s])
            if prediction is not None:
                synonym = prediction.synonym
                self.sync_syn[s] = synonym
                rec = (s, self.serial[s])
                producers = self._syn.get(synonym)
                if producers is None:
                    self._syn[synonym] = [rec]
                else:
                    producers.append(rec)
        elif policy is SpeculationPolicy.STORE_SETS:
            predictor = self.store_sets
            ssid = predictor.ssid_of(self.col.pc[s])
            if ssid is not None:
                slot = predictor._ssid_slot(ssid)
                previous = predictor._lfst[slot]
                predictor._lfst[slot] = (s, 0, self.serial[s])
                if previous is not None:
                    ws, _, ref = previous
                    if ref == self.serial[ws] and not self.sq[ws]:
                        self.sync_ws[s] = ws
                        self.sync_ws_ref[s] = ref

    # -- readiness -----------------------------------------------------

    def _rp_push(self, s: int) -> None:
        if self.in_rp[s] or self.sq[s]:
            return
        self.in_rp[s] = 1
        heapq.heappush(self.rp, (s, self.serial[s]))

    def _rp_pop(self) -> int:
        rp = self.rp
        serial = self.serial
        in_rp = self.in_rp
        sq = self.sq
        while rp:
            s, ref = heapq.heappop(rp)
            if ref != serial[s]:
                # Stale record of a prior incarnation; the flag belongs
                # to the current one — leave it alone.
                continue
            in_rp[s] = 0
            if not sq[s]:
                return s
        return -1

    def _mp_push(self, items: List, s: int) -> bool:
        """Push *s* onto a mem pool. Returns True if pushed."""
        if self.in_mp[s] or self.sq[s]:
            return False
        self.in_mp[s] = 1
        self._mp_serial += 1
        item = (s, self._mp_serial, self.serial[s])
        if not items or s > items[-1][0]:
            items.append(item)
        else:
            import bisect

            bisect.insort(items, item)
        return True

    def _mp_live(self, which: str) -> List[int]:
        """Live seqs, oldest-first, pruning dead records (MemPool
        ``live_entries`` port)."""
        if which == "load":
            live = self.load_live
            items = self.load_items
        else:
            live = self.swp_live
            items = self.swp_items
        if live is not None:
            return live
        if not items:
            live = []
        else:
            serial = self.serial
            sq = self.sq
            in_mp = self.in_mp
            live = [
                s for s, _, ref in items
                if ref == serial[s] and in_mp[s] and not sq[s]
            ]
            if len(live) != len(items):
                items = [(s, 0, serial[s]) for s in live]
                if which == "load":
                    self.load_items = items
                    self.load_dead = 0
                else:
                    self.swp_items = items
                    self.swp_dead = 0
        if which == "load":
            self.load_live = live
        else:
            self.swp_live = live
        return live

    def _mp_remove(self, which: str, s: int) -> None:
        if self.in_mp[s]:
            self.in_mp[s] = 0
            if which == "load":
                self.load_dead += 1
                self.load_live = None
            else:
                self.swp_dead += 1
                self.swp_live = None

    def _maybe_ready(self, s: int) -> None:
        if self.issue[s] >= 0 or self.in_rp[s]:
            if (
                self.col.is_store_b[s] and self.as_mode
                and self.agen[s] >= 0
                and not self.d_pend[s]
                and not self.in_mp[s]
                and self.write[s] < 0
            ):
                if self._mp_push(self.swp_items, s):
                    self.swp_live = None
                self._progress = True
            return
        if self.col.is_store_b[s] and not self.as_mode:
            if self.a_pend[s] or self.d_pend[s]:
                return
            ready_at = self.a_rdy[s]
            if self.d_rdy[s] > ready_at:
                ready_at = self.d_rdy[s]
        else:
            if self.a_pend[s]:
                return
            ready_at = self.a_rdy[s]
        if ready_at <= self.cycle:
            self._rp_push(s)
        else:
            self._schedule(ready_at, _EV_READY, s)

    # -- issue ---------------------------------------------------------

    def _issue_exec(self) -> None:
        funits = self.funits
        if not self.rp:
            return
        cycle = self.cycle
        as_mode = self.as_mode
        pop = self._rp_pop
        can_issue = funits.can_issue_unit
        take_issue = funits.take_issue_unit
        col = self.col
        is_store_b = col.is_store_b
        is_load_b = col.is_load_b
        fp_b = col.fp_b
        a_pend = self.a_pend
        d_pend = self.d_pend
        a_rdy = self.a_rdy
        d_rdy = self.d_rdy
        deferred: List[int] = []
        progress = False
        scans = self._scan_budget
        issue_width = funits._issue_width
        while funits._issued < issue_width and scans:
            scans -= 1
            s = pop()
            if s < 0:
                break
            nas_store = is_store_b[s] and not as_mode
            if nas_store:
                if a_pend[s] or d_pend[s]:
                    continue
                ready_at = a_rdy[s]
                if d_rdy[s] > ready_at:
                    ready_at = d_rdy[s]
            elif a_pend[s]:
                continue
            else:
                ready_at = a_rdy[s]
            if ready_at > cycle:
                self._schedule(ready_at, _EV_READY, s)
                continue
            uses_fp = fp_b[s]
            if not can_issue(uses_fp):
                deferred.append(s)
                continue
            if nas_store:
                ws = self.sync_ws[s]
                if (
                    ws >= 0
                    and self.sync_ws_ref[s] == self.serial[ws]
                    and not self.sq[ws]
                    and self.issue[ws] < 0
                ):
                    deferred.append(s)
                    continue
                if not funits.can_access_memory():
                    deferred.append(s)
                    continue
                take_issue(uses_fp)
                funits.take_port()
                self._do_issue_store_nas(s)
            elif is_store_b[s]:
                take_issue(uses_fp)
                self._do_issue_store_agen_as(s)
            elif is_load_b[s]:
                take_issue(uses_fp)
                self._do_issue_load_agen(s)
            else:
                take_issue(uses_fp)
                self._do_issue_alu(s)
            progress = True
        if deferred:
            push = self._rp_push
            for s in deferred:
                push(s)
            progress = True
        if progress:
            self._progress = True

    def _do_issue_alu(self, s: int) -> None:
        cycle = self.cycle
        self.issue[s] = cycle
        done = cycle + self.lat[self.col.opb[s]]
        self.comp[s] = done
        self._schedule(done, _EV_COMPLETE, s)

    def _do_issue_load_agen(self, s: int) -> None:
        cycle = self.cycle
        self.issue[s] = cycle
        done = cycle + 1
        self.agen[s] = done
        if self._mp_push(self.load_items, s):
            self.load_live = None
        if self._hint < 0 or done < self._hint:
            self._hint = done

    def _do_issue_store_nas(self, s: int) -> None:
        cycle = self.cycle
        self.issue[s] = cycle
        self.agen[s] = cycle + 1
        wc = cycle + 2
        self.write[s] = wc
        self.comp[s] = wc
        self.unexec_stores.on_execute(s)
        if self.barrier[s]:
            self.barrier_stores.on_execute(s)
        self._store_buffer_insert(s, data_ready=cycle + 1)
        self._schedule(wc, _EV_WRITE, s)

    def _do_issue_store_agen_as(self, s: int) -> None:
        cycle = self.cycle
        self.issue[s] = cycle
        agen = cycle + 1
        self.agen[s] = agen
        col = self.col
        visible = self.addr_sched.post_address(
            s, col.addr[s], col.size[s], agen
        )
        self._schedule(visible, _EV_POST, s)
        if not self.d_pend[s]:
            if self._mp_push(self.swp_items, s):
                self.swp_live = None

    # -- memory stage --------------------------------------------------

    def _issue_memory(self) -> None:
        loads = self._mp_live("load")
        if self.as_mode:
            writes = self._mp_live("swp")
            if writes:
                if loads:
                    candidates = sorted(loads + writes)
                else:
                    candidates = writes
            else:
                candidates = loads
        else:
            candidates = loads
        if not candidates:
            return
        funits = self.funits
        cycle = self.cycle
        kind = self._gate_kind
        hint = self._hint
        progress = False
        ports_left = funits.ports_left
        if kind == _GATE_ALL_STORES or kind == _GATE_PREDICTED:
            blocked_from = self.unexec_stores.oldest()
        elif kind == _GATE_BARRIER:
            blocked_from = self.barrier_stores.oldest()
        else:
            blocked_from = None
        col = self.col
        is_store_b = col.is_store_b
        agen = self.agen
        note_fd_wait = self._note_fd_wait
        fd_start = self.fd_start
        for s in candidates:
            if not ports_left:
                progress = True
                break
            if is_store_b[s]:
                ready = self.d_rdy[s]
                a = agen[s]
                if a > ready:
                    ready = a
                if ready > cycle:
                    if hint < 0 or ready < hint:
                        hint = ready
                    continue
                ports_left -= 1
                funits.take_port()
                self._mp_remove("swp", s)
                wc = cycle + 1
                self.write[s] = wc
                self.comp[s] = wc
                self.unexec_stores.on_execute(s)
                if self.barrier[s]:
                    self.barrier_stores.on_execute(s)
                self._store_buffer_insert(s, data_ready=cycle + 1)
                self._schedule(wc, _EV_WRITE, s)
                progress = True
                continue
            # -- loads: the policy gate, inlined -----------------------
            a = agen[s]
            if a < 0 or a > cycle:
                if a >= 0 and (hint < 0 or a < hint):
                    hint = a
                continue
            if kind == _GATE_OPEN:
                pass
            elif kind == _GATE_ALL_STORES:
                if blocked_from is not None and blocked_from < s:
                    if fd_start[s] < 0:
                        note_fd_wait(s)
                    continue
            elif kind == _GATE_PREDICTED:
                if (
                    self.pred_dep[s]
                    and blocked_from is not None
                    and blocked_from < s
                ):
                    if fd_start[s] < 0:
                        note_fd_wait(s)
                    continue
            elif kind == _GATE_BARRIER:
                if blocked_from is not None and blocked_from < s:
                    if fd_start[s] < 0:
                        note_fd_wait(s)
                    continue
            elif kind == _GATE_SYNC:
                ws = self.sync_ws[s]
                if (
                    ws >= 0
                    and self.sync_ws_ref[s] == self.serial[ws]
                    and not self.sq[ws]
                    and not self.execd[ws]
                ):
                    issued = self.issue[ws]
                    if issued < 0:
                        continue
                    if cycle < issued + 1:
                        if hint < 0 or issued + 1 < hint:
                            hint = issued + 1
                        continue
            elif kind == _GATE_ORACLE:
                ds = col.dep_of[s]
                if ds >= 0 and self.inw[ds] and not self.execd[ds]:
                    issued = self.issue[ds]
                    if issued < 0:
                        if fd_start[s] < 0:
                            note_fd_wait(s)
                        continue
                    if cycle < issued + 1:
                        if hint < 0 or issued + 1 < hint:
                            hint = issued + 1
                        continue
            else:  # _GATE_AS
                open_, gate_hint = self._load_gate_as(s)
                if not open_:
                    if gate_hint is not None and (
                        hint < 0 or gate_hint < hint
                    ):
                        hint = gate_hint
                    continue
            if fd_start[s] >= 0 and self.fd_res[s] < 0:
                self.fd_res[s] = cycle
            ports_left -= 1
            funits.take_port()
            self._mp_remove("load", s)
            self._access_memory(s)
            progress = True
        self._hint = hint
        if progress:
            self._progress = True

    def _access_memory(self, s: int) -> None:
        cycle = self.cycle
        col = self.col
        self.memc[s] = cycle
        if self.unexec_stores.any_older_than(s):
            self.spec[s] = 1
        addr = col.addr[s]
        buffered, full = self.store_buffer.search(
            s, addr, col.size[s]
        )
        if buffered is not None and full:
            complete = max(cycle + 1, buffered.data_ready_cycle + 1)
            self.fwd[s] = buffered.seq
        elif buffered is not None:
            start = max(cycle, buffered.data_ready_cycle)
            complete = self.hierarchy.load(addr, start)
        else:
            complete = self.hierarchy.load(addr, cycle)
        self.comp[s] = complete
        self._schedule(complete, _EV_COMPLETE, s)

    def _load_gate_as(self, s: int):
        cycle = self.cycle
        sched = self.addr_sched
        search_from = self.agen[s] + sched.latency
        if cycle < search_from:
            return False, search_from
        if self.policy is SpeculationPolicy.NO:
            if not sched.all_older_posted(s, cycle):
                self._note_fd_wait(s)
                return False, None
        col = self.col
        m = sched.youngest_older_match(
            s, col.addr[s], col.size[s], cycle
        )
        if m >= 0:
            wc = self.write[m]
            if wc < 0:
                return False, None
            if cycle < wc:
                return False, wc
        return True, None

    def _note_fd_wait(self, s: int) -> None:
        if self.fd_start[s] >= 0:
            return
        self.fd_start[s] = self.cycle
        ds = self.col.dep_of[s]
        if ds >= 0 and self.inw[ds] and not self.execd[ds]:
            self.fd_cls[s] = 2
        else:
            self.fd_cls[s] = 1

    # -- fetch ---------------------------------------------------------

    def _fetch_tick(self, cycle: int) -> int:
        if cycle < self.f_stalled or self.f_wait >= 0:
            return 0
        buffer = self.f_buffer
        buffer_cap = self.f_cap
        if len(buffer) >= buffer_cap:
            return 0
        cfg = self.config
        fetched = 0
        blocks_used = 0
        current_block = None
        width = cfg.fetch.width
        max_blocks = cfg.fetch.max_blocks_per_cycle
        block_shift = cfg.icache.block_bytes.bit_length() - 1
        recent_blocks = self.f_recent
        recent_cap = 4 * max_blocks
        hit_by = cycle + cfg.icache.hit_latency
        dispatch_at = cycle + cfg.fetch.front_end_depth
        col = self.col
        pcs = col.pc
        branch_b = col.branch_b
        opb = col.opb
        ops = col.ops
        taken = col.taken
        target = col.target
        predict = self.branch_unit.predict_and_train_raw
        fetch_block = self.hierarchy.fetch
        pos = self.f_pos
        stop = self.f_stop
        while (
            fetched < width
            and len(buffer) < buffer_cap
            and pos < stop
        ):
            pc = pcs[pos]
            block = pc >> block_shift
            if block != current_block:
                if blocks_used >= max_blocks:
                    break
                blocks_used += 1
                current_block = block
                available = recent_blocks.get(block)
                if available is None:
                    available = fetch_block(pc, cycle)
                    recent_blocks[block] = available
                    if len(recent_blocks) > recent_cap:
                        oldest = next(iter(recent_blocks))
                        del recent_blocks[oldest]
                if available > hit_by:
                    self.f_stalled = available
                    break
            s = pos
            pos += 1
            buffer.append((s, dispatch_at))
            fetched += 1
            if branch_b[s]:
                correct = predict(
                    pc, ops[opb[s]], taken[s], target[s]
                )[2]
                if not correct:
                    self.f_wait = s
                    break
                if taken[s]:
                    current_block = None
        self.f_pos = pos
        return fetched

    def _fetch_squash(self, seq: int, resume_cycle: int) -> None:
        buffer = self.f_buffer
        while buffer and buffer[-1][0] >= seq:
            buffer.pop()
        if self.f_pos > seq:
            self.f_pos = seq
        if self.f_wait >= 0 and self.f_wait >= seq:
            self.f_wait = -1
        if resume_cycle > self.f_stalled:
            self.f_stalled = resume_cycle

    def _resume_after_branch(self, seq: int, cycle: int) -> None:
        if self.f_wait == seq:
            self.f_wait = -1
            resume = cycle + self.config.branch_redirect_penalty
            if resume > self.f_stalled:
                self.f_stalled = resume

    # -- periodic table flushes ----------------------------------------

    def _maybe_flush_tables(self) -> None:
        if self.cycle < self._next_flush:
            return
        interval = self.config.memdep.flush_interval
        while self._next_flush <= self.cycle:
            self._next_flush += interval
        if self.predictor is not None:
            self.predictor.flush()
        if self.mdpt is not None:
            self.mdpt.flush()
        if self.store_sets is not None:
            self.store_sets.flush()

    # -- cache stat snapshots ------------------------------------------

    def _snapshot_caches(self, stats: SimResult) -> None:
        stats.dcache_accesses = self.hierarchy.dcache.accesses
        stats.dcache_misses = self.hierarchy.dcache.misses
        stats.icache_accesses = self.hierarchy.icache.accesses
        stats.icache_misses = self.hierarchy.icache.misses
        stats.l2_accesses = self.hierarchy.l2.accesses
        stats.l2_misses = self.hierarchy.l2.misses




