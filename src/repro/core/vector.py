"""Structure-of-arrays simulator core (the ``vector`` backend).

A line-by-line port of :class:`repro.core.processor.Processor` onto
packed per-instruction columns consumed straight from
:class:`~repro.trace.compiled.CompiledTrace`: no ``DynInst`` or
``Entry`` objects exist on the fast path. Every per-entry attribute of
the reference core becomes one slot of a preallocated array indexed by
``seq``, and object identity (the reference's ``entry.squashed`` /
``is entry`` tests) becomes an *incarnation serial*: ``serial[seq]``
increments each time ``seq`` is (re-)dispatched after a squash, and any
record that captured ``(seq, ref)`` is stale exactly when
``ref != serial[seq]``.

The port must stay bit-identical to the reference — the golden-parity
suite and CI's ``backend-parity`` job compare every :class:`SimResult`
field. Anything this core cannot express (observability, timelines,
telemetry, split windows) is routed to the reference backend by
:func:`repro.core.backend.vector_limitation`; this class rejects those
arguments outright.
"""

from __future__ import annotations

import bisect
import gc
import heapq
import os
from collections import deque
from typing import Dict, List, Optional

from repro.branch.unit import BranchUnit
from repro.config.processor import (
    ProcessorConfig,
    SchedulingModel,
    SpeculationPolicy,
)
from repro.core.lsq import UnexecutedStoreTracker
from repro.core.processor import (
    SimulationStuck,
    _EV_COMPLETE,
    _EV_POST,
    _EV_READY,
    _EV_WRITE,
    _GATE_ALL_STORES,
    _GATE_AS,
    _GATE_BARRIER,
    _GATE_OPEN,
    _GATE_ORACLE,
    _GATE_PREDICTED,
    _GATE_SYNC,
)
from repro.core.result import SimResult
from repro.isa.opcodes import OpClass
from repro.isa.registers import REG_ZERO
from repro.memdep.store_sets import StoreSetPredictor
from repro.memdep.sync import MDPT
from repro.memdep.tables import TwoBitPredictorTable
from repro.memory.hierarchy import MemoryHierarchy
from repro.memory.store_buffer import StoreBuffer, StoreBufferEntry
from repro.trace.compiled import CompiledTrace, _mask_bit, _op_table
from repro.trace.dependences import DependenceInfo
from repro.trace.sampling import SamplingPlan, make_sampling_plan

try:  # optional: vectorized column decode (pure-Python fallback below)
    import numpy as _np
except ImportError:  # pragma: no cover - numpy-free environments
    _np = None

_TAKEN_MAP = (None, False, True)


def _null_indices(mask: bytes, n: int) -> List[int]:
    """Row indices set in a one-bit-per-row null bitmap (LSB-first)."""
    if _np is not None:
        bits = _np.unpackbits(
            _np.frombuffer(mask, dtype=_np.uint8), bitorder="little"
        )[:n]
        return _np.nonzero(bits)[0].tolist()
    out: List[int] = []
    for bi, byte in enumerate(mask):
        if not byte:
            continue
        base = bi << 3
        for bit in range(8):
            if byte & (1 << bit):
                i = base + bit
                if i < n:
                    out.append(i)
    return out


def _class_table(ops, predicate) -> bytes:
    """256-byte translate table: op byte -> 1 where predicate holds."""
    table = bytearray(256)
    for i, op in enumerate(ops):
        if predicate(op):
            table[i] = 1
    return bytes(table)


class _Columns:
    """Static per-seq columns shared by every segment of one run."""

    __slots__ = (
        "n", "name", "suite", "ops", "opb", "pc", "size", "addr",
        "value", "target", "taken", "dest_eff", "srcs_off", "srcs_flat",
        "is_load_b", "is_store_b", "branch_b", "mem_b", "fp_b",
        "dep_of", "stale_of", "prod_flat",
    )


def _attach_producers(col: _Columns) -> None:
    """Static rename: per source operand, the youngest older writer.

    ``prod_flat[k]`` (parallel to ``srcs_flat``) is the youngest seq
    before the consumer that writes the operand's register, or -1.
    Because the window is a contiguous seq range and dispatch is
    in-order, the recorded producer is the *window's* producer exactly
    when it is still live — ``prod_flat[k] >= w_head`` — which replaces
    the reference core's dynamically maintained rename map.
    """
    srcs_off = col.srcs_off
    srcs_flat = col.srcs_flat
    dest_eff = col.dest_eff
    prod = [-1] * len(srcs_flat)
    rename: Dict[int, int] = {}
    get = rename.get
    k = 0
    for s in range(col.n):
        hi = srcs_off[s + 1]
        while k < hi:
            src = srcs_flat[k]
            if src != REG_ZERO:
                prod[k] = get(src, -1)
            k += 1
        d = dest_eff[s]
        if d >= 0:
            rename[d] = s
    col.prod_flat = prod


def _columns_from_compiled(compiled: CompiledTrace) -> _Columns:
    n = compiled.length
    col = _Columns()
    col.n = n
    col.name = compiled.name
    col.suite = compiled.suite
    ops = _op_table(compiled)
    col.ops = ops
    col.opb = bytes(compiled.op)
    col.pc = compiled.pc.tolist()
    col.size = compiled.size.tolist()
    col.addr = compiled.addr.tolist()
    value = compiled.value.tolist()
    target = compiled.target.tolist()
    # Null bitmaps decode whole-column (np.unpackbits + nonzero when
    # numpy is present, a sparse per-byte walk otherwise).
    for mask, out in (
        (compiled.value_null, value),
        (compiled.target_null, target),
    ):
        for i in _null_indices(mask, n):
            out[i] = None
    # dest: None packs as 0 and REG_ZERO == 0; both mean "no register
    # result" to dispatch/commit/squash, so fold them to -1. (addr nulls
    # stay 0 — only memory ops read the addr column.)
    if _np is not None:
        darr = _np.frombuffer(compiled.dest, dtype=_np.int64)
        col.dest_eff = _np.where(darr == 0, -1, darr).tolist()
        col.taken = _np.asarray(_TAKEN_MAP, dtype=object)[
            _np.frombuffer(compiled.taken, dtype=_np.uint8)
        ].tolist()
    else:
        col.dest_eff = [d if d else -1 for d in compiled.dest]
        col.taken = [_TAKEN_MAP[b] for b in compiled.taken]
    col.srcs_off = compiled.srcs_off
    col.srcs_flat = compiled.srcs_flat.tolist()
    for column, table in compiled.overflow.items():
        if column == "pc":
            for i, big in table.items():
                col.pc[int(i)] = big
        elif column == "addr":
            for i, big in table.items():
                col.addr[int(i)] = big
        elif column == "size":
            for i, big in table.items():
                col.size[int(i)] = big
        elif column == "value":
            for i, big in table.items():
                value[int(i)] = big
        elif column == "target":
            for i, big in table.items():
                target[int(i)] = big
        elif column == "dest":
            for i, big in table.items():
                col.dest_eff[int(i)] = big
        elif column == "srcs_flat":
            for i, big in table.items():
                col.srcs_flat[int(i)] = big
    col.value = value
    col.target = target
    col.is_load_b = col.opb.translate(
        _class_table(ops, lambda op: op is OpClass.LOAD)
    )
    col.is_store_b = col.opb.translate(
        _class_table(ops, lambda op: op is OpClass.STORE)
    )
    col.branch_b = col.opb.translate(
        _class_table(ops, lambda op: op.branch_class)
    )
    col.mem_b = col.opb.translate(
        _class_table(ops, lambda op: op.mem_class)
    )
    col.fp_b = col.opb.translate(
        _class_table(ops, lambda op: op.fp_class)
    )
    _attach_producers(col)
    return col


def _columns_from_trace(trace) -> _Columns:
    """Fallback: build the same columns from a materialized Trace."""
    instructions = trace.instructions
    n = len(instructions)
    col = _Columns()
    col.n = n
    col.name = trace.name
    col.suite = getattr(trace, "suite", None)
    ops = tuple(OpClass)
    op_index = {op: i for i, op in enumerate(ops)}
    col.ops = ops
    opb = bytearray(n)
    col.pc = pc = [0] * n
    col.size = size = [0] * n
    col.addr = addr = [0] * n
    col.value = value = [None] * n
    col.target = target = [None] * n
    col.taken = taken = [None] * n
    col.dest_eff = dest_eff = [-1] * n
    srcs_off = [0] * (n + 1)
    srcs_flat: List[int] = []
    for i, inst in enumerate(instructions):
        opb[i] = op_index[inst.op]
        pc[i] = inst.pc
        size[i] = inst.size
        if inst.addr is not None:
            addr[i] = inst.addr
        value[i] = inst.value
        target[i] = inst.target
        taken[i] = inst.taken
        d = inst.dest
        if d is not None and d != REG_ZERO:
            dest_eff[i] = d
        srcs_flat.extend(inst.srcs)
        srcs_off[i + 1] = len(srcs_flat)
    col.opb = bytes(opb)
    col.srcs_off = srcs_off
    col.srcs_flat = srcs_flat
    col.is_load_b = col.opb.translate(
        _class_table(ops, lambda op: op is OpClass.LOAD)
    )
    col.is_store_b = col.opb.translate(
        _class_table(ops, lambda op: op is OpClass.STORE)
    )
    col.branch_b = col.opb.translate(
        _class_table(ops, lambda op: op.branch_class)
    )
    col.mem_b = col.opb.translate(
        _class_table(ops, lambda op: op.mem_class)
    )
    col.fp_b = col.opb.translate(
        _class_table(ops, lambda op: op.fp_class)
    )
    _attach_producers(col)
    return col


def _attach_dependences(
    col: _Columns,
    source,
    dep_info: Optional[Dict[int, DependenceInfo]],
) -> None:
    """Fill ``dep_of``/``stale_of`` (static: identical every dispatch)."""
    n = col.n
    dep_of = [-1] * n
    # Entry.stale_equal defaults to True; loads without a DependenceInfo
    # record keep that default in the reference core.
    stale_of = bytearray(b"\x01" * n)
    if dep_info is not None:
        for seq, info in dep_info.items():
            dep_of[seq] = info.store_seq
            if not info.stale_equal:
                stale_of[seq] = 0
    elif isinstance(source, CompiledTrace) and source.has_dependences:
        stale = source.dep_stale
        for i, (load, store) in enumerate(
            zip(source.dep_load, source.dep_store)
        ):
            dep_of[load] = store
            if not _mask_bit(stale, i):
                stale_of[load] = 0
    else:
        if isinstance(source, CompiledTrace):
            info = source.compute_dependence_info()
        else:
            from repro.trace.dependences import compute_dependence_info

            info = compute_dependence_info(source)
        for seq, rec in info.items():
            dep_of[seq] = rec.store_seq
            if not rec.stale_equal:
                stale_of[seq] = 0
    col.dep_of = dep_of
    col.stale_of = stale_of


class _VAddrSched:
    """Seq-keyed port of :class:`repro.memdep.addr_scheduler
    .AddressScheduler` (records are always current incarnations:
    squash truncates by seq before any re-dispatch)."""

    __slots__ = (
        "latency", "_unposted", "_seqs", "_addrs", "_sizes",
        "_visibles", "_blocks", "_max_visible", "posts", "searches",
    )

    def __init__(self, latency: int) -> None:
        self.latency = latency
        self._unposted: List[int] = []
        self._seqs: List[int] = []
        self._addrs: List[int] = []
        self._sizes: List[int] = []
        self._visibles: List[int] = []
        self._blocks: dict = {}
        self._max_visible = -1
        self.posts = 0
        self.searches = 0

    def on_store_dispatch(self, seq: int) -> None:
        self._unposted.append(seq)

    def post_address(
        self, seq: int, addr: int, size: int, cycle: int
    ) -> int:
        unposted = self._unposted
        lo, hi = 0, len(unposted)
        while lo < hi:
            mid = (lo + hi) // 2
            if unposted[mid] < seq:
                lo = mid + 1
            else:
                hi = mid
        if lo < len(unposted) and unposted[lo] == seq:
            unposted.pop(lo)
        visible = cycle + self.latency
        seqs = self._seqs
        lo, hi = 0, len(seqs)
        while lo < hi:
            mid = (lo + hi) // 2
            if seqs[mid] < seq:
                lo = mid + 1
            else:
                hi = mid
        seqs.insert(lo, seq)
        self._addrs.insert(lo, addr)
        self._sizes.insert(lo, size)
        self._visibles.insert(lo, visible)
        blocks = self._blocks
        for block in range(addr >> 3, ((addr + size - 1) >> 3) + 1):
            blocks[block] = blocks.get(block, 0) + 1
        if visible > self._max_visible:
            self._max_visible = visible
        self.posts += 1
        return visible

    def _uncover(self, index: int) -> None:
        addr = self._addrs[index]
        size = self._sizes[index]
        blocks = self._blocks
        for block in range(addr >> 3, ((addr + size - 1) >> 3) + 1):
            count = blocks[block] - 1
            if count:
                blocks[block] = count
            else:
                del blocks[block]

    def remove_store(self, seq: int) -> None:
        import bisect

        seqs = self._seqs
        index = bisect.bisect_left(seqs, seq)
        if index < len(seqs) and seqs[index] == seq:
            self._uncover(index)
            del seqs[index]
            del self._addrs[index]
            del self._sizes[index]
            del self._visibles[index]

    def squash(self, from_seq: int) -> None:
        import bisect

        cut = bisect.bisect_left(self._unposted, from_seq)
        del self._unposted[cut:]
        cut = bisect.bisect_left(self._seqs, from_seq)
        for index in range(cut, len(self._seqs)):
            self._uncover(index)
        del self._seqs[cut:]
        del self._addrs[cut:]
        del self._sizes[cut:]
        del self._visibles[cut:]

    def all_older_posted(self, seq: int, cycle: int) -> bool:
        if self._unposted and self._unposted[0] < seq:
            return False
        if self._max_visible <= cycle:
            return True
        visibles = self._visibles
        for i, rseq in enumerate(self._seqs):
            if rseq >= seq:
                break
            if visibles[i] > cycle:
                return False
        return True

    def youngest_older_match(
        self, seq: int, addr: int, size: int, cycle: int
    ) -> int:
        """Seq of the youngest older visible overlapping store, or -1."""
        import bisect

        self.searches += 1
        blocks = self._blocks
        end = addr + size
        for block in range(addr >> 3, ((end - 1) >> 3) + 1):
            if block in blocks:
                break
        else:
            return -1
        addrs = self._addrs
        sizes = self._sizes
        visibles = self._visibles
        for i in range(bisect.bisect_left(self._seqs, seq) - 1, -1, -1):
            if visibles[i] > cycle:
                continue
            raddr = addrs[i]
            if raddr < end and addr < raddr + sizes[i]:
                return self._seqs[i]
        return -1


class VectorProcessor:
    """One simulated machine bound to one (compiled) trace.

    Accepts a :class:`CompiledTrace` (fast path) or a materialized
    :class:`~repro.trace.events.Trace` (columns are rebuilt from the
    objects). ``run(plan)`` returns the same bit-identical
    :class:`SimResult` as the reference :class:`Processor`.
    """

    def __init__(
        self,
        config: ProcessorConfig,
        trace,
        dep_info: Optional[Dict[int, DependenceInfo]] = None,
        *,
        elide: Optional[bool] = None,
        record_elisions: bool = False,
    ) -> None:
        if config.split.enabled:
            raise ValueError(
                "split-window configs require the reference backend"
            )
        if config.observe:
            raise ValueError(
                "observability requires the reference backend"
            )
        self.config = config
        if isinstance(trace, CompiledTrace):
            col = _columns_from_compiled(trace)
        else:
            col = _columns_from_trace(trace)
        _attach_dependences(col, trace, dep_info)
        self.col = col
        self.hierarchy = MemoryHierarchy(config)
        self.branch_unit = BranchUnit(config.branch)

        memdep = config.memdep
        self.as_mode = memdep.scheduling is SchedulingModel.AS
        self.policy = memdep.policy
        self.predictor: Optional[TwoBitPredictorTable] = None
        self.mdpt: Optional[MDPT] = None
        if self.policy in (
            SpeculationPolicy.SELECTIVE, SpeculationPolicy.STORE_BARRIER
        ):
            self.predictor = TwoBitPredictorTable(
                entries=memdep.predictor_entries,
                assoc=memdep.predictor_assoc,
                threshold=memdep.confidence_threshold,
            )
        elif self.policy is SpeculationPolicy.SYNC:
            self.mdpt = MDPT(
                entries=memdep.predictor_entries,
                assoc=memdep.predictor_assoc,
            )
        self.store_sets = None
        if self.policy is SpeculationPolicy.STORE_SETS:
            self.store_sets = StoreSetPredictor(
                ssit_entries=memdep.predictor_entries,
                lfst_entries=memdep.lfst_entries,
            )

        if self.as_mode:
            self._gate_kind = _GATE_AS
        elif self.policy is SpeculationPolicy.NAIVE:
            self._gate_kind = _GATE_OPEN
        elif self.policy is SpeculationPolicy.NO:
            self._gate_kind = _GATE_ALL_STORES
        elif self.policy is SpeculationPolicy.SELECTIVE:
            self._gate_kind = _GATE_PREDICTED
        elif self.policy is SpeculationPolicy.STORE_BARRIER:
            self._gate_kind = _GATE_BARRIER
        elif self.policy in (
            SpeculationPolicy.SYNC, SpeculationPolicy.STORE_SETS
        ):
            self._gate_kind = _GATE_SYNC
        elif self.policy is SpeculationPolicy.ORACLE:
            self._gate_kind = _GATE_ORACLE
        else:
            raise AssertionError(f"unhandled policy {self.policy}")

        self._selective = memdep.recovery == "selective"
        # Latency by op *byte* (latency tables are config-bound, so this
        # is per-processor, not per-column-set).
        self.lat = [
            config.latencies.latency(op) for op in col.ops
        ]
        self._issue_width = config.window.issue_width
        self._fu_copies = config.window.fu_copies
        self._memory_ports = config.window.memory_ports
        self._scan_budget = config.window.issue_width * 3
        fetch_cfg = config.fetch
        self._f_width = fetch_cfg.width
        self._f_max_blocks = fetch_cfg.max_blocks_per_cycle
        self._f_depth = fetch_cfg.front_end_depth
        self._f_block_shift = config.icache.block_bytes.bit_length() - 1
        self._f_hit_latency = config.icache.hit_latency

        # Event-horizon elision: when a cycle provably schedules nothing,
        # the clock jumps straight to the next possible event instead of
        # walking one cycle at a time. The jump target is the same value
        # the reference core's ``_advance_clock`` computes, so the
        # simulated trajectory (and every counter) is identical either
        # way; ``REPRO_VECTOR_ELIDE=0`` forces the single-step walk so CI
        # can exercise both paths.
        if elide is None:
            from repro.core.backend import ELIDE_ENV

            elide = os.environ.get(ELIDE_ENV, "1") != "0"
        self._elide = bool(elide)
        self._record_elisions = bool(record_elisions)
        self.skipped_cycles = 0
        self.elided_ranges: List = []

        n = col.n
        # Per-seq dynamic state (reference Entry fields). Allocated once
        # for the whole trace; a dispatch resets the slots it uses.
        self.serial = [0] * n
        self.sq = bytearray(n)        # squashed (current incarnation)
        self.a_pend = [0] * n
        self.d_pend = [0] * n
        self.a_rdy = [0] * n
        self.d_rdy = [0] * n
        self.rp_ref = [0] * n         # incarnation captured at rp push
        self.issue = [-1] * n         # issue_cycle
        self.agen = [-1] * n          # agen_done
        self.memc = [-1] * n          # mem_issue_cycle
        self.comp = [-1] * n          # complete_cycle
        self.write = [-1] * n         # write_cycle
        self.execd = bytearray(n)     # executed
        self.in_rp = bytearray(n)     # in_ready_pool
        self.in_mp = bytearray(n)     # in_mem_pool
        self.spec = bytearray(n)      # speculative
        self.fwd = [-1] * n           # forwarded_from
        self.waiters = [None] * n     # [(waiter_seq, is_data, ref)]
        self.consumers = [None] * n if self.as_mode else None
        self.pred_dep = bytearray(n)
        self.barrier = bytearray(n)
        self.sync_syn = [-1] * n
        self.sync_ws = [-1] * n       # sync_wait_store seq
        self.sync_ws_ref = [0] * n    # ... captured incarnation
        self.fd_start = [-1] * n      # fd_wait_start
        self.fd_cls = bytearray(n)    # 0=None 1="false" 2="true"
        self.fd_res = [-1] * n        # fd_resolved_cycle

        self.cycle = 0
        self._next_flush = memdep.flush_interval

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def run(self, plan: Optional[SamplingPlan] = None) -> SimResult:
        if plan is None:
            plan = make_sampling_plan(self.col.n)
        total = SimResult(
            config_label=self.config.label,
            benchmark=self.col.name,
            suite=self.col.suite,
        )
        was_enabled = gc.isenabled()
        gc.disable()
        try:
            for segment in plan.segments:
                if segment.timing:
                    total.merge(
                        self._run_segment(segment.start, segment.stop)
                    )
                else:
                    self._warm_segment(segment.start, segment.stop)
        finally:
            if was_enabled:
                gc.enable()
        self._snapshot_caches(total)
        # ``extra`` is excluded from golden fixtures and result-store
        # keys, so elision telemetry never perturbs parity.
        total.extra["skipped_cycles"] = self.skipped_cycles
        total.extra["elide"] = 1 if self._elide else 0
        if self._record_elisions:
            total.extra["elided_ranges"] = list(self.elided_ranges)
        return total

    # ------------------------------------------------------------------
    # functional warm-up (sampling)
    # ------------------------------------------------------------------

    def _warm_segment(self, start: int, stop: int) -> None:
        col = self.col
        hierarchy = self.hierarchy
        icache_touch = hierarchy.icache.touch
        dcache_touch = hierarchy.dcache.touch
        l2_touch = hierarchy.l2.touch
        predict = self.branch_unit.predict_and_train_raw
        pcs = col.pc
        addrs = col.addr
        opb = col.opb
        ops = col.ops
        branch_b = col.branch_b
        mem_b = col.mem_b
        taken = col.taken
        target = col.target
        block_shift = self.config.icache.block_bytes.bit_length() - 1
        last_block = -1
        for seq in range(start, stop):
            pc = pcs[seq]
            block = pc >> block_shift
            if block != last_block:
                icache_touch(pc)
                l2_touch(pc)
                last_block = block
            if branch_b[seq]:
                predict(pc, ops[opb[seq]], taken[seq], target[seq])
            elif mem_b[seq]:
                addr = addrs[seq]
                dcache_touch(addr)
                l2_touch(addr)
        self.cycle += max(1, (stop - start) // 2)

    # ------------------------------------------------------------------
    # timing simulation
    # ------------------------------------------------------------------

    def _run_segment(self, start: int, stop: int) -> SimResult:
        cfg = self.config
        col = self.col
        if not 0 <= start <= stop <= col.n:
            # Same contract (and message) as the reference TraceCursor.
            raise ValueError("cursor range out of bounds")
        stats = SimResult(
            config_label=cfg.label,
            benchmark=col.name,
            suite=col.suite,
        )
        self.stats = stats
        # window = contiguous seq range [w_head, w_head + w_count).
        # ``w_head`` starts at the segment base so the static-rename
        # liveness test (``prod_flat[k] >= w_head``) rejects producers
        # from earlier segments before the first dispatch.
        self.w_head = start
        self.w_count = 0
        self.w_size = cfg.window.size
        # fetch state
        self.f_pos = start
        self.f_stop = stop
        self.f_buffer = deque()       # (seq, dispatch_at)
        self.f_stalled = self.cycle
        self.f_wait = -1              # waiting_on_branch seq
        self.f_recent: dict = {}
        fetch_cfg = cfg.fetch
        self.f_cap = fetch_cfg.width * fetch_cfg.front_end_depth
        # Functional-unit accounting (FunctionalUnits inlined: four
        # counters reset at the top of every cycle).
        self.fu_issued = 0
        self.fu_int = 0
        self.fu_fp = 0
        self.fu_ports = 0
        self.rp: List = []            # ready pool: (seq, ref) heap
        self.load_items: List = []    # mem pool: (seq, push_serial, ref)
        self.load_dead = 0
        self.load_live: Optional[List[int]] = None
        self.swp_items: List = []
        self.swp_dead = 0
        self.swp_live: Optional[List[int]] = None
        self._mp_serial = 0
        self.store_buffer = StoreBuffer(cfg.window.store_buffer_size)
        self.unexec_stores = UnexecutedStoreTracker()
        self.barrier_stores = UnexecutedStoreTracker()
        self._syn: Dict[int, List] = {}   # synonym -> [(seq, ref)]
        self._det: Dict[int, List] = {}   # store_seq -> [(load, ref)]
        self.addr_sched = (
            _VAddrSched(cfg.memdep.addr_scheduler_latency)
            if self.as_mode else None
        )
        self._events: List = []
        self._event_serial = 0
        self._hint = -1
        self._progress = False
        # Memoized memory scan: ``mem_dirty`` means state relevant to the
        # memory-issue gates may have changed since the last no-progress
        # scan; ``mem_wake`` is that scan's min unblock time (-1: none).
        self.mem_dirty = True
        self.mem_wake = -1

        start_cycle = self.cycle
        branch_unit = self.branch_unit
        branch_stats_base = (
            branch_unit.predictions, branch_unit.mispredictions,
        )

        events = self._events
        rp = self.rp
        issue_memory = self._issue_memory
        fetch_tick = self._fetch_tick
        maybe_flush = self._maybe_flush_tables
        on_complete = self._on_complete
        on_store_write = self._on_store_write
        on_load_dispatch = self._on_load_dispatch
        on_store_dispatch = self._on_store_dispatch
        do_store_nas = self._do_issue_store_nas
        do_store_as = self._do_issue_store_agen_as
        reset_entry = self._reset_entry
        heappush = heapq.heappush
        heappop = heapq.heappop
        insort = bisect.insort
        buffer = self.f_buffer
        write = self.write
        comp = self.comp
        serial = self.serial
        sq = self.sq
        in_rp = self.in_rp
        rp_ref = self.rp_ref
        a_pend = self.a_pend
        d_pend = self.d_pend
        a_rdy = self.a_rdy
        d_rdy = self.d_rdy
        spec = self.spec
        fd_cls = self.fd_cls
        fd_res = self.fd_res
        fd_start = self.fd_start
        sync_syn = self.sync_syn
        sync_ws = self.sync_ws
        sync_ws_ref = self.sync_ws_ref
        issue = self.issue
        agen = self.agen
        in_mp = self.in_mp
        lat = self.lat
        waiters = self.waiters
        addr_sched = self.addr_sched
        store_sets = self.store_sets
        det = self._det
        is_store_b = col.is_store_b
        is_load_b = col.is_load_b
        branch_b = col.branch_b
        fp_b = col.fp_b
        opb = col.opb
        srcs_off = col.srcs_off
        prod_flat = col.prod_flat
        ev_ready = _EV_READY
        ev_complete = _EV_COMPLETE
        ev_write = _EV_WRITE
        issue_width = self._issue_width
        scan_budget = self._scan_budget
        fu_copies = self._fu_copies
        memory_ports = self._memory_ports
        w_size = self.w_size
        f_cap = self.f_cap
        f_stop = self.f_stop
        elide = self._elide
        as_mode = self.as_mode
        record = self.elided_ranges if self._record_elisions else None
        has_tables = (
            self.predictor is not None
            or self.mdpt is not None
            or self.store_sets is not None
        )
        cycle = self.cycle
        # Commit-side counters accumulate in locals for the whole
        # segment and flush into ``stats`` once, after the loop.
        c_committed = 0
        c_loads = 0
        c_stores = 0
        c_branches = 0
        c_spec = 0
        c_fd_false = 0
        c_fd_lat = 0
        c_fd_true = 0

        while True:
            if (
                not buffer and self.f_pos >= f_stop
                and not self.w_count and not events
            ):
                break
            # -- advance clock (the event horizon) ----------------------
            if self._progress or rp:
                self._progress = False
                cycle += 1
            else:
                best = self._hint
                self._hint = -1
                if events:
                    when = events[0][0]
                    if best < 0 or when < best:
                        best = when
                if buffer:
                    when = buffer[0][1]
                    if best < 0 or when < best:
                        best = when
                if (
                    self.f_wait < 0
                    and self.f_pos < f_stop
                    and len(buffer) < f_cap
                ):
                    when = self.f_stalled
                    if best < 0 or when < best:
                        best = when
                if best < 0:
                    self.cycle = cycle
                    raise SimulationStuck(
                        f"no progress possible at cycle {cycle} "
                        f"(window={self.w_count}, "
                        f"loads={len(self.load_items) - self.load_dead}, "
                        f"writes={len(self.swp_items) - self.swp_dead})"
                    )
                nxt = cycle + 1
                if best > nxt:
                    if elide:
                        self.skipped_cycles += best - nxt
                        if record is not None:
                            record.append((nxt, best))
                        cycle = best
                    else:
                        cycle = nxt
                else:
                    cycle = nxt
            self.cycle = cycle
            # -- events (inlined _process_events) -----------------------
            if events and events[0][0] <= cycle:
                while events and events[0][0] <= cycle:
                    ev = heappop(events)
                    s = ev[3]
                    if ev[4] != serial[s] or sq[s]:
                        continue
                    kind = ev[2]
                    if kind == ev_ready:
                        if not in_rp[s]:
                            in_rp[s] = 1
                            rp_ref[s] = serial[s]
                            heappush(rp, s)
                    elif kind == ev_complete:
                        on_complete(s)
                    elif kind == ev_write:
                        on_store_write(s)
                    else:  # _EV_POST
                        self._progress = True
                self.mem_dirty = True
            # -- commit (inlined) ---------------------------------------
            if self.w_count:
                h = self.w_head
                done = write[h] if is_store_b[h] else comp[h]
                if 0 <= done <= cycle:
                    budget = issue_width
                    w_count = self.w_count
                    while True:
                        self.w_head = h + 1
                        w_count -= 1
                        budget -= 1
                        c_committed += 1
                        if is_load_b[h]:
                            c_loads += 1
                            if spec[h]:
                                c_spec += 1
                            cls = fd_cls[h]
                            if cls == 1:
                                c_fd_false += 1
                                if fd_res[h] >= 0:
                                    c_fd_lat += fd_res[h] - fd_start[h]
                            elif cls == 2:
                                c_fd_true += 1
                        elif is_store_b[h]:
                            c_stores += 1
                            det.pop(h, None)
                            syn = sync_syn[h]
                            if syn != -1:
                                producers = self._syn.get(syn)
                                if producers:
                                    rec = (h, serial[h])
                                    if rec in producers:
                                        producers.remove(rec)
                                        if not producers:
                                            del self._syn[syn]
                            if addr_sched is not None:
                                addr_sched.remove_store(h)
                            if store_sets is not None:
                                self._sset_store_retired(h)
                        elif branch_b[h]:
                            c_branches += 1
                        if not budget or not w_count:
                            break
                        h += 1
                        done = write[h] if is_store_b[h] else comp[h]
                        if done < 0 or done > cycle:
                            break
                    self.w_count = w_count
                    self._progress = True
                    if as_mode:
                        # Retiring a store removes it from the address
                        # scheduler, which can open an AS load gate; no
                        # NAS gate reads anything commit touches.
                        self.mem_dirty = True
            self.fu_ports = 0
            if self.mem_dirty or 0 <= self.mem_wake <= cycle:
                issue_memory()
            else:
                # The skipped scan would have re-merged its (unchanged)
                # local unblock hint into ``_hint`` — do just that merge
                # so the horizon matches the reference core exactly.
                when = self.mem_wake
                if when >= 0:
                    best = self._hint
                    if best < 0 or when < best:
                        self._hint = when
            # -- issue (inlined _issue_exec) ----------------------------
            if rp:
                scans = scan_budget
                deferred = []
                ie_progress = False
                issued = 0
                fu_int = 0
                fu_fp = 0
                while issued < issue_width and scans:
                    scans -= 1
                    s = -1
                    while rp:
                        t = heappop(rp)
                        if rp_ref[t] != serial[t] or not in_rp[t]:
                            continue
                        in_rp[t] = 0
                        if sq[t]:
                            continue
                        s = t
                        break
                    if s < 0:
                        break
                    nas_store = is_store_b[s] and not as_mode
                    if nas_store:
                        if a_pend[s] or d_pend[s]:
                            continue
                        ready_at = a_rdy[s]
                        if d_rdy[s] > ready_at:
                            ready_at = d_rdy[s]
                    elif a_pend[s]:
                        continue
                    else:
                        ready_at = a_rdy[s]
                    if ready_at > cycle:
                        es = self._event_serial + 1
                        self._event_serial = es
                        heappush(
                            events,
                            (ready_at, es, ev_ready, s, serial[s]),
                        )
                        continue
                    uses_fp = fp_b[s]
                    if (fu_fp if uses_fp else fu_int) >= fu_copies:
                        deferred.append(s)
                        continue
                    if nas_store:
                        ws = sync_ws[s]
                        if (
                            ws >= 0
                            and sync_ws_ref[s] == serial[ws]
                            and not sq[ws]
                            and issue[ws] < 0
                        ):
                            deferred.append(s)
                            continue
                        if self.fu_ports >= memory_ports:
                            deferred.append(s)
                            continue
                        issued += 1
                        if uses_fp:
                            fu_fp += 1
                        else:
                            fu_int += 1
                        self.fu_ports += 1
                        do_store_nas(s)
                    else:
                        issued += 1
                        if uses_fp:
                            fu_fp += 1
                        else:
                            fu_int += 1
                        if is_store_b[s]:
                            do_store_as(s)
                        elif is_load_b[s]:
                            issue[s] = cycle
                            done = cycle + 1
                            agen[s] = done
                            if not in_mp[s]:
                                in_mp[s] = 1
                                mps = self._mp_serial + 1
                                self._mp_serial = mps
                                li = self.load_items
                                if not li or s > li[-1][0]:
                                    li.append((s, mps, serial[s]))
                                else:
                                    insort(li, (s, mps, serial[s]))
                                self.load_live = None
                            best = self._hint
                            if best < 0 or done < best:
                                self._hint = done
                        else:
                            issue[s] = cycle
                            done = cycle + lat[opb[s]]
                            comp[s] = done
                            es = self._event_serial + 1
                            self._event_serial = es
                            heappush(
                                events,
                                (done, es, ev_complete, s, serial[s]),
                            )
                    ie_progress = True
                if deferred:
                    for s in deferred:
                        in_rp[s] = 1
                        rp_ref[s] = serial[s]
                        heappush(rp, s)
                    ie_progress = True
                if ie_progress:
                    self._progress = True
                    self.mem_dirty = True
            # -- dispatch (inlined) -------------------------------------
            if (
                buffer and self.w_count < w_size
                and buffer[0][1] <= cycle
            ):
                budget = issue_width
                w_count = self.w_count
                while budget and w_count < w_size and buffer:
                    rec = buffer[0]
                    if rec[1] > cycle:
                        break
                    buffer.popleft()
                    s = rec[0]
                    ser = serial[s] + 1
                    serial[s] = ser
                    sq[s] = 0
                    a_rdy[s] = cycle
                    d_rdy[s] = cycle
                    if ser > 1:
                        reset_entry(s)
                    is_store = is_store_b[s]
                    lo = srcs_off[s]
                    hi = srcs_off[s + 1]
                    ap = 0
                    dp = 0
                    w_head = self.w_head
                    for k in range(lo, hi):
                        p = prod_flat[k]
                        if p < w_head:
                            continue
                        is_data = bool(is_store) and k == lo + 1
                        pdone = comp[p]
                        if pdone >= 0:
                            if is_data:
                                if pdone > d_rdy[s]:
                                    d_rdy[s] = pdone
                            elif pdone > a_rdy[s]:
                                a_rdy[s] = pdone
                        else:
                            wl = waiters[p]
                            if wl is None:
                                waiters[p] = [(s, is_data, ser)]
                            else:
                                wl.append((s, is_data, ser))
                            if is_data:
                                dp += 1
                            else:
                                ap += 1
                    a_pend[s] = ap
                    d_pend[s] = dp
                    if not w_count:
                        self.w_head = s
                    w_count += 1
                    self.w_count = w_count
                    budget -= 1
                    self._progress = True
                    if is_load_b[s]:
                        on_load_dispatch(s)
                    elif is_store:
                        on_store_dispatch(s)
                    # _maybe_ready for a fresh entry (issue < 0, not in
                    # the ready pool), inlined:
                    if is_store and not as_mode:
                        if ap or dp:
                            continue
                        ready_at = a_rdy[s]
                        if d_rdy[s] > ready_at:
                            ready_at = d_rdy[s]
                    else:
                        if ap:
                            continue
                        ready_at = a_rdy[s]
                    if ready_at <= cycle:
                        in_rp[s] = 1
                        rp_ref[s] = ser
                        heappush(rp, s)
                    else:
                        es = self._event_serial + 1
                        self._event_serial = es
                        heappush(
                            events, (ready_at, es, ev_ready, s, ser)
                        )
            if (
                self.f_wait < 0
                and cycle >= self.f_stalled
                and self.f_pos < f_stop
                and len(buffer) < f_cap
                and fetch_tick(cycle)
            ):
                self._progress = True
            if has_tables and cycle >= self._next_flush:
                maybe_flush()

        stats.cycles = self.cycle - start_cycle
        stats.committed += c_committed
        stats.committed_loads += c_loads
        stats.committed_stores += c_stores
        stats.committed_branches += c_branches
        stats.speculative_loads += c_spec
        stats.false_dependence_loads += c_fd_false
        stats.false_dependence_latency += c_fd_lat
        stats.true_dependence_loads += c_fd_true
        stats.branch_predictions = (
            branch_unit.predictions - branch_stats_base[0]
        )
        stats.branch_mispredictions = (
            branch_unit.mispredictions - branch_stats_base[1]
        )
        stats.load_forwards = self.store_buffer.forwards
        return stats

    # -- clock ---------------------------------------------------------

    def _schedule(self, cycle: int, kind: int, seq: int) -> None:
        self._event_serial += 1
        heapq.heappush(
            self._events,
            (cycle, self._event_serial, kind, seq, self.serial[seq]),
        )

    # -- events --------------------------------------------------------

    def _on_complete(self, seq: int) -> None:
        done = self.comp[seq]
        if done >= 0 and done > self.cycle:
            self._schedule(done, _EV_COMPLETE, seq)
            return
        self.execd[seq] = 1
        waiters = self.waiters[seq]
        if waiters:
            cycle = self.cycle
            serial = self.serial
            sq = self.sq
            d_pend = self.d_pend
            a_pend = self.a_pend
            d_rdy = self.d_rdy
            a_rdy = self.a_rdy
            issue = self.issue
            in_rp = self.in_rp
            rp_ref = self.rp_ref
            rp = self.rp
            heappush = heapq.heappush
            is_store_b = self.col.is_store_b
            as_mode = self.as_mode
            schedule = self._schedule
            for wseq, is_data, wref in waiters:
                if wref != serial[wseq] or sq[wseq]:
                    continue
                if is_data:
                    d_pend[wseq] -= 1
                    if done > d_rdy[wseq]:
                        d_rdy[wseq] = done
                else:
                    a_pend[wseq] -= 1
                    if done > a_rdy[wseq]:
                        a_rdy[wseq] = done
                # Wakeup check, fused (was _maybe_ready): decide whether
                # this waiter is now fully ready and push/schedule it.
                if issue[wseq] >= 0 or in_rp[wseq]:
                    # Already issued (or queued): only the AS store
                    # data-arrival path can still matter here.
                    if (
                        as_mode and is_store_b[wseq]
                        and self.agen[wseq] >= 0
                        and not d_pend[wseq]
                        and not self.in_mp[wseq]
                        and self.write[wseq] < 0
                    ):
                        if self._mp_push(self.swp_items, wseq):
                            self.swp_live = None
                        self._progress = True
                    continue
                if is_store_b[wseq] and not as_mode:
                    if a_pend[wseq] or d_pend[wseq]:
                        continue
                    ready_at = a_rdy[wseq]
                    if d_rdy[wseq] > ready_at:
                        ready_at = d_rdy[wseq]
                else:
                    if a_pend[wseq]:
                        continue
                    ready_at = a_rdy[wseq]
                if ready_at <= cycle:
                    # _rp_push with the in_rp/sq guards pre-satisfied.
                    in_rp[wseq] = 1
                    rp_ref[wseq] = wref
                    heappush(rp, wseq)
                else:
                    schedule(ready_at, _EV_READY, wseq)
            if self.as_mode:
                consumers = self.consumers[seq]
                if consumers:
                    consumers.extend(waiters)
                else:
                    self.consumers[seq] = waiters
            self.waiters[seq] = []
        if self.col.branch_b[seq]:
            self._resume_after_branch(seq, done)
        self._progress = True

    def _on_store_write(self, seq: int) -> None:
        wc = self.write[seq]
        if wc >= 0 and wc > self.cycle:
            self._schedule(wc, _EV_WRITE, seq)
            return
        cycle = wc
        self.execd[seq] = 1
        self.hierarchy.store(self.col.addr[seq], cycle)
        self._progress = True

        records = self._det.get(seq)
        if not records:
            return
        serial = self.serial
        sq = self.sq
        memc = self.memc
        fwd = self.fwd
        violators = None
        for ls, ref in records:
            if ref != serial[ls] or sq[ls]:
                continue
            mc = memc[ls]
            if mc < 0 or mc > cycle:
                continue
            if fwd[ls] == seq:
                continue
            if violators is None:
                violators = [ls]
            else:
                violators.append(ls)
        if violators is None:
            return
        if self.as_mode:
            stale_of = self.col.stale_of
            violators = [
                ls for ls in violators
                if not stale_of[ls]
                and self._value_propagated(ls, cycle)
            ]
        if violators:
            oldest = min(violators)
            if self._selective:
                self._selective_reexecute(oldest, seq, cycle)
            else:
                self._squash_for_violation(oldest, seq, cycle)

    def _value_propagated(self, ls: int, write_cycle: int) -> bool:
        consumers = self.consumers[ls]
        waiters = self.waiters[ls]
        if consumers and waiters:
            combined = consumers + waiters
        elif consumers:
            combined = consumers
        elif waiters:
            combined = waiters
        else:
            return False
        serial = self.serial
        sq = self.sq
        issue = self.issue
        propagated = False
        for wseq, _, wref in combined:
            if wref != serial[wseq] or sq[wseq]:
                continue
            ic = issue[wseq]
            if ic >= 0 and ic <= write_cycle:
                propagated = True
                break
        if not propagated:
            d_rdy = self.d_rdy
            a_rdy = self.a_rdy
            fix = write_cycle + 1
            for wseq, is_data, wref in combined:
                if (
                    wref != serial[wseq] or sq[wseq]
                    or issue[wseq] >= 0
                ):
                    continue
                if is_data:
                    if fix > d_rdy[wseq]:
                        d_rdy[wseq] = fix
                elif fix > a_rdy[wseq]:
                    a_rdy[wseq] = fix
        return propagated

    def _store_buffer_insert(self, seq: int, data_ready: int) -> None:
        buffer = self.store_buffer
        if buffer.full:
            head_seq = self.w_head if self.w_count else seq
            if not buffer.evict_oldest_before(head_seq):
                raise SimulationStuck("store buffer wedged")
        col = self.col
        wc = self.write[seq]
        buffer.insert(StoreBufferEntry(
            seq=seq,
            addr=col.addr[seq],
            size=col.size[seq],
            value=col.value[seq],
            data_ready_cycle=data_ready,
            drain_cycle=wc if wc >= 0 else None,
        ))

    # -- squash --------------------------------------------------------

    def _window_squash_from(self, seq: int) -> int:
        """Flag entries with seq >= *seq* squashed; returns the count.

        No rename-map repair is needed: producers come from the static
        ``prod_flat`` column, whose liveness test (``p >= w_head``) is
        unaffected by squashing the window tail.
        """
        tail = self.w_head + self.w_count
        self.sq[seq:tail] = b"\x01" * (tail - seq)
        self.w_count = seq - self.w_head
        return tail - seq

    def _syn_squash(self, from_seq: int) -> None:
        syn = self._syn
        for key in list(syn):
            kept = [rec for rec in syn[key] if rec[0] < from_seq]
            if kept:
                syn[key] = kept
            else:
                del syn[key]

    def _det_squash(self, from_seq: int) -> None:
        det = self._det
        for key in list(det):
            kept = [rec for rec in det[key] if rec[0] < from_seq]
            if kept:
                det[key] = kept
            else:
                del det[key]

    def _sset_squash(self, from_seq: int) -> None:
        lfst = self.store_sets._lfst
        serial = self.serial
        sq = self.sq
        for slot, handle in enumerate(lfst):
            if handle is None:
                continue
            s, _, ref = handle
            if ref != serial[s] or sq[s] or s >= from_seq:
                lfst[slot] = None

    def _squash_for_violation(
        self, ls: int, ss: int, cycle: int
    ) -> None:
        stats = self.stats
        stats.misspeculations += 1
        count = self._window_squash_from(ls)
        stats.squashed_instructions += count
        self.load_live = None
        self.swp_live = None
        self.unexec_stores.squash(ls)
        self.barrier_stores.squash(ls)
        self._syn_squash(ls)
        self._det_squash(ls)
        self.store_buffer.squash_younger(ls)
        if self.addr_sched is not None:
            self.addr_sched.squash(ls)
        if self.store_sets is not None:
            self._sset_squash(ls)
        resume = cycle + self.config.memdep.squash_refill_penalty
        self._fetch_squash(ls, resume)

        pcs = self.col.pc
        if self.policy is SpeculationPolicy.SELECTIVE:
            self.predictor.record_misspeculation(pcs[ls])
        elif self.policy is SpeculationPolicy.STORE_BARRIER:
            self.predictor.record_misspeculation(pcs[ss])
        elif self.policy is SpeculationPolicy.SYNC:
            self.mdpt.record_violation(pcs[ls], pcs[ss])
        elif self.policy is SpeculationPolicy.STORE_SETS:
            self.store_sets.record_violation(pcs[ls], pcs[ss])

    def _selective_reexecute(
        self, ls: int, ss: int, cycle: int
    ) -> None:
        stats = self.stats
        stats.misspeculations += 1
        col = self.col
        lat = self.lat
        opb = col.opb
        is_load_b = col.is_load_b
        is_store_b = col.is_store_b
        comp = self.comp
        write = self.write
        issue = self.issue
        srcs_off = col.srcs_off
        prod_flat = col.prod_flat
        new_complete: Dict[int, int] = {}
        reexecuted = 0

        self.fwd[ls] = ss
        old = comp[ls]
        corrected = max(old if old >= 0 else 0, cycle + 1)
        if corrected != old:
            comp[ls] = corrected
            self._schedule(corrected, _EV_COMPLETE, ls)
        new_complete[ls] = corrected

        a_rdy = self.a_rdy
        d_rdy = self.d_rdy
        sq = self.sq
        w_head = self.w_head
        for s in range(w_head, w_head + self.w_count):
            if s <= ls or sq[s]:
                continue
            bump = 0
            for k in range(srcs_off[s], srcs_off[s + 1]):
                p = prod_flat[k]
                # Live producers only; committed ones cannot be in
                # ``new_complete`` (its keys are window entries > ls).
                if p >= w_head:
                    when = new_complete.get(p)
                    if when is not None and when > bump:
                        bump = when
            if not bump or issue[s] < 0:
                if bump:
                    if bump > a_rdy[s]:
                        a_rdy[s] = bump
                    if bump > d_rdy[s]:
                        d_rdy[s] = bump
                continue
            latency = lat[opb[s]]
            if is_load_b[s]:
                latency += 2
            corrected = bump + latency
            old = write[s] if is_store_b[s] else comp[s]
            if old >= 0 and corrected > old:
                reexecuted += 1
                if is_store_b[s]:
                    write[s] = corrected
                    comp[s] = corrected
                    self._schedule(corrected, _EV_WRITE, s)
                else:
                    comp[s] = corrected
                    self._schedule(corrected, _EV_COMPLETE, s)
                new_complete[s] = corrected
        stats.squashed_instructions += reexecuted

    # -- commit --------------------------------------------------------

    def _sset_store_retired(self, seq: int) -> None:
        predictor = self.store_sets
        ssid = predictor.ssid_of(self.col.pc[seq])
        if ssid is None:
            return
        slot = predictor._ssid_slot(ssid)
        handle = predictor._lfst[slot]
        if (
            handle is not None
            and handle[0] == seq
            and handle[2] == self.serial[seq]
        ):
            predictor._lfst[slot] = None

    # -- dispatch ------------------------------------------------------

    def _reset_entry(self, s: int) -> None:
        """Re-dispatch after a squash: restore Entry defaults."""
        self.a_pend[s] = 0
        self.d_pend[s] = 0
        self.issue[s] = -1
        self.agen[s] = -1
        self.memc[s] = -1
        self.comp[s] = -1
        self.write[s] = -1
        self.execd[s] = 0
        self.in_rp[s] = 0
        self.in_mp[s] = 0
        self.spec[s] = 0
        self.fwd[s] = -1
        self.waiters[s] = None
        if self.consumers is not None:
            self.consumers[s] = None
        self.pred_dep[s] = 0
        self.barrier[s] = 0
        self.sync_syn[s] = -1
        self.sync_ws[s] = -1
        self.fd_start[s] = -1
        self.fd_cls[s] = 0
        self.fd_res[s] = -1

    def _on_load_dispatch(self, s: int) -> None:
        ds = self.col.dep_of[s]
        if ds >= 0:
            det = self._det
            rec = (s, self.serial[s])
            dl = det.get(ds)
            if dl is None:
                det[ds] = [rec]
            else:
                dl.append(rec)
        policy = self.policy
        if policy is SpeculationPolicy.SELECTIVE:
            if self.predictor.predicts_dependence(self.col.pc[s]):
                self.pred_dep[s] = 1
        elif policy is SpeculationPolicy.SYNC:
            prediction = self.mdpt.predict_load(self.col.pc[s])
            if prediction is not None:
                synonym = prediction.synonym
                self.sync_syn[s] = synonym
                best = -1
                best_ref = 0
                serial = self.serial
                sq = self.sq
                for ws, ref in self._syn.get(synonym, ()):
                    if ref != serial[ws] or sq[ws] or ws >= s:
                        continue
                    if ws > best:
                        best = ws
                        best_ref = ref
                if best >= 0:
                    self.sync_ws[s] = best
                    self.sync_ws_ref[s] = best_ref
        elif policy is SpeculationPolicy.STORE_SETS:
            predictor = self.store_sets
            ssid = predictor.ssid_of(self.col.pc[s])
            if ssid is not None:
                handle = predictor._lfst[predictor._ssid_slot(ssid)]
                if handle is not None:
                    ws, _, ref = handle
                    if (
                        ref == self.serial[ws] and not self.sq[ws]
                        and ws < s
                    ):
                        self.sync_ws[s] = ws
                        self.sync_ws_ref[s] = ref

    def _on_store_dispatch(self, s: int) -> None:
        self.unexec_stores.on_dispatch(s)
        if self.addr_sched is not None:
            self.addr_sched.on_store_dispatch(s)
        policy = self.policy
        if policy is SpeculationPolicy.STORE_BARRIER:
            if self.predictor.predicts_dependence(self.col.pc[s]):
                self.barrier[s] = 1
                self.barrier_stores.on_dispatch(s)
        elif policy is SpeculationPolicy.SYNC:
            prediction = self.mdpt.predict_store(self.col.pc[s])
            if prediction is not None:
                synonym = prediction.synonym
                self.sync_syn[s] = synonym
                rec = (s, self.serial[s])
                producers = self._syn.get(synonym)
                if producers is None:
                    self._syn[synonym] = [rec]
                else:
                    producers.append(rec)
        elif policy is SpeculationPolicy.STORE_SETS:
            predictor = self.store_sets
            ssid = predictor.ssid_of(self.col.pc[s])
            if ssid is not None:
                slot = predictor._ssid_slot(ssid)
                previous = predictor._lfst[slot]
                predictor._lfst[slot] = (s, 0, self.serial[s])
                if previous is not None:
                    ws, _, ref = previous
                    if ref == self.serial[ws] and not self.sq[ws]:
                        self.sync_ws[s] = ws
                        self.sync_ws_ref[s] = ref

    # -- readiness -----------------------------------------------------

    def _rp_push(self, s: int) -> None:
        # The ready pool is a plain int heap: the incarnation that pushed
        # is captured in ``rp_ref`` instead of a tuple. Two records for
        # the same seq can coexist after a squash + re-dispatch; the pop
        # consumes exactly one (the duplicate skips on ``in_rp``), at the
        # same heap position equal keys would occupy either way.
        if self.in_rp[s] or self.sq[s]:
            return
        self.in_rp[s] = 1
        self.rp_ref[s] = self.serial[s]
        heapq.heappush(self.rp, s)

    def _mp_push(self, items: List, s: int) -> bool:
        """Push *s* onto a mem pool. Returns True if pushed."""
        if self.in_mp[s] or self.sq[s]:
            return False
        self.in_mp[s] = 1
        self._mp_serial += 1
        item = (s, self._mp_serial, self.serial[s])
        if not items or s > items[-1][0]:
            items.append(item)
        else:
            import bisect

            bisect.insort(items, item)
        return True

    def _mp_live(self, which: str) -> List[int]:
        """Live seqs, oldest-first, pruning dead records (MemPool
        ``live_entries`` port)."""
        if which == "load":
            live = self.load_live
            items = self.load_items
        else:
            live = self.swp_live
            items = self.swp_items
        if live is not None:
            return live
        if not items:
            live = []
        else:
            serial = self.serial
            sq = self.sq
            in_mp = self.in_mp
            live = [
                s for s, _, ref in items
                if ref == serial[s] and in_mp[s] and not sq[s]
            ]
            if len(live) != len(items):
                items = [(s, 0, serial[s]) for s in live]
                if which == "load":
                    self.load_items = items
                    self.load_dead = 0
                else:
                    self.swp_items = items
                    self.swp_dead = 0
        if which == "load":
            self.load_live = live
        else:
            self.swp_live = live
        return live

    def _mp_remove(self, which: str, s: int) -> None:
        if self.in_mp[s]:
            self.in_mp[s] = 0
            if which == "load":
                self.load_dead += 1
                self.load_live = None
            else:
                self.swp_dead += 1
                self.swp_live = None

    # -- issue ---------------------------------------------------------

    def _do_issue_store_nas(self, s: int) -> None:
        cycle = self.cycle
        self.issue[s] = cycle
        self.agen[s] = cycle + 1
        wc = cycle + 2
        self.write[s] = wc
        self.comp[s] = wc
        self.unexec_stores.on_execute(s)
        if self.barrier[s]:
            self.barrier_stores.on_execute(s)
        self._store_buffer_insert(s, data_ready=cycle + 1)
        self._schedule(wc, _EV_WRITE, s)

    def _do_issue_store_agen_as(self, s: int) -> None:
        cycle = self.cycle
        self.issue[s] = cycle
        agen = cycle + 1
        self.agen[s] = agen
        col = self.col
        visible = self.addr_sched.post_address(
            s, col.addr[s], col.size[s], agen
        )
        self._schedule(visible, _EV_POST, s)
        if not self.d_pend[s]:
            if self._mp_push(self.swp_items, s):
                self.swp_live = None

    # -- memory stage --------------------------------------------------

    def _issue_memory(self) -> None:
        loads = self._mp_live("load")
        if self.as_mode:
            writes = self._mp_live("swp")
            if writes:
                if loads:
                    candidates = sorted(loads + writes)
                else:
                    candidates = writes
            else:
                candidates = loads
        else:
            candidates = loads
        if not candidates:
            self.mem_wake = -1
            self.mem_dirty = False
            return
        cycle = self.cycle
        kind = self._gate_kind
        # ``wake`` collects only this scan's own unblock times; it is
        # merged into ``_hint`` at the end (same min the reference's
        # seeded write-back computes) and kept as the standing wake time
        # for the skip guard in the main loop.
        wake = -1
        progress = False
        blocked_tail = -1
        ports_left = self._memory_ports - self.fu_ports
        if kind == _GATE_ALL_STORES or kind == _GATE_PREDICTED:
            blocked_from = self.unexec_stores.oldest()
        elif kind == _GATE_BARRIER:
            blocked_from = self.barrier_stores.oldest()
        else:
            blocked_from = None
        col = self.col
        is_store_b = col.is_store_b
        agen = self.agen
        note_fd_wait = self._note_fd_wait
        fd_start = self.fd_start
        for s in candidates:
            if not ports_left:
                progress = True
                break
            if is_store_b[s]:
                ready = self.d_rdy[s]
                a = agen[s]
                if a > ready:
                    ready = a
                if ready > cycle:
                    if wake < 0 or ready < wake:
                        wake = ready
                    continue
                ports_left -= 1
                self._mp_remove("swp", s)
                wc = cycle + 1
                self.write[s] = wc
                self.comp[s] = wc
                self.unexec_stores.on_execute(s)
                if self.barrier[s]:
                    self.barrier_stores.on_execute(s)
                self._store_buffer_insert(s, data_ready=cycle + 1)
                self._schedule(wc, _EV_WRITE, s)
                progress = True
                continue
            # -- loads: the policy gate, inlined -----------------------
            a = agen[s]
            if a < 0 or a > cycle:
                if a >= 0 and (wake < 0 or a < wake):
                    wake = a
                continue
            if kind == _GATE_OPEN:
                pass
            elif kind == _GATE_ALL_STORES:
                if blocked_from is not None and blocked_from < s:
                    # The gate is global: every younger candidate is
                    # blocked by the same oldest store. Finish them in
                    # the cheap tail pass below.
                    blocked_tail = s
                    break
            elif kind == _GATE_PREDICTED:
                if (
                    self.pred_dep[s]
                    and blocked_from is not None
                    and blocked_from < s
                ):
                    if fd_start[s] < 0:
                        note_fd_wait(s)
                    continue
            elif kind == _GATE_BARRIER:
                if blocked_from is not None and blocked_from < s:
                    blocked_tail = s
                    break
            elif kind == _GATE_SYNC:
                ws = self.sync_ws[s]
                if (
                    ws >= 0
                    and self.sync_ws_ref[s] == self.serial[ws]
                    and not self.sq[ws]
                    and not self.execd[ws]
                ):
                    issued = self.issue[ws]
                    if issued < 0:
                        continue
                    if cycle < issued + 1:
                        if wake < 0 or issued + 1 < wake:
                            wake = issued + 1
                        continue
            elif kind == _GATE_ORACLE:
                # ``ds`` is older than the live load s, so it is in the
                # window exactly when it has not committed yet.
                ds = col.dep_of[s]
                if ds >= self.w_head and not self.execd[ds]:
                    issued = self.issue[ds]
                    if issued < 0:
                        if fd_start[s] < 0:
                            note_fd_wait(s)
                        continue
                    if cycle < issued + 1:
                        if wake < 0 or issued + 1 < wake:
                            wake = issued + 1
                        continue
            else:  # _GATE_AS
                open_, gate_hint = self._load_gate_as(s)
                if not open_:
                    if gate_hint is not None and (
                        wake < 0 or gate_hint < wake
                    ):
                        wake = gate_hint
                    continue
            if fd_start[s] >= 0 and self.fd_res[s] < 0:
                self.fd_res[s] = cycle
            ports_left -= 1
            self._mp_remove("load", s)
            self._access_memory(s)
            progress = True
        if blocked_tail >= 0:
            # Tail of an ALL_STORES/BARRIER scan: the gate blocks every
            # candidate from ``blocked_tail`` on (candidates ascend and
            # the blocking store is global), so reproduce exactly what
            # the reference does for each — merge a pending agen time
            # into the wake hint, otherwise note the false-dependence
            # wait (``fd_start`` timing feeds the latency stats). Ports
            # are untouched here, so no port-exhaustion break can occur
            # mid-tail.
            lo = bisect.bisect_left(candidates, blocked_tail)
            for t in candidates[lo:]:
                a = agen[t]
                if a < 0 or a > cycle:
                    if a >= 0 and (wake < 0 or a < wake):
                        wake = a
                elif fd_start[t] < 0:
                    note_fd_wait(t)
        self.fu_ports = self._memory_ports - ports_left
        if wake >= 0:
            hint = self._hint
            if hint < 0 or wake < hint:
                self._hint = wake
        self.mem_wake = wake
        if progress:
            self._progress = True
            self.mem_dirty = True
        else:
            self.mem_dirty = False

    def _access_memory(self, s: int) -> None:
        cycle = self.cycle
        col = self.col
        self.memc[s] = cycle
        if self.unexec_stores.any_older_than(s):
            self.spec[s] = 1
        addr = col.addr[s]
        buffered, full = self.store_buffer.search(
            s, addr, col.size[s]
        )
        if buffered is not None and full:
            complete = max(cycle + 1, buffered.data_ready_cycle + 1)
            self.fwd[s] = buffered.seq
        elif buffered is not None:
            start = max(cycle, buffered.data_ready_cycle)
            complete = self.hierarchy.load(addr, start)
        else:
            complete = self.hierarchy.load(addr, cycle)
        self.comp[s] = complete
        self._schedule(complete, _EV_COMPLETE, s)

    def _load_gate_as(self, s: int):
        cycle = self.cycle
        sched = self.addr_sched
        search_from = self.agen[s] + sched.latency
        if cycle < search_from:
            return False, search_from
        if self.policy is SpeculationPolicy.NO:
            if not sched.all_older_posted(s, cycle):
                self._note_fd_wait(s)
                return False, None
        col = self.col
        m = sched.youngest_older_match(
            s, col.addr[s], col.size[s], cycle
        )
        if m >= 0:
            wc = self.write[m]
            if wc < 0:
                return False, None
            if cycle < wc:
                return False, wc
        return True, None

    def _note_fd_wait(self, s: int) -> None:
        if self.fd_start[s] >= 0:
            return
        self.fd_start[s] = self.cycle
        ds = self.col.dep_of[s]
        # Older dep of a live load: in the window iff not yet committed.
        if ds >= self.w_head and not self.execd[ds]:
            self.fd_cls[s] = 2
        else:
            self.fd_cls[s] = 1

    # -- fetch ---------------------------------------------------------

    def _fetch_tick(self, cycle: int) -> int:
        if cycle < self.f_stalled or self.f_wait >= 0:
            return 0
        buffer = self.f_buffer
        buffer_cap = self.f_cap
        if len(buffer) >= buffer_cap:
            return 0
        fetched = 0
        blocks_used = 0
        current_block = None
        width = self._f_width
        max_blocks = self._f_max_blocks
        block_shift = self._f_block_shift
        recent_blocks = self.f_recent
        recent_cap = 4 * max_blocks
        hit_by = cycle + self._f_hit_latency
        dispatch_at = cycle + self._f_depth
        col = self.col
        pcs = col.pc
        branch_b = col.branch_b
        opb = col.opb
        ops = col.ops
        taken = col.taken
        target = col.target
        predict = self.branch_unit.predict_and_train_raw
        fetch_block = self.hierarchy.fetch
        pos = self.f_pos
        stop = self.f_stop
        while (
            fetched < width
            and len(buffer) < buffer_cap
            and pos < stop
        ):
            pc = pcs[pos]
            block = pc >> block_shift
            if block != current_block:
                if blocks_used >= max_blocks:
                    break
                blocks_used += 1
                current_block = block
                available = recent_blocks.get(block)
                if available is None:
                    available = fetch_block(pc, cycle)
                    recent_blocks[block] = available
                    if len(recent_blocks) > recent_cap:
                        oldest = next(iter(recent_blocks))
                        del recent_blocks[oldest]
                if available > hit_by:
                    self.f_stalled = available
                    break
            s = pos
            pos += 1
            buffer.append((s, dispatch_at))
            fetched += 1
            if branch_b[s]:
                correct = predict(
                    pc, ops[opb[s]], taken[s], target[s]
                )[2]
                if not correct:
                    self.f_wait = s
                    break
                if taken[s]:
                    current_block = None
        self.f_pos = pos
        return fetched

    def _fetch_squash(self, seq: int, resume_cycle: int) -> None:
        buffer = self.f_buffer
        while buffer and buffer[-1][0] >= seq:
            buffer.pop()
        if self.f_pos > seq:
            self.f_pos = seq
        if self.f_wait >= 0 and self.f_wait >= seq:
            self.f_wait = -1
        if resume_cycle > self.f_stalled:
            self.f_stalled = resume_cycle

    def _resume_after_branch(self, seq: int, cycle: int) -> None:
        if self.f_wait == seq:
            self.f_wait = -1
            resume = cycle + self.config.branch_redirect_penalty
            if resume > self.f_stalled:
                self.f_stalled = resume

    # -- periodic table flushes ----------------------------------------

    def _maybe_flush_tables(self) -> None:
        if self.cycle < self._next_flush:
            return
        interval = self.config.memdep.flush_interval
        while self._next_flush <= self.cycle:
            self._next_flush += interval
        if self.predictor is not None:
            self.predictor.flush()
        if self.mdpt is not None:
            self.mdpt.flush()
        if self.store_sets is not None:
            self.store_sets.flush()

    # -- cache stat snapshots ------------------------------------------

    def _snapshot_caches(self, stats: SimResult) -> None:
        stats.dcache_accesses = self.hierarchy.dcache.accesses
        stats.dcache_misses = self.hierarchy.dcache.misses
        stats.icache_accesses = self.hierarchy.icache.accesses
        stats.icache_misses = self.hierarchy.icache.misses
        stats.l2_accesses = self.hierarchy.l2.accesses
        stats.l2_misses = self.hierarchy.l2.misses




