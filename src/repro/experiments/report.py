"""Common report container for experiment drivers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.stats.format import render_table


@dataclass
class ExperimentReport:
    """One regenerated table or figure, renderable as text."""

    experiment: str  # e.g. "Figure 1"
    title: str
    headers: Sequence[str]
    rows: List[Sequence[object]]
    notes: List[str] = field(default_factory=list)
    #: Machine-readable payload (per-benchmark series) for tests/plots.
    data: Dict = field(default_factory=dict)

    def render(self) -> str:
        lines = [f"{self.experiment}: {self.title}", ""]
        lines.append(render_table(self.headers, self.rows))
        if self.notes:
            lines.append("")
            lines.extend(f"  {note}" for note in self.notes)
        return "\n".join(lines)
