"""Multiprocess experiment runner.

The full evaluation is ~250 (benchmark, configuration) points; they are
independent, so the matrix parallelises cleanly across processes. Work
is sharded **by benchmark** so each worker generates a benchmark's
trace and dependence analysis once and reuses them across every
configuration — the same locality the in-process cache exploits.

Results are deterministic and identical to the serial runner's (same
seeds, same traces); finished results are folded back into the serial
runner's cache so subsequent figure drivers reuse them.
"""

from __future__ import annotations

import multiprocessing
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.config.processor import ProcessorConfig
from repro.core.result import SimResult
from repro.experiments import runner as _runner
from repro.experiments.runner import (
    DEFAULT_SETTINGS,
    ExperimentSettings,
)


def _run_benchmark_shard(
    args: Tuple[str, List[Tuple[str, ProcessorConfig]],
                ExperimentSettings],
) -> Tuple[str, List[Tuple[str, SimResult]]]:
    """Worker: one benchmark through every configuration."""
    name, labelled_configs, settings = args
    results = []
    for label, config in labelled_configs:
        results.append(
            (label, _runner.run_benchmark(name, config, settings))
        )
    return name, results


def run_matrix_parallel(
    benchmarks: Iterable[str],
    configs: Mapping[str, ProcessorConfig],
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    workers: Optional[int] = None,
) -> Dict[str, Dict[str, SimResult]]:
    """Parallel :func:`repro.experiments.runner.run_matrix`.

    Returns ``{config_label: {benchmark: SimResult}}``. With
    ``workers=1`` (or a single benchmark) this degrades to the serial
    path without spawning processes.
    """
    benchmarks = list(benchmarks)
    labelled = list(configs.items())
    if workers is None:
        workers = min(len(benchmarks), multiprocessing.cpu_count())
    workers = max(1, workers)

    out: Dict[str, Dict[str, SimResult]] = {
        label: {} for label, _ in labelled
    }
    if workers == 1 or len(benchmarks) <= 1:
        for name in benchmarks:
            _, shard = _run_benchmark_shard((name, labelled, settings))
            for label, result in shard:
                out[label][name] = result
        return out

    jobs = [(name, labelled, settings) for name in benchmarks]
    context = multiprocessing.get_context("fork")
    with context.Pool(processes=workers) as pool:
        for name, shard in pool.imap_unordered(
            _run_benchmark_shard, jobs
        ):
            for label, result in shard:
                out[label][name] = result
                # Seed the serial cache so later drivers reuse this.
                config = dict(labelled)[label]
                key = (name, settings, _runner._config_key(config))
                _runner._result_cache[key] = result
    return out
