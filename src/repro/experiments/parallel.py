"""Fault-tolerant multiprocess experiment runner.

The full evaluation is ~250 (benchmark, configuration) points; they are
independent, so the matrix parallelises cleanly across processes. Work
is sharded **by benchmark** so each worker generates a benchmark's
trace and dependence analysis once and reuses them across every
configuration — the same locality the in-process cache exploits.

Results are deterministic and identical to the serial runner's (same
seeds, same traces); finished results are folded back into the serial
runner's cache so subsequent figure drivers reuse them. When a
persistent store is active, workers consult and populate it too (the
``fork`` start method carries the active store into each child).

Fault tolerance (this is a long-running harness — a single wedged or
crashed worker must not cost the whole matrix):

* Each shard may be given a wall-clock **timeout** measured from
  submission; a shard that never reports back (e.g. its worker was
  OOM-killed) is abandoned and rescheduled.
* Failed or timed-out shards are **retried** up to ``retries`` times
  with exponential backoff before being declared dead; dead shards are
  dropped from the returned matrix while every surviving shard's
  results are kept.
* If the pool itself cannot be created or dies mid-run, the remaining
  shards **degrade to serial** execution in the parent process.
* Every lifecycle step streams to a JSONL **telemetry** file (see
  :mod:`repro.experiments.telemetry`) consumed by the
  ``repro-experiments status`` subcommand and
  ``tools/compare_runs.py --telemetry``.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.config.processor import ProcessorConfig
from repro.core.result import SimResult
from repro.experiments import runner as _runner
from repro.experiments.runner import (
    DEFAULT_SETTINGS,
    ExperimentSettings,
)
from repro.experiments.telemetry import as_writer
from repro.workloads import catalog as _catalog

#: Scheduler poll interval while waiting on in-flight shards.
_POLL_SECONDS = 0.01


def _run_benchmark_shard(
    args: Tuple[str, List[Tuple[str, ProcessorConfig]],
                ExperimentSettings],
) -> Tuple[str, List[Tuple[str, SimResult]], dict]:
    """Worker: one benchmark through every configuration.

    Returns ``(benchmark, [(label, result), ...], stats)`` where
    *stats* carries the worker pid, shard wall time and the cache
    counters this shard accumulated (memory/store hits, simulations).
    The optional fourth tuple element names the simulator backend
    (older three-element tuples still work).
    """
    name, labelled_configs, settings = args[:3]
    backend = args[3] if len(args) > 3 else None
    before = _runner.cache_stats()
    traces_before = _catalog.trace_stats()
    started = time.perf_counter()
    results = []
    for label, config in labelled_configs:
        results.append(
            (label,
             _runner.run_benchmark(name, config, settings, backend))
        )
    spent = _runner.cache_stats().delta(before)
    traces = _catalog.trace_stats().delta(traces_before)
    stats = {
        "worker": os.getpid(),
        "wall": time.perf_counter() - started,
        "memory_hits": spent.memory_hits,
        "store_hits": spent.store_hits,
        "simulations": spent.simulations,
        #: Where this shard's trace came from: "generated" (ran the
        #: generator), "store_hit" (persistent trace store),
        #: "inherited" (compiled columns placed pre-fork by
        #: precompile), "memory" (in-process memo), or None (every
        #: result was cached — no trace was needed at all).
        "trace_source": traces.source,
        "trace_wall": traces.trace_wall,
    }
    return name, results, stats


def _make_pool(workers: int):
    """A fork-context pool (patchable seam for pool-death tests)."""
    return multiprocessing.get_context("fork").Pool(processes=workers)


class _MatrixRun:
    """One matrix execution: scheduling state + telemetry plumbing."""

    def __init__(
        self,
        benchmarks: List[str],
        labelled: List[Tuple[str, ProcessorConfig]],
        settings: ExperimentSettings,
        writer,
        shard_timeout: Optional[float],
        retries: int,
        retry_backoff: float,
        backend: Optional[str] = None,
    ) -> None:
        self.benchmarks = benchmarks
        self.labelled = labelled
        self.backend = backend
        self.configs_by_label = dict(labelled)
        #: Every telemetry record carries the shard's full cell key
        #: (benchmark + the config labels it covers) so JSONL traces
        #: can be joined with result-store entries even on the
        #: retry/timeout/error paths.
        self.config_labels = [label for label, _ in labelled]
        self.settings = settings
        self.writer = writer
        self.shard_timeout = shard_timeout
        self.retries = retries
        self.retry_backoff = retry_backoff
        self.out: Dict[str, Dict[str, SimResult]] = {
            label: {} for label, _ in labelled
        }
        self.attempts: Dict[str, int] = {name: 0 for name in benchmarks}
        self.failed: List[str] = []
        #: Cache counters summed over every finished shard. Pooled
        #: shards simulate in child processes, so the parent's own
        #: counters never see them — the per-shard stats do.
        self.totals = {
            "memory_hits": 0, "store_hits": 0, "simulations": 0,
            "trace_wall": 0.0,
        }

    # -- result folding ------------------------------------------------------

    def _fold(
        self,
        name: str,
        shard: List[Tuple[str, SimResult]],
        stats: dict,
        mode: str,
    ) -> None:
        for label, result in shard:
            self.out[label][name] = result
            # Seed the serial cache so later drivers reuse this.
            config = self.configs_by_label[label]
            key = (name, self.settings, _runner._config_key(config))
            _runner._result_cache[key] = result
        for key in self.totals:
            value = stats.get(key, 0) or 0
            self.totals[key] += (
                float(value) if key == "trace_wall" else int(value)
            )
        self.writer.emit(
            "shard_finish",
            benchmark=name,
            configs=self.config_labels,
            attempt=self.attempts[name],
            mode=mode,
            points=len(shard),
            **stats,
        )

    def _run_serial_shard(self, name: str) -> None:
        """In-process execution of one shard (fallback path)."""
        self.attempts[name] += 1
        self.writer.emit(
            "shard_start",
            benchmark=name,
            configs=self.config_labels,
            attempt=self.attempts[name],
            mode="serial",
        )
        try:
            _, shard, stats = _run_benchmark_shard(
                (name, self.labelled, self.settings, self.backend)
            )
        except Exception as exc:
            self.failed.append(name)
            self.writer.emit(
                "shard_failed",
                benchmark=name,
                configs=self.config_labels,
                attempt=self.attempts[name],
                mode="serial",
                error=repr(exc),
            )
            return
        self._fold(name, shard, stats, mode="serial")

    def run_serial(self, names: Iterable[str]) -> None:
        for name in names:
            self._run_serial_shard(name)

    # -- parallel scheduling -------------------------------------------------

    def run_parallel(self, workers: int) -> None:
        """Pooled execution with timeout/retry; may degrade to serial."""
        try:
            pool = _make_pool(workers)
        except Exception as exc:
            self.writer.emit(
                "serial_fallback", reason=f"pool creation: {exc!r}"
            )
            self.run_serial(self.benchmarks)
            return

        pending: List[str] = list(self.benchmarks)
        #: benchmark -> (AsyncResult, deadline or None)
        active: Dict[str, Tuple[object, Optional[float]]] = {}
        # ``with pool`` terminates outstanding workers on exit, so an
        # abandoned (timed-out) shard cannot outlive this call. The
        # explicit join below extends that to interrupts: a
        # KeyboardInterrupt/SIGTERM mid-matrix must not leave orphan
        # workers behind the raised exception.
        try:
            with pool:
                while pending or active:
                    abandoned = self._submit(pool, pending, active)
                    if abandoned:
                        # Pool died while submitting: drain what is
                        # still in flight, then go serial.
                        remaining = abandoned + self._drain(active)
                        self.writer.emit(
                            "serial_fallback", reason="pool died"
                        )
                        self.run_serial(remaining)
                        return
                    self._poll(pending, active)
                    if pending or active:
                        time.sleep(_POLL_SECONDS)
        finally:
            pool.join()

    def _submit(self, pool, pending: List[str], active) -> List[str]:
        """Launch pending shards; returns shards orphaned by pool death."""
        while pending:
            name = pending.pop(0)
            self.attempts[name] += 1
            self.writer.emit(
                "shard_start",
                benchmark=name,
                configs=self.config_labels,
                attempt=self.attempts[name],
                mode="pool",
            )
            try:
                handle = pool.apply_async(
                    _run_benchmark_shard,
                    ((name, self.labelled, self.settings,
                      self.backend),),
                )
            except Exception:
                return [name] + pending
            deadline = (
                time.monotonic() + self.shard_timeout
                if self.shard_timeout else None
            )
            active[name] = (handle, deadline)
        return []

    def _drain(self, active) -> List[str]:
        """Collect whatever finished; return the rest for serial."""
        leftovers = []
        for name, (handle, _deadline) in list(active.items()):
            collected = False
            if handle.ready():
                try:
                    _, shard, stats = handle.get()
                    self._fold(name, shard, stats, mode="pool")
                    collected = True
                except Exception:
                    pass
            if not collected:
                leftovers.append(name)
        active.clear()
        return leftovers

    def _poll(self, pending: List[str], active) -> None:
        now = time.monotonic()
        for name in list(active):
            handle, deadline = active[name]
            if handle.ready():
                del active[name]
                try:
                    _, shard, stats = handle.get()
                except Exception as exc:
                    self.writer.emit(
                        "shard_error",
                        benchmark=name,
                        configs=self.config_labels,
                        attempt=self.attempts[name],
                        mode="pool",
                        error=repr(exc),
                    )
                    self._retry_or_fail(name, pending)
                    continue
                self._fold(name, shard, stats, mode="pool")
            elif deadline is not None and now > deadline:
                # Abandon the in-flight call (its worker may be hung
                # or dead); the pool context cleans it up on exit.
                del active[name]
                self.writer.emit(
                    "shard_timeout",
                    benchmark=name,
                    configs=self.config_labels,
                    attempt=self.attempts[name],
                    mode="pool",
                    timeout=self.shard_timeout,
                )
                self._retry_or_fail(name, pending)

    def _retry_or_fail(self, name: str, pending: List[str]) -> None:
        if self.attempts[name] <= self.retries:
            delay = self.retry_backoff * (
                2 ** (self.attempts[name] - 1)
            )
            self.writer.emit(
                "shard_retry",
                benchmark=name,
                configs=self.config_labels,
                attempt=self.attempts[name] + 1,
                mode="pool",
                delay=delay,
            )
            if delay:
                time.sleep(delay)
            pending.append(name)
        else:
            self.failed.append(name)
            self.writer.emit(
                "shard_failed",
                benchmark=name,
                configs=self.config_labels,
                attempt=self.attempts[name],
                mode="pool",
                error="retries exhausted",
            )


def run_matrix_parallel(
    benchmarks: Iterable[str],
    configs: Mapping[str, ProcessorConfig],
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    workers: Optional[int] = None,
    *,
    shard_timeout: Optional[float] = None,
    retries: int = 2,
    retry_backoff: float = 0.1,
    telemetry=None,
    precompile: bool = True,
    backend: Optional[str] = None,
) -> Dict[str, Dict[str, SimResult]]:
    """Parallel :func:`repro.experiments.runner.run_matrix`.

    Returns ``{config_label: {benchmark: SimResult}}``. With
    ``workers=1`` (or a single benchmark) this degrades to the serial
    path without spawning processes.

    With *precompile* (the default on the pooled path), every
    benchmark's trace is compiled into packed columns **before** the
    pool forks: workers inherit the buffers copy-on-write and serve
    ``get_trace`` from memory instead of regenerating per process —
    and because shards are keyed by benchmark name (never pickled
    traces), the retry and serial-fallback paths reuse the same
    compiled entries. When a persistent trace store is active
    (:func:`repro.trace.tracestore.set_trace_store` or
    ``$REPRO_TRACE_STORE``), precompilation loads from and populates
    it.

    *shard_timeout* bounds each shard's wall-clock time, measured from
    submission (``None`` disables). Failed or timed-out shards are
    retried up to *retries* times with exponential backoff starting at
    *retry_backoff* seconds; shards that still fail are omitted from
    the result while all surviving shards are returned. *telemetry* is
    a :class:`~repro.experiments.telemetry.TelemetryWriter` or a JSONL
    path receiving the structured event stream. *backend* names the
    simulator backend forwarded to every cell (workers inherit it
    through the shard tuple, so pool, retry and serial-fallback paths
    all use the same core); the resolved name is recorded in the
    ``matrix_start`` telemetry event and on each fresh result's
    ``extra["backend"]``.
    """
    from repro.core.backend import resolve_backend

    benchmarks = list(benchmarks)
    labelled = list(configs.items())
    if workers is None:
        workers = min(len(benchmarks), multiprocessing.cpu_count())
    workers = max(1, workers)

    writer, owned = as_writer(telemetry)
    run = _MatrixRun(
        benchmarks, labelled, settings, writer,
        shard_timeout, retries, retry_backoff, backend,
    )
    started = time.perf_counter()
    parallel_path = workers > 1 and len(benchmarks) > 1
    writer.emit(
        "matrix_start",
        mode="parallel" if parallel_path else "serial",
        backend=resolve_backend(backend),
        benchmarks=len(benchmarks),
        configs=len(labelled),
        points=len(benchmarks) * len(labelled),
        workers=workers,
    )
    aborted = False
    try:
        if parallel_path and precompile:
            precompile_started = time.perf_counter()
            sources = _catalog.precompile(
                ((name, _runner._plan_for(name, settings).length)
                 for name in benchmarks),
                seed=settings.seed,
            )
            counts: Dict[str, int] = {}
            for source in sources.values():
                counts[source] = counts.get(source, 0) + 1
            writer.emit(
                "trace_precompile",
                benchmarks=len(sources),
                wall=time.perf_counter() - precompile_started,
                **counts,
            )
        if workers == 1 or len(benchmarks) <= 1:
            run.run_serial(benchmarks)
        else:
            run.run_parallel(workers)
    except (KeyboardInterrupt, SystemExit) as exc:
        # Interrupted mid-matrix (Ctrl-C, SIGTERM via SystemExit):
        # the pool context + join above already reaped every worker;
        # record the abort as a final telemetry event so a post-crash
        # reader sees *why* the stream stops, then re-raise.
        aborted = True
        done = len(
            {name for cells in run.out.values() for name in cells}
        )
        writer.emit(
            "matrix_abort",
            reason=type(exc).__name__,
            wall=time.perf_counter() - started,
            shards_done=done,
            shards_failed=len(run.failed),
            **run.totals,
        )
        raise
    finally:
        if not aborted:
            writer.emit(
                "matrix_finish",
                wall=time.perf_counter() - started,
                shards_ok=len(benchmarks) - len(run.failed),
                shards_failed=len(run.failed),
                failed=list(run.failed),
                **run.totals,
            )
        if owned:
            writer.close()
    return run.out
