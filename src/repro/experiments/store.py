"""Persistent, content-addressed store for simulation results.

The evaluation is a ~250-point (benchmark x configuration) matrix and
every figure driver re-derives overlapping subsets of it. The
in-process memo in :mod:`repro.experiments.runner` only helps within
one interpreter; this store persists :class:`~repro.core.result.SimResult`
records on disk so CI runs, CLI invocations and figure scripts all
share one warm cache.

Design:

* **Content-addressed keys.** An entry's filename is the SHA-256 of a
  canonical JSON encoding of ``(schema version, benchmark, settings,
  config key)``; any change to the experiment identity — including
  fields added to :class:`ExperimentSettings` later — lands on a new
  address and old entries simply stop matching.
* **Checksummed records.** Each record carries a SHA-256 over its
  payload. Truncated, bit-flipped or hand-edited records fail the
  check and are treated as absent (and unlinked), so corruption can
  only ever cost a re-simulation, never wrong results.
* **Schema versioning.** ``SCHEMA_VERSION`` is part of both the
  address and the record; bumping it orphans every old entry.
* **Atomic writes.** Records are written to a temporary file in the
  same directory and ``os.replace``d into place, so a crashed or
  parallel writer never publishes a half-written record.

The store is deliberately quiet: every failure mode (missing entry,
corrupt record, stale schema, unreadable directory) falls through to
re-simulation. Counters on the instance expose what happened for the
telemetry stream and the ``repro-experiments cache`` subcommand.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
from typing import Iterator, Optional, Tuple, Union

from repro.core.result import SimResult
from repro.experiments.export import result_from_record, result_to_record

#: Bump when the stored record layout or the meaning of any keyed
#: field changes; every existing entry is then silently invalidated.
#: v3: split-window sync-fabric knobs (link latency, bandwidth, memory
#: banks) joined the runner's config key — v2 entries stored every
#: fabric point of a split sweep under one colliding address.
SCHEMA_VERSION = 3

#: Environment variable naming the default store directory.
STORE_ENV_VAR = "REPRO_RESULT_STORE"


def default_store_path() -> str:
    """``$REPRO_RESULT_STORE`` or ``~/.cache/repro-results``."""
    env = os.environ.get(STORE_ENV_VAR)
    if env:
        return env
    return os.path.join(
        os.path.expanduser("~"), ".cache", "repro-results"
    )


def _canonical(value) -> str:
    """Deterministic JSON: sorted keys, no whitespace."""
    return json.dumps(
        value, sort_keys=True, separators=(",", ":"), default=str
    )


class ResultStore:
    """On-disk cache of :class:`SimResult` records under one root."""

    def __init__(self, root: Union[str, os.PathLike]) -> None:
        self.root = os.fspath(root)
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.corrupt_dropped = 0
        self.stale_dropped = 0

    # -- keying --------------------------------------------------------------

    def digest(
        self, benchmark: str, settings, config_key: Tuple
    ) -> str:
        """Content address of one (benchmark, settings, config) point."""
        identity = [
            SCHEMA_VERSION,
            benchmark,
            dataclasses.asdict(settings),
            list(config_key),
        ]
        return hashlib.sha256(
            _canonical(identity).encode("utf-8")
        ).hexdigest()

    def _path_for(self, digest: str) -> str:
        return os.path.join(
            self.root, f"v{SCHEMA_VERSION}", digest[:2],
            f"{digest}.json",
        )

    # -- read ----------------------------------------------------------------

    def load(
        self, benchmark: str, settings, config_key: Tuple
    ) -> Optional[SimResult]:
        """The stored result, or ``None`` (miss/corrupt/stale)."""
        path = self._path_for(
            self.digest(benchmark, settings, config_key)
        )
        try:
            with open(path, "r", encoding="utf-8") as handle:
                record = json.load(handle)
        except (OSError, ValueError):
            self.misses += 1
            return None
        result = self._validate(record, path)
        if result is None:
            self.misses += 1
            return None
        self.hits += 1
        return result

    def _validate(self, record, path: str) -> Optional[SimResult]:
        """Checked deserialisation; drops bad entries from disk."""
        if not isinstance(record, dict):
            self._drop(path, corrupt=True)
            return None
        if record.get("schema") != SCHEMA_VERSION:
            self._drop(path, corrupt=False)
            return None
        payload = record.get("payload")
        checksum = hashlib.sha256(
            _canonical(payload).encode("utf-8")
        ).hexdigest()
        if checksum != record.get("checksum"):
            self._drop(path, corrupt=True)
            return None
        try:
            return result_from_record(payload)
        except (KeyError, TypeError):
            # Field set drifted without a schema bump; treat as stale.
            self._drop(path, corrupt=False)
            return None

    def _drop(self, path: str, corrupt: bool) -> None:
        if corrupt:
            self.corrupt_dropped += 1
        else:
            self.stale_dropped += 1
        try:
            os.unlink(path)
        except OSError:
            pass

    # -- write ---------------------------------------------------------------

    def save(
        self,
        benchmark: str,
        settings,
        config_key: Tuple,
        result: SimResult,
    ) -> Optional[str]:
        """Persist *result*; returns the entry path (None on failure)."""
        digest = self.digest(benchmark, settings, config_key)
        payload = result_to_record(result)
        record = {
            "schema": SCHEMA_VERSION,
            "benchmark": benchmark,
            "settings": dataclasses.asdict(settings),
            "config": list(config_key),
            "checksum": hashlib.sha256(
                _canonical(payload).encode("utf-8")
            ).hexdigest(),
            "payload": payload,
        }
        path = self._path_for(digest)
        directory = os.path.dirname(path)
        try:
            os.makedirs(directory, exist_ok=True)
            fd, tmp_path = tempfile.mkstemp(
                dir=directory, suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    json.dump(record, handle)
                os.replace(tmp_path, path)
            except BaseException:
                try:
                    os.unlink(tmp_path)
                except OSError:
                    pass
                raise
        except OSError:
            # Unwritable store (read-only CI cache, full disk): the
            # simulation result is still returned to the caller.
            return None
        self.writes += 1
        return path

    # -- maintenance / introspection -----------------------------------------

    def entries(self) -> Iterator[str]:
        """Paths of every record currently in the store."""
        base = os.path.join(self.root, f"v{SCHEMA_VERSION}")
        if not os.path.isdir(base):
            return
        for shard in sorted(os.listdir(base)):
            shard_dir = os.path.join(base, shard)
            if not os.path.isdir(shard_dir):
                continue
            for name in sorted(os.listdir(shard_dir)):
                if name.endswith(".json"):
                    yield os.path.join(shard_dir, name)

    def __len__(self) -> int:
        return sum(1 for _ in self.entries())

    def size_bytes(self) -> int:
        total = 0
        for path in self.entries():
            try:
                total += os.path.getsize(path)
            except OSError:
                pass
        return total

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for path in list(self.entries()):
            try:
                os.unlink(path)
                removed += 1
            except OSError:
                pass
        return removed

    def stats(self) -> dict:
        """Session counters plus on-disk totals."""
        return {
            "path": self.root,
            "schema": SCHEMA_VERSION,
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "corrupt_dropped": self.corrupt_dropped,
            "stale_dropped": self.stale_dropped,
            "entries": len(self),
            "size_bytes": self.size_bytes(),
        }


# -- process-wide active store ----------------------------------------------

_active: Optional[ResultStore] = None
_explicitly_disabled = False


def set_store(
    store: Union[ResultStore, str, os.PathLike, None],
) -> Optional[ResultStore]:
    """Install the process-wide store (path or instance).

    ``set_store(None)`` disables persistence entirely, including the
    ``$REPRO_RESULT_STORE`` fallback, until the next ``set_store``.
    Returns the installed store (or ``None``).
    """
    global _active, _explicitly_disabled
    if store is None:
        _active = None
        _explicitly_disabled = True
    elif isinstance(store, ResultStore):
        _active = store
        _explicitly_disabled = False
    else:
        _active = ResultStore(store)
        _explicitly_disabled = False
    return _active


def active_store() -> Optional[ResultStore]:
    """The installed store, else one from ``$REPRO_RESULT_STORE``."""
    global _active
    if _active is None and not _explicitly_disabled:
        env = os.environ.get(STORE_ENV_VAR)
        if env:
            _active = ResultStore(env)
    return _active
