"""Structured JSONL telemetry for experiment runs.

Every long-running harness entry point (the parallel matrix runner,
``run_matrix``, the CLI artifact loop) can stream one JSON object per
line into a telemetry file. Each event carries at least:

``event``
    The event name, e.g. ``shard_start``, ``shard_finish``,
    ``shard_retry``, ``shard_timeout``, ``shard_failed``,
    ``serial_fallback``, ``matrix_start``, ``matrix_finish``
    (``matrix_abort`` when a run is interrupted), ``artifact_start``,
    ``artifact_finish``. The experiment service (:mod:`repro.service`)
    adds ``service_start``, ``job_submitted`` / ``job_recovered`` /
    ``job_coalesced`` / ``job_store_hit`` / ``job_rejected``,
    ``job_admitted`` / ``job_finished`` / ``job_failed`` and
    ``drain_start`` / ``drain_finish``; job events carry the
    scheduler's ``queue_depth`` at emission time.
``ts``
    Unix timestamp (``time.time()``) when the event was emitted.

Shard events add ``benchmark``, ``attempt`` and — on ``shard_finish``
— ``wall`` (seconds), ``worker`` (pid), the cache counters
``memory_hits`` / ``store_hits`` / ``simulations``, and the trace
acquisition split for that shard: ``trace_source`` (``generated`` /
``store_hit`` / ``inherited`` / ``memory`` / null) and ``trace_wall``
(seconds spent producing or loading traces and dependence analyses).
``matrix_finish`` carries the same counters aggregated over the whole
matrix, which is how "a warm re-run performed zero re-simulations" is
verified mechanically. The parallel runner additionally emits one
``trace_precompile`` event before forking, counting how many
benchmark traces came from the in-process memo, the persistent trace
store, or fresh generation.

The format is append-only and line-oriented so a crashed run leaves a
readable prefix; :func:`read_telemetry` skips any torn final line.
``repro-experiments status`` and ``tools/compare_runs.py --telemetry``
both consume it.
"""

from __future__ import annotations

import json
import os
import time
from typing import IO, Iterable, List, Optional, Tuple, Union

from repro.stats.summary import percentile


class TelemetryWriter:
    """Append-only JSONL event writer.

    With ``path=None`` every :meth:`emit` is a no-op, so callers can
    thread one writer through unconditionally. Lines are flushed as
    they are written: a concurrently-running ``status`` command (or a
    post-crash reader) always sees complete events.
    """

    def __init__(self, path: Optional[Union[str, os.PathLike]]) -> None:
        self.path = os.fspath(path) if path is not None else None
        self._handle: Optional[IO[str]] = None
        if self.path is not None:
            directory = os.path.dirname(self.path)
            if directory:
                os.makedirs(directory, exist_ok=True)
            self._handle = open(self.path, "a", encoding="utf-8")

    @property
    def enabled(self) -> bool:
        return self._handle is not None

    def emit(self, event: str, **fields) -> None:
        """Write one event line (silently dropped when disabled)."""
        if self._handle is None:
            return
        record = {"event": event, "ts": time.time()}
        record.update(fields)
        self._handle.write(
            json.dumps(record, sort_keys=True, default=str) + "\n"
        )
        self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "TelemetryWriter":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


def as_writer(
    telemetry: Union["TelemetryWriter", str, os.PathLike, None],
) -> Tuple["TelemetryWriter", bool]:
    """Coerce a writer-or-path into ``(writer, caller_owns_it)``.

    Paths produce a fresh writer the caller must close (``True``);
    existing writers (and ``None`` → disabled writer) are passed
    through (``False`` — whoever made them closes them).
    """
    if isinstance(telemetry, TelemetryWriter):
        return telemetry, False
    if telemetry is None:
        return TelemetryWriter(None), False
    return TelemetryWriter(telemetry), True


def read_telemetry(path: Union[str, os.PathLike]) -> List[dict]:
    """Parse a JSONL telemetry file; malformed lines are skipped."""
    events: List[dict] = []
    with open(os.fspath(path), "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue
            if isinstance(record, dict) and "event" in record:
                events.append(record)
    return events


def summarize_telemetry(events: Iterable[dict]) -> dict:
    """Aggregate counters over a telemetry event stream.

    Returns a flat dict: shard counts by outcome, aggregated cache
    counters (preferring ``matrix_finish`` totals, falling back to
    summing ``shard_finish`` events), and shard wall-time statistics.
    """
    events = list(events)
    by_name = {}
    for event in events:
        by_name.setdefault(event["event"], []).append(event)

    def _count(name: str) -> int:
        return len(by_name.get(name, ()))

    walls = [
        float(e["wall"]) for e in by_name.get("shard_finish", ())
        if "wall" in e
    ]
    finishes = by_name.get("matrix_finish", ())
    counters = {"memory_hits": 0, "store_hits": 0, "simulations": 0}
    source = finishes if finishes else by_name.get("shard_finish", ())
    for event in source:
        for key in counters:
            counters[key] += int(event.get(key, 0))

    trace_sources: dict = {}
    for event in by_name.get("shard_finish", ()):
        source = event.get("trace_source")
        if source:
            trace_sources[source] = trace_sources.get(source, 0) + 1
    if finishes:
        trace_wall = sum(
            float(e.get("trace_wall", 0)) for e in finishes
        )
    else:
        trace_wall = sum(
            float(e.get("trace_wall", 0))
            for e in by_name.get("shard_finish", ())
        )

    depths = [
        int(e["queue_depth"]) for e in events if "queue_depth" in e
    ]
    service = {
        "jobs_submitted": _count("job_submitted") + _count("job_recovered"),
        "jobs_recovered": _count("job_recovered"),
        "jobs_finished": _count("job_finished"),
        "jobs_failed": _count("job_failed"),
        "jobs_rejected": _count("job_rejected"),
        "coalesce_hits": _count("job_coalesced"),
        "store_instant_hits": _count("job_store_hit"),
        "aborts": _count("matrix_abort"),
        "drains": _count("drain_finish"),
        "queue_depth_last": depths[-1] if depths else 0,
        "queue_depth_max": max(depths) if depths else 0,
    }

    cached = counters["memory_hits"] + counters["store_hits"]
    total = cached + counters["simulations"]
    summary = {
        "events": len(events),
        "matrix_runs": len(finishes),
        "shards_started": _count("shard_start"),
        "shards_finished": _count("shard_finish"),
        "shard_retries": _count("shard_retry"),
        "shard_timeouts": _count("shard_timeout"),
        "shards_failed": _count("shard_failed"),
        "serial_fallbacks": _count("serial_fallback"),
        "cache_hit_rate": (cached / total) if total else 0.0,
        "wall_total": sum(walls),
        "wall_p50": percentile(walls, 0.5) if walls else 0.0,
        "wall_p95": percentile(walls, 0.95) if walls else 0.0,
        "wall_max": max(walls) if walls else 0.0,
        "trace_wall": trace_wall,
        "trace_sources": trace_sources,
    }
    summary.update(counters)
    summary.update(service)
    return summary


def render_summary(summary: dict) -> str:
    """Human-readable block for ``repro-experiments status``."""
    lines = [
        f"events             {summary['events']:,}",
        f"matrix runs        {summary['matrix_runs']}",
        (
            f"shards             {summary['shards_finished']} finished / "
            f"{summary['shards_started']} started"
        ),
        (
            f"faults             {summary['shard_retries']} retries, "
            f"{summary['shard_timeouts']} timeouts, "
            f"{summary['shards_failed']} failed, "
            f"{summary['serial_fallbacks']} serial fallbacks"
        ),
        (
            f"cache              {summary['memory_hits']} memory + "
            f"{summary['store_hits']} store hits, "
            f"{summary['simulations']} simulated "
            f"({summary['cache_hit_rate']:.1%} hit rate)"
        ),
        (
            f"shard wall time    total {summary['wall_total']:.2f}s, "
            f"p50 {summary['wall_p50']:.2f}s, "
            f"p95 {summary['wall_p95']:.2f}s, "
            f"max {summary['wall_max']:.2f}s"
        ),
    ]
    sources = summary.get("trace_sources") or {}
    if sources or summary.get("trace_wall"):
        shards = ", ".join(
            f"{count} {source}"
            for source, count in sorted(sources.items())
        ) or "none"
        lines.append(
            f"traces             {shards} "
            f"(acquisition {summary.get('trace_wall', 0.0):.2f}s)"
        )
    if any(
        summary.get(key)
        for key in (
            "jobs_submitted", "jobs_finished", "jobs_failed",
            "jobs_rejected", "coalesce_hits", "store_instant_hits",
            "drains",
        )
    ):
        lines.append(
            f"service jobs       {summary.get('jobs_submitted', 0)} "
            f"submitted ({summary.get('jobs_recovered', 0)} recovered), "
            f"{summary.get('jobs_finished', 0)} finished, "
            f"{summary.get('jobs_failed', 0)} failed, "
            f"{summary.get('jobs_rejected', 0)} rejected"
        )
        lines.append(
            f"service dedup      {summary.get('coalesce_hits', 0)} "
            f"coalesce hits, {summary.get('store_instant_hits', 0)} "
            f"instant store hits"
        )
        lines.append(
            f"service queue      depth last "
            f"{summary.get('queue_depth_last', 0)}, "
            f"max {summary.get('queue_depth_max', 0)}, "
            f"{summary.get('drains', 0)} drains, "
            f"{summary.get('aborts', 0)} aborts"
        )
    return "\n".join(lines)
