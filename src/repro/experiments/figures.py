"""Regenerates the paper's figures (1 through 7) as text reports.

Each driver simulates the configurations the figure compares and prints
the same per-benchmark series the paper plots, plus the suite geometric
means quoted in the text.
"""

from __future__ import annotations

from typing import Dict, List

from repro.config.presets import (
    continuous_window_128,
    continuous_window_64,
    split_window,
)
from repro.config.processor import SchedulingModel, SpeculationPolicy
from repro.experiments.paper_data import PAPER_SUMMARY
from repro.experiments.report import ExperimentReport
from repro.experiments.runner import (
    DEFAULT_SETTINGS,
    ExperimentSettings,
    run_benchmark,
)
from repro.stats.summary import geometric_mean
from repro.workloads.spec95 import (
    ALL_BENCHMARKS,
    FP_BENCHMARKS,
    INT_BENCHMARKS,
)

_NAS = SchedulingModel.NAS
_AS = SchedulingModel.AS
_NO = SpeculationPolicy.NO
_NAV = SpeculationPolicy.NAIVE
_SEL = SpeculationPolicy.SELECTIVE
_STORE = SpeculationPolicy.STORE_BARRIER
_SYNC = SpeculationPolicy.SYNC
_ORACLE = SpeculationPolicy.ORACLE


def _suite_means(values: Dict[str, float], benchmarks) -> Dict[str, float]:
    ints = [values[b] for b in benchmarks if b in INT_BENCHMARKS]
    fps = [values[b] for b in benchmarks if b in FP_BENCHMARKS]
    means = {}
    if ints:
        means["int"] = geometric_mean(ints)
    if fps:
        means["fp"] = geometric_mean(fps)
    return means


def figure1(
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    benchmarks=ALL_BENCHMARKS,
) -> ExperimentReport:
    """Figure 1: load/store parallelism potential (NAS/NO vs NAS/ORACLE).

    Reports IPC at 64- and 128-entry windows and the ORACLE-over-NO
    speedup per benchmark — the paper's headline result that the payoff
    of exploiting load/store parallelism grows with window size.
    """
    cfg = {
        "w64 NO": continuous_window_64(_NAS, _NO),
        "w64 ORACLE": continuous_window_64(_NAS, _ORACLE),
        "w128 NO": continuous_window_128(_NAS, _NO),
        "w128 ORACLE": continuous_window_128(_NAS, _ORACLE),
    }
    rows = []
    data: Dict[str, Dict[str, float]] = {}
    speedups64: Dict[str, float] = {}
    speedups128: Dict[str, float] = {}
    for name in benchmarks:
        ipc = {
            label: run_benchmark(name, config, settings).ipc
            for label, config in cfg.items()
        }
        speedups64[name] = ipc["w64 ORACLE"] / ipc["w64 NO"]
        speedups128[name] = ipc["w128 ORACLE"] / ipc["w128 NO"]
        rows.append((
            name,
            f"{ipc['w64 NO']:.2f}", f"{ipc['w64 ORACLE']:.2f}",
            f"{(speedups64[name] - 1) * 100:+.0f}%",
            f"{ipc['w128 NO']:.2f}", f"{ipc['w128 ORACLE']:.2f}",
            f"{(speedups128[name] - 1) * 100:+.0f}%",
        ))
        data[name] = dict(ipc)
    means = _suite_means(speedups128, benchmarks)
    notes = [
        f"128-entry speedup (geo-mean): "
        + ", ".join(
            f"{suite} {(v - 1) * 100:+.1f}% "
            f"(paper {PAPER_SUMMARY[f'oracle_over_no_{suite}']:+.1f}%)"
            for suite, v in means.items()
        ),
    ]
    return ExperimentReport(
        experiment="Figure 1",
        title=("IPC with and without exploiting load/store parallelism "
               "(NAS/NO vs NAS/ORACLE)"),
        headers=("program", "64 NO", "64 ORA", "spd64",
                 "128 NO", "128 ORA", "spd128"),
        rows=rows,
        notes=notes,
        data={
            "ipc": data,
            "speedup64": speedups64,
            "speedup128": speedups128,
            "means128": means,
        },
    )


def figure2(
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    benchmarks=ALL_BENCHMARKS,
) -> ExperimentReport:
    """Figure 2: naive memory dependence speculation without an
    address-based scheduler (NAS/NO vs NAS/ORACLE vs NAS/NAV)."""
    cfg = {
        "NO": continuous_window_128(_NAS, _NO),
        "ORACLE": continuous_window_128(_NAS, _ORACLE),
        "NAV": continuous_window_128(_NAS, _NAV),
    }
    rows = []
    data: Dict[str, Dict[str, float]] = {}
    nav_speedup: Dict[str, float] = {}
    for name in benchmarks:
        ipc = {
            label: run_benchmark(name, config, settings).ipc
            for label, config in cfg.items()
        }
        nav_speedup[name] = ipc["NAV"] / ipc["NO"]
        rows.append((
            name, f"{ipc['NO']:.2f}", f"{ipc['ORACLE']:.2f}",
            f"{ipc['NAV']:.2f}",
            f"{(nav_speedup[name] - 1) * 100:+.0f}%",
        ))
        data[name] = dict(ipc)
    means = _suite_means(nav_speedup, benchmarks)
    notes = [
        "NAV-over-NO speedup (geo-mean): "
        + ", ".join(
            f"{suite} {(v - 1) * 100:+.1f}% "
            f"(paper {PAPER_SUMMARY[f'nav_over_no_{suite}']:+.1f}%)"
            for suite, v in means.items()
        ),
    ]
    return ExperimentReport(
        experiment="Figure 2",
        title="Performance with naive speculation, no address scheduler",
        headers=("program", "NAS/NO", "NAS/ORACLE", "NAS/NAV", "NAV spd"),
        rows=rows,
        notes=notes,
        data={"ipc": data, "nav_speedup": nav_speedup, "means": means},
    )


def figure3(
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    benchmarks=ALL_BENCHMARKS,
) -> ExperimentReport:
    """Figure 3: AS/NAV relative to AS/NO at 0/1/2-cycle scheduler
    latency (part a), plus AS/NO base IPC (part b)."""
    latencies = (0, 1, 2)
    rows = []
    rel: Dict[int, Dict[str, float]] = {lat: {} for lat in latencies}
    base_ipc: Dict[str, float] = {}
    for name in benchmarks:
        cells: List[object] = [name]
        for lat in latencies:
            r_no = run_benchmark(
                name, continuous_window_128(_AS, _NO, lat), settings
            )
            r_nav = run_benchmark(
                name, continuous_window_128(_AS, _NAV, lat), settings
            )
            rel[lat][name] = r_nav.ipc / r_no.ipc
            cells.append(f"{(rel[lat][name] - 1) * 100:+.1f}%")
            if lat == 0:
                base_ipc[name] = r_no.ipc
        cells.append(f"{base_ipc[name]:.2f}")
        rows.append(tuple(cells))
    means0 = _suite_means(rel[0], benchmarks)
    notes = [
        "0-cycle AS/NAV-over-AS/NO (geo-mean): "
        + ", ".join(
            f"{suite} {(v - 1) * 100:+.1f}% "
            f"(paper {PAPER_SUMMARY[f'asnav_over_asno_{suite}']:+.1f}%)"
            for suite, v in means0.items()
        ),
        "Each latency column compares against AS/NO at the same latency "
        "(the paper's per-bar base).",
    ]
    return ExperimentReport(
        experiment="Figure 3",
        title=("Naive speculation with an address-based scheduler, as a "
               "function of scheduler latency"),
        headers=("program", "0cy", "1cy", "2cy", "AS/NO-0cy IPC"),
        rows=rows,
        notes=notes,
        data={"relative": rel, "base_ipc": base_ipc, "means0": means0},
    )


def figure4(
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    benchmarks=ALL_BENCHMARKS,
) -> ExperimentReport:
    """Figure 4: oracle disambiguation vs address-based scheduling.

    All bars are relative to AS/NO with a 0-cycle scheduler."""
    base_cfg = continuous_window_128(_AS, _NO, 0)
    oracle_cfg = continuous_window_128(_NAS, _ORACLE)
    rows = []
    rel: Dict[str, Dict[str, float]] = {
        "NAS/ORACLE": {}, "AS/NAV 0cy": {}, "AS/NAV 1cy": {},
        "AS/NAV 2cy": {},
    }
    for name in benchmarks:
        base = run_benchmark(name, base_cfg, settings).ipc
        rel["NAS/ORACLE"][name] = (
            run_benchmark(name, oracle_cfg, settings).ipc / base
        )
        for lat in (0, 1, 2):
            cfg = continuous_window_128(_AS, _NAV, lat)
            rel[f"AS/NAV {lat}cy"][name] = (
                run_benchmark(name, cfg, settings).ipc / base
            )
        rows.append((
            name,
            *(f"{(rel[k][name] - 1) * 100:+.1f}%" for k in rel),
        ))
    notes = [
        "Positive = faster than AS/NO with a 0-cycle scheduler. "
        "The paper's observation: 0-cycle AS/NAV tracks NAS/ORACLE; "
        "1+ cycles of scheduler latency erase the advantage.",
    ]
    return ExperimentReport(
        experiment="Figure 4",
        title=("Oracle disambiguation vs address-based scheduling "
               "(base: AS/NO 0-cycle)"),
        headers=("program", "NAS/ORACLE", "AS/NAV 0cy", "AS/NAV 1cy",
                 "AS/NAV 2cy"),
        rows=rows,
        notes=notes,
        data={"relative": rel},
    )


def _policy_vs_nav(
    policy: SpeculationPolicy,
    settings: ExperimentSettings,
    benchmarks,
) -> Dict[str, Dict[str, float]]:
    nav_cfg = continuous_window_128(_NAS, _NAV)
    pol_cfg = continuous_window_128(_NAS, policy)
    oracle_cfg = continuous_window_128(_NAS, _ORACLE)
    rel: Dict[str, float] = {}
    oracle_rel: Dict[str, float] = {}
    miss: Dict[str, float] = {}
    for name in benchmarks:
        nav_ipc = run_benchmark(name, nav_cfg, settings).ipc
        result = run_benchmark(name, pol_cfg, settings)
        rel[name] = result.ipc / nav_ipc
        miss[name] = result.misspeculation_rate * 100
        oracle_rel[name] = (
            run_benchmark(name, oracle_cfg, settings).ipc / nav_ipc
        )
    return {"relative": rel, "oracle": oracle_rel, "miss": miss}


def figure5(
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    benchmarks=ALL_BENCHMARKS,
) -> ExperimentReport:
    """Figure 5: selective and store-barrier speculation vs NAS/NAV."""
    sel = _policy_vs_nav(_SEL, settings, benchmarks)
    store = _policy_vs_nav(_STORE, settings, benchmarks)
    rows = []
    for name in benchmarks:
        rows.append((
            name,
            f"{(sel['relative'][name] - 1) * 100:+.1f}%",
            f"{(store['relative'][name] - 1) * 100:+.1f}%",
            f"{(sel['oracle'][name] - 1) * 100:+.1f}%",
        ))
    sel_means = _suite_means(sel["relative"], benchmarks)
    store_means = _suite_means(store["relative"], benchmarks)
    notes = [
        "Base is NAS/NAV; ORACLE column shows the headroom. "
        "The paper's finding: neither technique is robust — gains in "
        "some programs, losses in others, never close to oracle.",
        "Geo-means vs NAV: SEL "
        + ", ".join(f"{s} {(v-1)*100:+.1f}%" for s, v in sel_means.items())
        + "; STORE "
        + ", ".join(
            f"{s} {(v-1)*100:+.1f}%" for s, v in store_means.items()
        ),
    ]
    return ExperimentReport(
        experiment="Figure 5",
        title=("Selective (NAS/SEL) and store-barrier (NAS/STORE) "
               "speculation, relative to NAS/NAV"),
        headers=("program", "SEL", "STORE", "ORACLE headroom"),
        rows=rows,
        notes=notes,
        data={"sel": sel, "store": store},
    )


def figure6(
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    benchmarks=ALL_BENCHMARKS,
) -> ExperimentReport:
    """Figure 6: speculation/synchronization (NAS/SYNC) vs NAS/NAV."""
    sync = _policy_vs_nav(_SYNC, settings, benchmarks)
    rows = []
    for name in benchmarks:
        rows.append((
            name,
            f"{(sync['relative'][name] - 1) * 100:+.1f}%",
            f"{(sync['oracle'][name] - 1) * 100:+.1f}%",
            f"{sync['miss'][name]:.4f}%",
        ))
    means = _suite_means(sync["relative"], benchmarks)
    oracle_means = _suite_means(sync["oracle"], benchmarks)
    notes = [
        "SYNC-over-NAV (geo-mean): "
        + ", ".join(
            f"{suite} {(v - 1) * 100:+.1f}% "
            f"(paper {PAPER_SUMMARY[f'sync_over_nav_{suite}']:+.1f}%)"
            for suite, v in means.items()
        ),
        "ORACLE-over-NAV (geo-mean): "
        + ", ".join(
            f"{suite} {(v - 1) * 100:+.1f}% "
            f"(paper {PAPER_SUMMARY[f'oracle_over_nav_{suite}']:+.1f}%)"
            for suite, v in oracle_means.items()
        ),
    ]
    return ExperimentReport(
        experiment="Figure 6",
        title="Speculation/synchronization (NAS/SYNC) relative to NAS/NAV",
        headers=("program", "SYNC", "ORACLE", "SYNC miss-spec"),
        rows=rows,
        notes=notes,
        data={"sync": sync, "means": means, "oracle_means": oracle_means},
    )


def figure7(
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    benchmarks=("129.compress", "126.gcc", "104.hydro2d", "102.swim"),
) -> ExperimentReport:
    """Figure 7 / Section 3.7: split vs continuous window.

    Shows that a 0-cycle address-based scheduler removes essentially all
    miss-speculations under a continuous window but not under a split
    window, where loads can compute addresses before older (cross-unit)
    stores have fetched.
    """
    cont_cfg = continuous_window_128(_AS, _NAV, 0)
    split_cfg = split_window(_AS, _NAV, 0)
    rows = []
    data: Dict[str, Dict[str, float]] = {}
    for name in benchmarks:
        cont = run_benchmark(name, cont_cfg, settings)
        spl = run_benchmark(name, split_cfg, settings)
        rows.append((
            name,
            f"{cont.misspeculation_rate * 100:.2f}%",
            f"{spl.misspeculation_rate * 100:.2f}%",
            f"{cont.ipc:.2f}", f"{spl.ipc:.2f}",
        ))
        data[name] = {
            "cont_miss": cont.misspeculation_rate,
            "split_miss": spl.misspeculation_rate,
            "cont_ipc": cont.ipc,
            "split_ipc": spl.ipc,
        }
    notes = [
        "Both machines use a 0-cycle address-based scheduler with naive "
        "speculation (AS/NAV). The split window cannot inspect store "
        "addresses that have not been fetched yet (Figure 7's loop).",
    ]
    return ExperimentReport(
        experiment="Figure 7",
        title=("Miss-speculation under continuous vs split windows "
               "(AS/NAV, 0-cycle scheduler)"),
        headers=("program", "cont miss", "split miss",
                 "cont IPC", "split IPC"),
        rows=rows,
        notes=notes,
        data=data,
    )


def figure7_sweep(
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    benchmarks=("129.compress", "126.gcc", "104.hydro2d", "102.swim"),
    latencies=(0, 1, 2),
    bandwidths=(0, 4, 2, 1),
) -> ExperimentReport:
    """Figure 7 extended: scheduler latency x sync-fabric bandwidth.

    The paper stops at "a split window miss-speculates even with a
    0-cycle scheduler". This sweep asks how much worse a *realistic*
    cross-window fabric makes it: every cell runs the split machine
    (AS/NAV, 4 units) at one (scheduler latency, fabric bandwidth)
    point. Bandwidth 0 means unbounded (the legacy idealization);
    bounded-bandwidth cells are modelled by the event-driven backend,
    where a posted store address travels as a message and a dependent
    load that issues before the message arrives is a miss-speculation
    the continuous machine could never commit.

    Each bandwidth column's miss-speculation counts must be
    non-decreasing in scheduler latency within the fuzzer's calibrated
    R6 tolerance — ``data["monotonic"]`` records the per-column check
    that ``tests/test_figure7_sweep.py`` asserts.
    """
    from repro.check.fuzz import SPLIT_MONO_TOLERANCE

    rows = []
    cells: Dict[str, Dict] = {}
    missp_by_bw: Dict[int, List[int]] = {bw: [] for bw in bandwidths}
    for bandwidth in bandwidths:
        for latency in latencies:
            config = split_window(
                _AS, _NAV, latency, sync_bandwidth=bandwidth
            )
            ipcs: Dict[str, float] = {}
            rates: Dict[str, float] = {}
            missp = loads = cycles = 0
            for name in benchmarks:
                r = run_benchmark(name, config, settings)
                ipcs[name] = r.ipc
                rates[name] = r.misspeculation_rate
                missp += r.misspeculations
                loads += r.committed_loads
                cycles += r.cycles
            missp_by_bw[bandwidth].append(missp)
            rate = missp / loads if loads else 0.0
            bw_label = "inf" if bandwidth == 0 else str(bandwidth)
            rows.append((
                f"{latency}cy", bw_label,
                f"{rate * 100:.2f}%",
                f"{geometric_mean(list(ipcs.values())):.2f}",
                missp, cycles,
            ))
            cells[f"lat{latency}_bw{bw_label}"] = {
                "latency": latency,
                "bandwidth": bandwidth,
                "misspeculations": missp,
                "rate": rate,
                "ipc": ipcs,
                "rates": rates,
            }
    floor = 1.0 - SPLIT_MONO_TOLERANCE
    monotonic = {
        ("inf" if bw == 0 else str(bw)): all(
            series[i + 1] >= series[i] * floor
            for i in range(len(series) - 1)
        )
        for bw, series in missp_by_bw.items()
    }
    notes = [
        "Split window, 4 units, AS/NAV. Bandwidth = posted-address "
        "messages the sync fabric delivers per cycle (inf = the "
        "legacy idealization; bounded cells run on the event-driven "
        "backend).",
        "Miss-speculations per column are non-decreasing in scheduler "
        f"latency within the R6 tolerance: {monotonic}",
    ]
    return ExperimentReport(
        experiment="Figure 7 sweep",
        title=("Split-window miss-speculation vs scheduler latency "
               "and sync-fabric bandwidth (AS/NAV)"),
        headers=("sched lat", "fabric b/w", "miss rate",
                 "IPC (gmean)", "miss-specs", "cycles"),
        rows=rows,
        notes=notes,
        data={
            "latencies": list(latencies),
            "bandwidths": list(bandwidths),
            "cells": cells,
            "monotonic": monotonic,
            "tolerance": SPLIT_MONO_TOLERANCE,
        },
    )


def summary_findings(
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    benchmarks=ALL_BENCHMARKS,
) -> ExperimentReport:
    """Section 4's quantitative findings, measured vs paper."""
    cfgs = {
        "NAS/NO": continuous_window_128(_NAS, _NO),
        "NAS/NAV": continuous_window_128(_NAS, _NAV),
        "NAS/SYNC": continuous_window_128(_NAS, _SYNC),
        "NAS/ORACLE": continuous_window_128(_NAS, _ORACLE),
        "AS/NO": continuous_window_128(_AS, _NO, 0),
        "AS/NAV": continuous_window_128(_AS, _NAV, 0),
    }
    ipc = {
        label: {
            name: run_benchmark(name, config, settings).ipc
            for name in benchmarks
        }
        for label, config in cfgs.items()
    }

    def mean_speedup(num: str, den: str, suite_list) -> float:
        ratios = [
            ipc[num][b] / ipc[den][b]
            for b in benchmarks if b in suite_list
        ]
        return (geometric_mean(ratios) - 1) * 100

    rows = []
    data = {}
    for key, num, den in (
        ("oracle_over_no", "NAS/ORACLE", "NAS/NO"),
        ("nav_over_no", "NAS/NAV", "NAS/NO"),
        ("asnav_over_asno", "AS/NAV", "AS/NO"),
        ("sync_over_nav", "NAS/SYNC", "NAS/NAV"),
        ("oracle_over_nav", "NAS/ORACLE", "NAS/NAV"),
    ):
        for suite, members in (("int", INT_BENCHMARKS),
                               ("fp", FP_BENCHMARKS)):
            measured = mean_speedup(num, den, members)
            paper = PAPER_SUMMARY[f"{key}_{suite}"]
            rows.append((
                f"{num} over {den}", suite,
                f"{measured:+.1f}%", f"{paper:+.1f}%",
            ))
            data[f"{key}_{suite}"] = {
                "measured": measured, "paper": paper,
            }
    return ExperimentReport(
        experiment="Summary",
        title="Section 4 average speedups (geo-mean), measured vs paper",
        headers=("comparison", "suite", "measured", "paper"),
        rows=rows,
        data=data,
    )
