"""Ablation studies for design choices DESIGN.md calls out.

These go beyond the paper's figures:

* **recovery** — squash invalidation (the paper's model) vs selective
  invalidation (its Section 2 alternative) under naive speculation;
* **predictors** — the paper's MDPT/synonym synchronization vs the
  store-set predictor of its reference [4], plus MDPT capacity;
* **window sweep** — extends Figure 1's 64/128 comparison to 32..256
  entries.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict

from repro.config.presets import continuous_window_128, split_window
from repro.config.processor import (
    SchedulingModel,
    SpeculationPolicy,
    WindowConfig,
)
from repro.experiments.report import ExperimentReport
from repro.experiments.runner import (
    DEFAULT_SETTINGS,
    ExperimentSettings,
    run_benchmark,
)
from repro.stats.summary import geometric_mean
_NAS = SchedulingModel.NAS

_ABLATION_BENCHES = (
    "126.gcc", "129.compress", "134.perl",
    "104.hydro2d", "103.su2cor", "102.swim",
)


def ablation_recovery(
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    benchmarks=_ABLATION_BENCHES,
) -> ExperimentReport:
    """Squash vs selective invalidation under naive speculation."""
    squash_cfg = continuous_window_128(_NAS, SpeculationPolicy.NAIVE)
    selective_cfg = continuous_window_128(
        _NAS, SpeculationPolicy.NAIVE, recovery="selective"
    )
    oracle_cfg = continuous_window_128(_NAS, SpeculationPolicy.ORACLE)
    rows = []
    data: Dict[str, Dict[str, float]] = {}
    for name in benchmarks:
        squash = run_benchmark(name, squash_cfg, settings)
        selective = run_benchmark(name, selective_cfg, settings)
        oracle = run_benchmark(name, oracle_cfg, settings)
        rows.append((
            name,
            f"{squash.ipc:.2f}", f"{selective.ipc:.2f}",
            f"{oracle.ipc:.2f}",
            f"{(selective.ipc / squash.ipc - 1) * 100:+.1f}%",
        ))
        data[name] = {
            "squash": squash.ipc,
            "selective": selective.ipc,
            "oracle": oracle.ipc,
        }
    return ExperimentReport(
        experiment="Ablation A1",
        title=("Miss-speculation recovery: squash vs selective "
               "invalidation (NAS/NAV)"),
        headers=("program", "squash", "selective", "oracle", "gain"),
        rows=rows,
        notes=[
            "Section 2 of the paper: selective invalidation shrinks the "
            "work lost per miss-speculation to the load's forward "
            "slice. With it, naive speculation approaches the oracle — "
            "which is why the paper treats recovery cost, not detection, "
            "as naive speculation's real problem.",
        ],
        data=data,
    )


def ablation_predictors(
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    benchmarks=_ABLATION_BENCHES,
) -> ExperimentReport:
    """MDPT/synonyms vs store sets; MDPT capacity sensitivity."""
    configs = {
        "SYNC 4K": continuous_window_128(_NAS, SpeculationPolicy.SYNC),
        "SYNC 256": continuous_window_128(
            _NAS, SpeculationPolicy.SYNC, predictor_entries=256
        ),
        "SSET 4K": continuous_window_128(
            _NAS, SpeculationPolicy.STORE_SETS
        ),
    }
    nav_cfg = continuous_window_128(_NAS, SpeculationPolicy.NAIVE)
    rows = []
    data: Dict[str, Dict[str, float]] = {}
    for name in benchmarks:
        nav = run_benchmark(name, nav_cfg, settings)
        cells = [name]
        record: Dict[str, float] = {"nav": nav.ipc}
        for label, config in configs.items():
            result = run_benchmark(name, config, settings)
            record[label] = result.ipc
            record[f"{label} miss"] = result.misspeculation_rate
            cells.append(f"{(result.ipc / nav.ipc - 1) * 100:+.1f}%")
        rows.append(tuple(cells))
        data[name] = record
    return ExperimentReport(
        experiment="Ablation A2",
        title=("Dependence predictors vs NAS/NAV: MDPT (4K / 256 "
               "entries) and store sets"),
        headers=("program", "SYNC 4K", "SYNC 256", "SSET 4K"),
        rows=rows,
        notes=[
            "Store sets (Chrysos & Emer, the paper's [4]) and the MDPT "
            "synchronize the same dependences; with our static-pair "
            "counts, even a 256-entry MDPT rarely aliases.",
        ],
        data=data,
    )


def ablation_squash_penalty(
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    benchmarks=_ABLATION_BENCHES,
    penalties=(2, 4, 8, 16),
) -> ExperimentReport:
    """Naive speculation's sensitivity to the squash refill penalty.

    Section 2 decomposes the miss-speculation penalty into lost work,
    invalidation time, and opportunity cost; this sweep varies the
    refill component and shows NAV degrading while ORACLE (which never
    squashes) is untouched.
    """
    rows = []
    data: Dict[int, Dict[str, float]] = {}
    oracle_cfg = continuous_window_128(_NAS, SpeculationPolicy.ORACLE)
    for penalty in penalties:
        nav_cfg = continuous_window_128(
            _NAS, SpeculationPolicy.NAIVE,
            squash_refill_penalty=penalty,
        )
        ratios = []
        for name in benchmarks:
            nav = run_benchmark(name, nav_cfg, settings)
            oracle = run_benchmark(name, oracle_cfg, settings)
            ratios.append(nav.ipc / oracle.ipc)
        mean = geometric_mean(ratios)
        data[penalty] = {"nav_vs_oracle": mean}
        rows.append((penalty, f"{mean:.3f}"))
    return ExperimentReport(
        experiment="Ablation A4",
        title=("NAS/NAV performance (relative to NAS/ORACLE) vs squash "
               "refill penalty"),
        headers=("refill cycles", "NAV/ORACLE"),
        rows=rows,
        notes=[
            "The cheaper recovery is, the closer naive speculation gets "
            "to perfect dependence knowledge — the same conclusion the "
            "selective-invalidation ablation reaches from the other "
            "direction.",
        ],
        data=data,
    )


def ablation_split_geometry(
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    benchmarks=("129.compress", "126.gcc", "104.hydro2d"),
    unit_counts=(2, 4, 8),
) -> ExperimentReport:
    """Section 3.7's effect vs the degree of window distribution.

    More (smaller) sub-windows mean more cross-unit dependences whose
    store addresses are invisible at load-issue time — the split-window
    miss-speculation rate should grow with the unit count.
    """
    rows = []
    data: Dict[int, float] = {}
    for units in unit_counts:
        task_size = max(8, 128 // units)
        config = split_window(
            SchedulingModel.AS, SpeculationPolicy.NAIVE,
            num_units=units, task_size=task_size,
        )
        rates = []
        for name in benchmarks:
            result = run_benchmark(name, config, settings)
            rates.append(result.misspeculation_rate)
        mean_rate = sum(rates) / len(rates)
        data[units] = mean_rate
        rows.append((
            f"{units} x {task_size}",
            f"{mean_rate * 100:.2f}%",
        ))
    return ExperimentReport(
        experiment="Ablation A5",
        title=("Split-window miss-speculation rate vs number of "
               "sub-windows (AS/NAV, 0-cycle scheduler)"),
        headers=("units x task", "miss-spec rate"),
        rows=rows,
        notes=[
            "The continuous window (1 unit, in effect) sits at zero; "
            "distribution is what re-introduces miss-speculation even "
            "with instant address inspection.",
        ],
        data=data,
    )


def ablation_window(
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    benchmarks=_ABLATION_BENCHES,
    sizes=(32, 64, 128, 256),
) -> ExperimentReport:
    """Oracle-over-NO speedup as a function of window size."""
    rows = []
    data: Dict[int, float] = {}
    for size in sizes:
        scale = max(1, size // 32)
        window = WindowConfig(
            size=size,
            issue_width=min(8, 2 * scale),
            lsq_size=size,
            lsq_input_ports=min(4, scale),
            lsq_output_ports=min(4, scale),
            memory_ports=min(4, scale),
            fu_copies=min(8, 2 * scale),
            store_buffer_size=size,
        )
        ratios = []
        for name in benchmarks:
            no_cfg = replace(
                continuous_window_128(_NAS, SpeculationPolicy.NO),
                window=window,
            )
            oracle_cfg = replace(
                continuous_window_128(_NAS, SpeculationPolicy.ORACLE),
                window=window,
            )
            no = run_benchmark(name, no_cfg, settings)
            oracle = run_benchmark(name, oracle_cfg, settings)
            ratios.append(oracle.ipc / no.ipc)
        mean = geometric_mean(ratios)
        data[size] = mean
        rows.append((size, f"{(mean - 1) * 100:+.1f}%"))
    return ExperimentReport(
        experiment="Ablation A3",
        title=("Load/store-parallelism payoff vs window size "
               "(oracle-over-NO geo-mean)"),
        headers=("window", "oracle speedup"),
        rows=rows,
        notes=[
            "Figure 1's observation extended: the more stores a window "
            "holds, the more false dependences a no-speculation policy "
            "suffers — the payoff keeps growing with window size.",
        ],
        data=data,
    )
