"""Experiment harness: regenerates every table and figure of the paper."""

from repro.experiments.runner import (
    CacheStats,
    ExperimentSettings,
    cache_stats,
    run_benchmark,
    run_benchmark_seeds,
    run_matrix,
    clear_results,
)
from repro.experiments.store import (
    ResultStore,
    active_store,
    set_store,
)
from repro.experiments.telemetry import (
    TelemetryWriter,
    read_telemetry,
    summarize_telemetry,
)
from repro.experiments.tables import (
    table1,
    table3,
    table4,
    table_stalls,
)
from repro.experiments.figures import (
    figure1,
    figure2,
    figure3,
    figure4,
    figure5,
    figure6,
    figure7,
    summary_findings,
)

__all__ = [
    "CacheStats",
    "ExperimentSettings",
    "ResultStore",
    "TelemetryWriter",
    "active_store",
    "cache_stats",
    "read_telemetry",
    "run_benchmark",
    "run_benchmark_seeds",
    "run_matrix",
    "clear_results",
    "set_store",
    "summarize_telemetry",
    "table1",
    "table3",
    "table4",
    "table_stalls",
    "figure1",
    "figure2",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "summary_findings",
]
