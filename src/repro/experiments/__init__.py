"""Experiment harness: regenerates every table and figure of the paper."""

from repro.experiments.runner import (
    ExperimentSettings,
    run_benchmark,
    run_matrix,
    clear_results,
)
from repro.experiments.tables import table1, table3, table4
from repro.experiments.figures import (
    figure1,
    figure2,
    figure3,
    figure4,
    figure5,
    figure6,
    figure7,
    summary_findings,
)

__all__ = [
    "ExperimentSettings",
    "run_benchmark",
    "run_matrix",
    "clear_results",
    "table1",
    "table3",
    "table4",
    "figure1",
    "figure2",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "summary_findings",
]
