"""Reference numbers transcribed from the paper.

These are the published measurements our reproduction is compared
against in EXPERIMENTS.md. Keys are the short benchmark names ("126"
for 126.gcc) the paper uses in its tables.
"""

from __future__ import annotations

#: Table 3 — fraction of loads with false dependences (percent), and
#: average false-dependence resolution latency (cycles), 128-entry
#: NAS/NO machine.
PAPER_TABLE3_FD = {
    "099": 26.4, "124": 59.9, "126": 39.0, "129": 70.3, "130": 44.2,
    "132": 70.3, "134": 59.8, "147": 67.2, "101": 61.2, "102": 91.0,
    "103": 79.6, "104": 85.2, "107": 45.4, "110": 45.4, "125": 77.0,
    "141": 77.5, "145": 88.7, "146": 83.6,
}
PAPER_TABLE3_RL = {
    "099": 13.7, "124": 14.8, "126": 47.3, "129": 18.5, "130": 39.1,
    "132": 22.9, "134": 39.1, "147": 54.5, "101": 36.3, "102": 5.4,
    "103": 91.2, "104": 9.7, "107": 26.6, "110": 26.6, "125": 55.6,
    "141": 78.7, "145": 51.4, "146": 9.7,
}

#: Table 4 — memory dependence miss-speculation rate (percent of
#: committed loads) under naive speculation (NAS/NAV) and under
#: speculation/synchronization (NAS/SYNC).
PAPER_TABLE4_NAV = {
    "099": 2.5, "124": 1.0, "126": 1.3, "129": 7.8, "130": 3.2,
    "132": 0.8, "134": 2.9, "147": 3.2, "101": 1.0, "102": 0.9,
    "103": 2.4, "104": 5.5, "107": 0.1, "110": 1.4, "125": 0.7,
    "141": 2.1, "145": 1.4, "146": 2.0,
}
PAPER_TABLE4_SYNC = {
    "099": 0.0301, "124": 0.0030, "126": 0.0028, "129": 0.0034,
    "130": 0.0035, "132": 0.0090, "134": 0.0029, "147": 0.0286,
    "101": 0.0001, "102": 0.0017, "103": 0.0741, "104": 0.0740,
    "107": 0.0019, "110": 0.0039, "125": 0.0009, "141": 0.0148,
    "145": 0.0096, "146": 0.0034,
}

#: Section 4 summary — average speedups (percent) by suite.
PAPER_SUMMARY = {
    # NAS/ORACLE over NAS/NO, 128-entry window (finding 1).
    "oracle_over_no_int": 55.0,
    "oracle_over_no_fp": 154.0,
    # AS/NAV over AS/NO at 0-cycle scheduler latency (finding 2).
    "asnav_over_asno_int": 4.6,
    "asnav_over_asno_fp": 5.3,
    # NAS/NAV over NAS/NO (finding 3).
    "nav_over_no_int": 29.0,
    "nav_over_no_fp": 113.0,
    # NAS/SYNC over NAS/NAV (finding 5).
    "sync_over_nav_int": 19.7,
    "sync_over_nav_fp": 19.1,
    # NAS/ORACLE over NAS/NAV (finding 5's reference point).
    "oracle_over_nav_int": 20.9,
    "oracle_over_nav_fp": 20.4,
}
