"""Regenerates the paper's tables (1, 3 and 4) and the stall table."""

from __future__ import annotations

import dataclasses

from repro.config.presets import continuous_window_64, continuous_window_128
from repro.config.processor import SchedulingModel, SpeculationPolicy
from repro.experiments.paper_data import (
    PAPER_TABLE3_FD,
    PAPER_TABLE3_RL,
    PAPER_TABLE4_NAV,
    PAPER_TABLE4_SYNC,
)
from repro.experiments.report import ExperimentReport
from repro.experiments.runner import (
    DEFAULT_SETTINGS,
    ExperimentSettings,
    run_benchmark,
)
from repro.workloads.catalog import get_trace
from repro.workloads.spec95 import ALL_BENCHMARKS, profile_for


def table1(
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    benchmarks=ALL_BENCHMARKS,
) -> ExperimentReport:
    """Table 1: benchmark composition (checked against the calibration).

    The paper's table reports the original programs' dynamic instruction
    counts and load/store fractions; we report the measured composition
    of each stand-in trace next to its calibration target.
    """
    rows = []
    data = {}
    for name in benchmarks:
        profile = profile_for(name)
        trace = get_trace(name, settings.trace_length, settings.seed)
        summary = trace.summary()
        rows.append((
            name,
            f"{profile.instruction_count_millions:,.1f}M",
            f"{summary.load_fraction * 100:.1f}%",
            f"{profile.load_fraction * 100:.1f}%",
            f"{summary.store_fraction * 100:.1f}%",
            f"{profile.store_fraction * 100:.1f}%",
            profile.sampling_ratio or "N/A",
        ))
        data[name] = {
            "loads": summary.load_fraction,
            "loads_paper": profile.load_fraction,
            "stores": summary.store_fraction,
            "stores_paper": profile.store_fraction,
        }
    return ExperimentReport(
        experiment="Table 1",
        title="Benchmark execution characteristics (measured vs paper)",
        headers=("program", "paper IC", "loads", "(paper)",
                 "stores", "(paper)", "SR"),
        rows=rows,
        notes=[
            "IC column reports the paper's original dynamic instruction "
            "count; our stand-in traces are "
            f"{settings.trace_length:,} instructions "
            f"({settings.warmup_instructions:,} warm-up + "
            f"{settings.timing_instructions:,} timed).",
        ],
        data=data,
    )


def table3(
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    benchmarks=ALL_BENCHMARKS,
) -> ExperimentReport:
    """Table 3: false-dependence fraction and resolution latency.

    Measured on the 128-entry NAS/NO machine, exactly as the paper
    defines: a committed load counts as false-dependence-delayed if, at
    the moment its address was ready but older un-issued stores blocked
    it, no older un-issued store truly conflicted.
    """
    config = continuous_window_128(
        SchedulingModel.NAS, SpeculationPolicy.NO
    )
    rows = []
    data = {}
    for name in benchmarks:
        result = run_benchmark(name, config, settings)
        short = name.split(".")[0]
        fd = result.false_dependence_fraction * 100
        rl = result.mean_resolution_latency
        rows.append((
            name,
            f"{fd:.1f}%", f"{PAPER_TABLE3_FD[short]:.1f}%",
            f"{rl:.1f}", f"{PAPER_TABLE3_RL[short]:.1f}",
        ))
        data[name] = {
            "fd": fd, "fd_paper": PAPER_TABLE3_FD[short],
            "rl": rl, "rl_paper": PAPER_TABLE3_RL[short],
        }
    return ExperimentReport(
        experiment="Table 3",
        title=("False-dependence fraction (FD) and resolution latency "
               "(RL), 128-entry NAS/NO"),
        headers=("program", "FD", "FD paper", "RL", "RL paper"),
        rows=rows,
        data=data,
    )


#: (window label, policy) cells of the stall-breakdown table, in the
#: NO -> NAV -> ORACLE order of the paper's F1/F2 argument.
_STALL_POLICIES = (
    SpeculationPolicy.NO,
    SpeculationPolicy.NAIVE,
    SpeculationPolicy.ORACLE,
)


def table_stalls(
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    benchmarks=ALL_BENCHMARKS,
) -> ExperimentReport:
    """Where the cycles go: commit-slot attribution per policy.

    Runs the NAS machine at 64- and 128-entry windows under NO, NAV and
    ORACLE with the observability bus attached
    (:mod:`repro.observe`), and aggregates every commit slot across the
    benchmarks into one cause breakdown per configuration. The
    ``sum(causes) + commit == width x cycles`` identity holds per cell
    by construction.
    """
    rows = []
    data = {}
    cells = [
        (label, factory, policy)
        for label, factory in (
            ("w64", continuous_window_64), ("w128", continuous_window_128)
        )
        for policy in _STALL_POLICIES
    ]
    keys = (
        "commit", "memdep-wait", "store-barrier", "sync-wait",
        "squash-recovery", "cache-miss", "reg-dep", "exec",
        "window-full", "fetch",
    )
    for window_label, factory, policy in cells:
        config = dataclasses.replace(
            factory(SchedulingModel.NAS, policy), observe=True
        )
        slots = 0
        totals = {key: 0 for key in keys}
        for name in benchmarks:
            result = run_benchmark(name, config, settings)
            stalls = result.extra["observe"]["stalls"]
            slots += stalls["slots"]
            totals["commit"] += stalls["commit_slots"]
            for cause, count in stalls["causes"].items():
                totals[cause] += count
        label = f"{window_label} {config.label}"
        pct = {key: 100.0 * totals[key] / slots for key in keys}
        rows.append(
            (label,) + tuple(f"{pct[key]:.1f}%" for key in keys)
        )
        data[label] = {"slots": slots, **{k: totals[k] for k in keys}}
    return ExperimentReport(
        experiment="Stalls",
        title=("Commit-slot attribution (% of width x cycles), NAS "
               "machine, all benchmarks"),
        headers=("config",) + keys,
        rows=rows,
        notes=[
            "Every commit slot is charged to exactly one cause by the "
            "repro.observe stall accountant; rows sum to 100%.",
            "memdep-wait (loads held behind older stores not known to "
            "conflict) must shrink monotonically NO -> NAV -> ORACLE: "
            "NAV and ORACLE never hold a load on an unknown "
            "dependence, so their memdep-wait is zero and the cost "
            "moves to squash-recovery (NAV) or disappears (ORACLE) — "
            "the paper's F1/F2.",
        ],
        data=data,
    )


def table4(
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    benchmarks=ALL_BENCHMARKS,
) -> ExperimentReport:
    """Table 4: miss-speculation rate under NAS/NAV and NAS/SYNC."""
    nav = continuous_window_128(
        SchedulingModel.NAS, SpeculationPolicy.NAIVE
    )
    sync = continuous_window_128(
        SchedulingModel.NAS, SpeculationPolicy.SYNC
    )
    rows = []
    data = {}
    for name in benchmarks:
        r_nav = run_benchmark(name, nav, settings)
        r_sync = run_benchmark(name, sync, settings)
        short = name.split(".")[0]
        nav_pct = r_nav.misspeculation_rate * 100
        sync_pct = r_sync.misspeculation_rate * 100
        rows.append((
            name,
            f"{nav_pct:.2f}%", f"{PAPER_TABLE4_NAV[short]:.1f}%",
            f"{sync_pct:.4f}%", f"{PAPER_TABLE4_SYNC[short]:.4f}%",
        ))
        data[name] = {
            "nav": nav_pct, "nav_paper": PAPER_TABLE4_NAV[short],
            "sync": sync_pct, "sync_paper": PAPER_TABLE4_SYNC[short],
        }
    return ExperimentReport(
        experiment="Table 4",
        title=("Memory dependence miss-speculation rate over committed "
               "loads"),
        headers=("program", "NAV", "NAV paper", "SYNC", "SYNC paper"),
        rows=rows,
        data=data,
    )
