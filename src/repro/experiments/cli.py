"""Command-line entry point: ``repro-experiments <artifact> [...]``.

Examples::

    repro-experiments table3
    repro-experiments figure1 figure2 --quick
    repro-experiments all --timing 20000 --warmup 12000
    repro-experiments all --store ~/.cache/repro-results --parallel 8
    repro-experiments cache            # inspect the persistent store
    repro-experiments status run.jsonl # summarize a telemetry stream
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import Callable, Dict

from repro.experiments.ablations import (
    ablation_predictors,
    ablation_recovery,
    ablation_split_geometry,
    ablation_squash_penalty,
    ablation_window,
)
from repro.experiments.figures import (
    figure1, figure2, figure3, figure4, figure5, figure6, figure7,
    summary_findings,
)
from repro.experiments.runner import ExperimentSettings
from repro.experiments.tables import table1, table3, table4, table_stalls

ARTIFACTS: Dict[str, Callable] = {
    "table1": table1,
    "table3": table3,
    "table4": table4,
    "stalls": table_stalls,
    "figure1": figure1,
    "figure2": figure2,
    "figure3": figure3,
    "figure4": figure4,
    "figure5": figure5,
    "figure6": figure6,
    "figure7": figure7,
    "summary": summary_findings,
    "ablation-recovery": ablation_recovery,
    "ablation-predictors": ablation_predictors,
    "ablation-window": ablation_window,
    "ablation-squash": ablation_squash_penalty,
    "ablation-split": ablation_split_geometry,
}

_ORDER = (
    "table1", "figure1", "table3", "figure2", "table4", "figure3",
    "figure4", "figure5", "figure6", "figure7", "summary", "stalls",
    "ablation-recovery", "ablation-predictors", "ablation-window",
    "ablation-squash", "ablation-split",
)


def main(argv=None) -> int:
    try:
        return _dispatch(argv)
    except BrokenPipeError:
        # Reports are routinely piped to ``head``; a closed pipe is
        # not an error worth a traceback.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


def _dispatch(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    # Maintenance subcommands ride in front of the artifact grammar so
    # ``repro-experiments table3 figure1`` keeps working unchanged.
    if argv and argv[0] == "cache":
        return _cache_main(argv[1:])
    if argv and argv[0] == "status":
        return _status_main(argv[1:])
    if argv and argv[0] == "observe":
        return _observe_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Regenerate the tables and figures of 'Memory Dependence "
            "Speculation Tradeoffs in Centralized, Continuous-Window "
            "Superscalar Processors' (HPCA 2000)."
        ),
    )
    parser.add_argument(
        "artifacts",
        nargs="+",
        choices=sorted(ARTIFACTS) + ["all"],
        help="which artifacts to regenerate ('all' runs everything)",
    )
    parser.add_argument(
        "--timing", type=int, default=16_000,
        help="timed instructions per run (default 16000)",
    )
    parser.add_argument(
        "--warmup", type=int, default=10_000,
        help="functional warm-up instructions per run (default 10000)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="workload seed (default 0)"
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="short runs (6000 timed / 4000 warm-up)",
    )
    parser.add_argument(
        "--json", metavar="DIR",
        help="also write each artifact as JSON into DIR",
    )
    parser.add_argument(
        "--csv", metavar="DIR",
        help="also write each artifact's rows as CSV into DIR",
    )
    parser.add_argument(
        "--parallel", type=int, metavar="N", default=0,
        help="pre-simulate the core configuration matrix with N worker "
             "processes before rendering artifacts",
    )
    parser.add_argument(
        "--store", metavar="DIR",
        help="persist simulation results in DIR (also honoured via "
             "the REPRO_RESULT_STORE environment variable)",
    )
    parser.add_argument(
        "--telemetry", metavar="FILE",
        help="append structured JSONL run telemetry to FILE "
             "(readable with 'repro-experiments status FILE')",
    )
    parser.add_argument(
        "--observe", metavar="DIR", nargs="?", const="observe",
        default=None,
        help="after the artifacts, write an observability bundle "
             "(Chrome trace, Kanata log, stall summary) for the "
             "flagship 128-entry NAS/NAV cell into DIR (default "
             "'observe'); use the 'observe' subcommand for full "
             "control",
    )
    args = parser.parse_args(argv)

    if args.quick:
        settings = ExperimentSettings(6_000, 4_000, args.seed)
    else:
        settings = ExperimentSettings(args.timing, args.warmup, args.seed)

    names = list(args.artifacts)
    if "all" in names:
        names = list(_ORDER)

    if args.store:
        from repro.experiments.store import set_store

        set_store(args.store)

    from repro.experiments.runner import cache_stats
    from repro.experiments.telemetry import TelemetryWriter

    with TelemetryWriter(args.telemetry) as writer:
        if args.parallel:
            _prewarm(settings, args.parallel, writer)

        for name in names:
            started = time.time()
            before = cache_stats()
            writer.emit("artifact_start", artifact=name)
            report = ARTIFACTS[name](settings)
            elapsed = time.time() - started
            spent = cache_stats().delta(before)
            writer.emit(
                "artifact_finish",
                artifact=name,
                wall=elapsed,
                memory_hits=spent.memory_hits,
                store_hits=spent.store_hits,
                simulations=spent.simulations,
            )
            print(report.render())
            print(f"\n  [{name} regenerated in {elapsed:.1f}s]\n")
            _export(report, name, args.json, args.csv)

    if args.observe:
        from repro.workloads.spec95 import ALL_BENCHMARKS

        _observe_bundle(
            ALL_BENCHMARKS[0], "NAS", "NAV", 128, 0, settings,
            args.observe, limit=20_000,
        )
    return 0


def _observe_bundle(
    benchmark: str,
    scheduling: str,
    policy: str,
    window: int,
    latency: int,
    settings: ExperimentSettings,
    out_dir: str,
    limit: int = 20_000,
) -> dict:
    """Run one observed cell and write its observability bundle.

    Writes ``trace.json`` (Chrome ``trace_event``), ``pipeline.kanata``
    (Konata pipeline view) and ``summary.json`` (stall/metrics summary,
    schema ``schemas/observe_summary.schema.json``) into *out_dir*;
    returns the summary document.
    """
    import dataclasses
    import json as jsonlib

    from repro.config import SchedulingModel, SpeculationPolicy
    from repro.config.presets import (
        continuous_window_64, continuous_window_128,
    )
    from repro.core.processor import Processor
    from repro.experiments.runner import (
        _dependences_for_length, _plan_for,
    )
    from repro.observe import (
        ObserverBus, PipelineRecorder, StallAccountant,
        chrome_trace, konata_log, write_summary,
    )
    from repro.workloads.catalog import get_trace

    factory = {64: continuous_window_64, 128: continuous_window_128}
    if window not in factory:
        raise SystemExit(f"unsupported window size {window} (64 or 128)")
    config = dataclasses.replace(
        factory[window](
            SchedulingModel(scheduling), SpeculationPolicy(policy),
            addr_scheduler_latency=latency,
        ),
        observe=True,
    )
    plan = _plan_for(benchmark, settings)
    trace = get_trace(benchmark, plan.length, settings.seed)
    info = _dependences_for_length(benchmark, plan.length, settings.seed)
    recorder = PipelineRecorder(limit=limit)
    observer = ObserverBus([StallAccountant(config), recorder])
    result = Processor(config, trace, info, observer=observer).run(plan)

    os.makedirs(out_dir, exist_ok=True)
    trace_path = os.path.join(out_dir, "trace.json")
    with open(trace_path, "w", encoding="utf-8") as handle:
        jsonlib.dump(chrome_trace(recorder), handle)
        handle.write("\n")
    konata_path = os.path.join(out_dir, "pipeline.kanata")
    with open(konata_path, "w", encoding="utf-8") as handle:
        handle.write(konata_log(recorder))
    summary_path = os.path.join(out_dir, "summary.json")
    doc = write_summary(summary_path, result, settings={
        "benchmark": benchmark,
        "timing": settings.timing_instructions,
        "warmup": settings.warmup_instructions,
        "seed": settings.seed,
    })
    stalls = result.extra["observe"]["stalls"]
    slots = stalls["slots"]
    print(f"observed {benchmark} on {config.label}@{window}: "
          f"{result.cycles:,} cycles, IPC {result.ipc:.3f}")
    for cause, count in sorted(
        stalls["causes"].items(), key=lambda kv: -kv[1]
    ):
        if count:
            print(f"  {cause:16s} {100.0 * count / slots:5.1f}%")
    print(f"  {'commit':16s} {100.0 * stalls['commit_slots'] / slots:5.1f}%")
    print(f"wrote {trace_path}, {konata_path}, {summary_path}")
    return doc


def _observe_main(argv) -> int:
    """``repro-experiments observe BENCHMARK [--policy NAV] ...``."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments observe",
        description=(
            "Run one benchmark with the observability bus attached and "
            "export a Chrome trace, a Konata pipeline log and a stall "
            "summary (see docs/OBSERVABILITY.md)."
        ),
    )
    parser.add_argument("benchmark", help="benchmark name (e.g. 126.gcc)")
    parser.add_argument(
        "--scheduling", choices=("NAS", "AS"), default="NAS",
        help="address-based scheduler present (AS) or not (default NAS)",
    )
    parser.add_argument(
        "--policy", default="NAV",
        choices=("NO", "NAV", "SEL", "STORE", "SYNC", "ORACLE", "SSET"),
        help="memory dependence speculation policy (default NAV)",
    )
    parser.add_argument(
        "--window", type=int, choices=(64, 128), default=128,
        help="window size preset (default 128)",
    )
    parser.add_argument(
        "--latency", type=int, default=0,
        help="AS address-scheduler latency in cycles (default 0)",
    )
    parser.add_argument(
        "--timing", type=int, default=16_000,
        help="timed instructions (default 16000)",
    )
    parser.add_argument(
        "--warmup", type=int, default=10_000,
        help="functional warm-up instructions (default 10000)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="workload seed (default 0)"
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="short run (6000 timed / 4000 warm-up)",
    )
    parser.add_argument(
        "--limit", type=int, default=20_000,
        help="max retained pipeline records (default 20000)",
    )
    parser.add_argument(
        "--out", metavar="DIR", default="observe",
        help="output directory (default 'observe')",
    )
    args = parser.parse_args(argv)

    if args.quick:
        settings = ExperimentSettings(6_000, 4_000, args.seed)
    else:
        settings = ExperimentSettings(args.timing, args.warmup, args.seed)
    _observe_bundle(
        args.benchmark, args.scheduling, args.policy, args.window,
        args.latency, settings, args.out, limit=args.limit,
    )
    return 0


def _cache_main(argv) -> int:
    """``repro-experiments cache [--path DIR] [--clear]``."""
    from repro.experiments.store import (
        ResultStore, default_store_path,
    )

    parser = argparse.ArgumentParser(
        prog="repro-experiments cache",
        description="Inspect or clear the persistent result store.",
    )
    parser.add_argument(
        "--path", metavar="DIR", default=None,
        help="store directory (default: $REPRO_RESULT_STORE or "
             "~/.cache/repro-results)",
    )
    parser.add_argument(
        "--clear", action="store_true",
        help="delete every cached result record",
    )
    args = parser.parse_args(argv)

    store = ResultStore(args.path or default_store_path())
    if args.clear:
        removed = store.clear()
        print(f"cleared {removed} cached results from {store.root}")
        return 0
    stats = store.stats()
    print(f"store path      {stats['path']}")
    print(f"schema version  {stats['schema']}")
    print(f"entries         {stats['entries']}")
    print(f"size            {stats['size_bytes'] / 1024:.1f} KiB")
    if not os.path.isdir(store.root):
        print("(store directory does not exist yet — it is created "
              "on the first cached simulation)")
    return 0


def _status_main(argv) -> int:
    """``repro-experiments status TELEMETRY.jsonl``."""
    import json as jsonlib

    from repro.experiments.telemetry import (
        read_telemetry, render_summary, summarize_telemetry,
    )

    parser = argparse.ArgumentParser(
        prog="repro-experiments status",
        description="Summarize a JSONL experiment telemetry stream.",
    )
    parser.add_argument("telemetry", help="path to the JSONL file")
    parser.add_argument(
        "--json", action="store_true",
        help="print the summary as JSON instead of text",
    )
    args = parser.parse_args(argv)

    try:
        events = read_telemetry(args.telemetry)
    except OSError as exc:
        print(f"cannot read {args.telemetry}: {exc}", file=sys.stderr)
        return 1
    summary = summarize_telemetry(events)
    if args.json:
        print(jsonlib.dumps(summary, indent=2, sort_keys=True))
    else:
        print(render_summary(summary))
    return 0


def _prewarm(
    settings: ExperimentSettings, workers: int, telemetry=None
) -> None:
    """Simulate the configuration matrix shared by the figures, in
    parallel, so artifact rendering afterwards is mostly cache hits."""
    from repro.config import (
        continuous_window_128, continuous_window_64,
        SchedulingModel, SpeculationPolicy,
    )
    from repro.experiments.parallel import run_matrix_parallel
    from repro.workloads.spec95 import ALL_BENCHMARKS

    nas = SchedulingModel.NAS
    as_ = SchedulingModel.AS
    configs = {}
    for policy in (
        SpeculationPolicy.NO, SpeculationPolicy.NAIVE,
        SpeculationPolicy.SELECTIVE, SpeculationPolicy.STORE_BARRIER,
        SpeculationPolicy.SYNC, SpeculationPolicy.ORACLE,
    ):
        configs[f"w128 NAS/{policy.value}"] = continuous_window_128(
            nas, policy
        )
    for policy in (SpeculationPolicy.NO, SpeculationPolicy.ORACLE):
        configs[f"w64 NAS/{policy.value}"] = continuous_window_64(
            nas, policy
        )
    for latency in (0, 1, 2):
        for policy in (SpeculationPolicy.NO, SpeculationPolicy.NAIVE):
            configs[f"AS/{policy.value}+{latency}"] = (
                continuous_window_128(as_, policy, latency)
            )
    started = time.time()
    run_matrix_parallel(
        ALL_BENCHMARKS, configs, settings, workers=workers,
        telemetry=telemetry,
    )
    print(
        f"  [prewarmed {len(configs)}x{len(ALL_BENCHMARKS)} points "
        f"with {workers} workers in {time.time() - started:.1f}s]\n"
    )


def _export(report, name: str, json_dir, csv_dir) -> None:
    from repro.experiments.export import report_to_csv, report_to_json

    if json_dir:
        os.makedirs(json_dir, exist_ok=True)
        path = os.path.join(json_dir, f"{name}.json")
        with open(path, "w") as handle:
            handle.write(report_to_json(report))
    if csv_dir:
        os.makedirs(csv_dir, exist_ok=True)
        path = os.path.join(csv_dir, f"{name}.csv")
        with open(path, "w") as handle:
            handle.write(report_to_csv(report))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
