"""Command-line entry point: ``repro-experiments <artifact> [...]``.

Examples::

    repro-experiments table3
    repro-experiments figure1 figure2 --quick
    repro-experiments all --timing 20000 --warmup 12000
    repro-experiments all --store ~/.cache/repro-results --parallel 8
    repro-experiments cache            # inspect the persistent store
    repro-experiments status run.jsonl # summarize a telemetry stream
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import Callable, Dict

from repro.experiments.ablations import (
    ablation_predictors,
    ablation_recovery,
    ablation_split_geometry,
    ablation_squash_penalty,
    ablation_window,
)
from repro.experiments.figures import (
    figure1, figure2, figure3, figure4, figure5, figure6, figure7,
    summary_findings,
)
from repro.experiments.runner import ExperimentSettings
from repro.experiments.tables import table1, table3, table4

ARTIFACTS: Dict[str, Callable] = {
    "table1": table1,
    "table3": table3,
    "table4": table4,
    "figure1": figure1,
    "figure2": figure2,
    "figure3": figure3,
    "figure4": figure4,
    "figure5": figure5,
    "figure6": figure6,
    "figure7": figure7,
    "summary": summary_findings,
    "ablation-recovery": ablation_recovery,
    "ablation-predictors": ablation_predictors,
    "ablation-window": ablation_window,
    "ablation-squash": ablation_squash_penalty,
    "ablation-split": ablation_split_geometry,
}

_ORDER = (
    "table1", "figure1", "table3", "figure2", "table4", "figure3",
    "figure4", "figure5", "figure6", "figure7", "summary",
    "ablation-recovery", "ablation-predictors", "ablation-window",
    "ablation-squash", "ablation-split",
)


def main(argv=None) -> int:
    try:
        return _dispatch(argv)
    except BrokenPipeError:
        # Reports are routinely piped to ``head``; a closed pipe is
        # not an error worth a traceback.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


def _dispatch(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    # Maintenance subcommands ride in front of the artifact grammar so
    # ``repro-experiments table3 figure1`` keeps working unchanged.
    if argv and argv[0] == "cache":
        return _cache_main(argv[1:])
    if argv and argv[0] == "status":
        return _status_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Regenerate the tables and figures of 'Memory Dependence "
            "Speculation Tradeoffs in Centralized, Continuous-Window "
            "Superscalar Processors' (HPCA 2000)."
        ),
    )
    parser.add_argument(
        "artifacts",
        nargs="+",
        choices=sorted(ARTIFACTS) + ["all"],
        help="which artifacts to regenerate ('all' runs everything)",
    )
    parser.add_argument(
        "--timing", type=int, default=16_000,
        help="timed instructions per run (default 16000)",
    )
    parser.add_argument(
        "--warmup", type=int, default=10_000,
        help="functional warm-up instructions per run (default 10000)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="workload seed (default 0)"
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="short runs (6000 timed / 4000 warm-up)",
    )
    parser.add_argument(
        "--json", metavar="DIR",
        help="also write each artifact as JSON into DIR",
    )
    parser.add_argument(
        "--csv", metavar="DIR",
        help="also write each artifact's rows as CSV into DIR",
    )
    parser.add_argument(
        "--parallel", type=int, metavar="N", default=0,
        help="pre-simulate the core configuration matrix with N worker "
             "processes before rendering artifacts",
    )
    parser.add_argument(
        "--store", metavar="DIR",
        help="persist simulation results in DIR (also honoured via "
             "the REPRO_RESULT_STORE environment variable)",
    )
    parser.add_argument(
        "--telemetry", metavar="FILE",
        help="append structured JSONL run telemetry to FILE "
             "(readable with 'repro-experiments status FILE')",
    )
    args = parser.parse_args(argv)

    if args.quick:
        settings = ExperimentSettings(6_000, 4_000, args.seed)
    else:
        settings = ExperimentSettings(args.timing, args.warmup, args.seed)

    names = list(args.artifacts)
    if "all" in names:
        names = list(_ORDER)

    if args.store:
        from repro.experiments.store import set_store

        set_store(args.store)

    from repro.experiments.runner import cache_stats
    from repro.experiments.telemetry import TelemetryWriter

    with TelemetryWriter(args.telemetry) as writer:
        if args.parallel:
            _prewarm(settings, args.parallel, writer)

        for name in names:
            started = time.time()
            before = cache_stats()
            writer.emit("artifact_start", artifact=name)
            report = ARTIFACTS[name](settings)
            elapsed = time.time() - started
            spent = cache_stats().delta(before)
            writer.emit(
                "artifact_finish",
                artifact=name,
                wall=elapsed,
                memory_hits=spent.memory_hits,
                store_hits=spent.store_hits,
                simulations=spent.simulations,
            )
            print(report.render())
            print(f"\n  [{name} regenerated in {elapsed:.1f}s]\n")
            _export(report, name, args.json, args.csv)
    return 0


def _cache_main(argv) -> int:
    """``repro-experiments cache [--path DIR] [--clear]``."""
    from repro.experiments.store import (
        ResultStore, default_store_path,
    )

    parser = argparse.ArgumentParser(
        prog="repro-experiments cache",
        description="Inspect or clear the persistent result store.",
    )
    parser.add_argument(
        "--path", metavar="DIR", default=None,
        help="store directory (default: $REPRO_RESULT_STORE or "
             "~/.cache/repro-results)",
    )
    parser.add_argument(
        "--clear", action="store_true",
        help="delete every cached result record",
    )
    args = parser.parse_args(argv)

    store = ResultStore(args.path or default_store_path())
    if args.clear:
        removed = store.clear()
        print(f"cleared {removed} cached results from {store.root}")
        return 0
    stats = store.stats()
    print(f"store path      {stats['path']}")
    print(f"schema version  {stats['schema']}")
    print(f"entries         {stats['entries']}")
    print(f"size            {stats['size_bytes'] / 1024:.1f} KiB")
    if not os.path.isdir(store.root):
        print("(store directory does not exist yet — it is created "
              "on the first cached simulation)")
    return 0


def _status_main(argv) -> int:
    """``repro-experiments status TELEMETRY.jsonl``."""
    import json as jsonlib

    from repro.experiments.telemetry import (
        read_telemetry, render_summary, summarize_telemetry,
    )

    parser = argparse.ArgumentParser(
        prog="repro-experiments status",
        description="Summarize a JSONL experiment telemetry stream.",
    )
    parser.add_argument("telemetry", help="path to the JSONL file")
    parser.add_argument(
        "--json", action="store_true",
        help="print the summary as JSON instead of text",
    )
    args = parser.parse_args(argv)

    try:
        events = read_telemetry(args.telemetry)
    except OSError as exc:
        print(f"cannot read {args.telemetry}: {exc}", file=sys.stderr)
        return 1
    summary = summarize_telemetry(events)
    if args.json:
        print(jsonlib.dumps(summary, indent=2, sort_keys=True))
    else:
        print(render_summary(summary))
    return 0


def _prewarm(
    settings: ExperimentSettings, workers: int, telemetry=None
) -> None:
    """Simulate the configuration matrix shared by the figures, in
    parallel, so artifact rendering afterwards is mostly cache hits."""
    from repro.config import (
        continuous_window_128, continuous_window_64,
        SchedulingModel, SpeculationPolicy,
    )
    from repro.experiments.parallel import run_matrix_parallel
    from repro.workloads.spec95 import ALL_BENCHMARKS

    nas = SchedulingModel.NAS
    as_ = SchedulingModel.AS
    configs = {}
    for policy in (
        SpeculationPolicy.NO, SpeculationPolicy.NAIVE,
        SpeculationPolicy.SELECTIVE, SpeculationPolicy.STORE_BARRIER,
        SpeculationPolicy.SYNC, SpeculationPolicy.ORACLE,
    ):
        configs[f"w128 NAS/{policy.value}"] = continuous_window_128(
            nas, policy
        )
    for policy in (SpeculationPolicy.NO, SpeculationPolicy.ORACLE):
        configs[f"w64 NAS/{policy.value}"] = continuous_window_64(
            nas, policy
        )
    for latency in (0, 1, 2):
        for policy in (SpeculationPolicy.NO, SpeculationPolicy.NAIVE):
            configs[f"AS/{policy.value}+{latency}"] = (
                continuous_window_128(as_, policy, latency)
            )
    started = time.time()
    run_matrix_parallel(
        ALL_BENCHMARKS, configs, settings, workers=workers,
        telemetry=telemetry,
    )
    print(
        f"  [prewarmed {len(configs)}x{len(ALL_BENCHMARKS)} points "
        f"with {workers} workers in {time.time() - started:.1f}s]\n"
    )


def _export(report, name: str, json_dir, csv_dir) -> None:
    from repro.experiments.export import report_to_csv, report_to_json

    if json_dir:
        os.makedirs(json_dir, exist_ok=True)
        path = os.path.join(json_dir, f"{name}.json")
        with open(path, "w") as handle:
            handle.write(report_to_json(report))
    if csv_dir:
        os.makedirs(csv_dir, exist_ok=True)
        path = os.path.join(csv_dir, f"{name}.csv")
        with open(path, "w") as handle:
            handle.write(report_to_csv(report))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
