"""Command-line entry point: ``repro-experiments <artifact> [...]``.

Examples::

    repro-experiments table3
    repro-experiments figure1 figure2 --quick
    repro-experiments all --timing 20000 --warmup 12000
    repro-experiments all --store ~/.cache/repro-results --parallel 8
    repro-experiments all --trace-store ~/.cache/repro-traces
    repro-experiments cache            # inspect result + trace stores
    repro-experiments status run.jsonl # summarize a telemetry stream
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import Callable, Dict

from repro.experiments.ablations import (
    ablation_predictors,
    ablation_recovery,
    ablation_split_geometry,
    ablation_squash_penalty,
    ablation_window,
)
from repro.experiments.figures import (
    figure1, figure2, figure3, figure4, figure5, figure6, figure7,
    figure7_sweep, summary_findings,
)
from repro.experiments.runner import ExperimentSettings
from repro.experiments.tables import table1, table3, table4, table_stalls

ARTIFACTS: Dict[str, Callable] = {
    "table1": table1,
    "table3": table3,
    "table4": table4,
    "stalls": table_stalls,
    "figure1": figure1,
    "figure2": figure2,
    "figure3": figure3,
    "figure4": figure4,
    "figure5": figure5,
    "figure6": figure6,
    "figure7": figure7,
    "figure7-sweep": figure7_sweep,
    "summary": summary_findings,
    "ablation-recovery": ablation_recovery,
    "ablation-predictors": ablation_predictors,
    "ablation-window": ablation_window,
    "ablation-squash": ablation_squash_penalty,
    "ablation-split": ablation_split_geometry,
}

def _backend_choices():
    from repro.core.backend import available_backends

    return available_backends()


def _apply_backend(name) -> None:
    """Make *name* the process-wide default simulator backend.

    Exported through ``$REPRO_BACKEND`` rather than threaded through
    every artifact driver: the figure/table code calls
    ``run_benchmark`` without a backend argument, and pool workers
    inherit the environment across ``fork``.
    """
    if name:
        from repro.core.backend import BACKEND_ENV, resolve_backend

        resolve_backend(name)  # fail fast on typos
        os.environ[BACKEND_ENV] = name


_ORDER = (
    "table1", "figure1", "table3", "figure2", "table4", "figure3",
    "figure4", "figure5", "figure6", "figure7", "figure7-sweep",
    "summary", "stalls",
    "ablation-recovery", "ablation-predictors", "ablation-window",
    "ablation-squash", "ablation-split",
)


def main(argv=None) -> int:
    try:
        return _dispatch(argv)
    except BrokenPipeError:
        # Reports are routinely piped to ``head``; a closed pipe is
        # not an error worth a traceback.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


def _dispatch(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    # Maintenance subcommands ride in front of the artifact grammar so
    # ``repro-experiments table3 figure1`` keeps working unchanged.
    if argv and argv[0] == "cache":
        return _cache_main(argv[1:])
    if argv and argv[0] == "status":
        return _status_main(argv[1:])
    if argv and argv[0] == "observe":
        return _observe_main(argv[1:])
    if argv and argv[0] == "check":
        return _check_main(argv[1:])
    if argv and argv[0] in ("serve", "submit", "jobs"):
        from repro.service.cli import service_main

        return service_main(argv)
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Regenerate the tables and figures of 'Memory Dependence "
            "Speculation Tradeoffs in Centralized, Continuous-Window "
            "Superscalar Processors' (HPCA 2000)."
        ),
    )
    parser.add_argument(
        "artifacts",
        nargs="+",
        choices=sorted(ARTIFACTS) + ["all"],
        help="which artifacts to regenerate ('all' runs everything)",
    )
    parser.add_argument(
        "--timing", type=int, default=16_000,
        help="timed instructions per run (default 16000)",
    )
    parser.add_argument(
        "--warmup", type=int, default=10_000,
        help="functional warm-up instructions per run (default 10000)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="workload seed (default 0)"
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="short runs (6000 timed / 4000 warm-up)",
    )
    parser.add_argument(
        "--json", metavar="DIR",
        help="also write each artifact as JSON into DIR",
    )
    parser.add_argument(
        "--csv", metavar="DIR",
        help="also write each artifact's rows as CSV into DIR",
    )
    parser.add_argument(
        "--parallel", type=int, metavar="N", default=0,
        help="pre-simulate the core configuration matrix with N worker "
             "processes before rendering artifacts",
    )
    parser.add_argument(
        "--store", metavar="DIR",
        help="persist simulation results in DIR (also honoured via "
             "the REPRO_RESULT_STORE environment variable)",
    )
    parser.add_argument(
        "--trace-store", metavar="DIR",
        help="persist compiled traces in DIR so later runs load them "
             "instead of regenerating (also honoured via the "
             "REPRO_TRACE_STORE environment variable)",
    )
    parser.add_argument(
        "--telemetry", metavar="FILE",
        help="append structured JSONL run telemetry to FILE "
             "(readable with 'repro-experiments status FILE')",
    )
    parser.add_argument(
        "--backend", choices=_backend_choices(), default=None,
        help="simulator backend for every run (default: "
             "$REPRO_BACKEND or 'reference'; backends are "
             "bit-identical — 'vector' is just faster)",
    )
    parser.add_argument(
        "--observe", metavar="DIR", nargs="?", const="observe",
        default=None,
        help="after the artifacts, write an observability bundle "
             "(Chrome trace, Kanata log, stall summary) for the "
             "flagship 128-entry NAS/NAV cell into DIR (default "
             "'observe'); use the 'observe' subcommand for full "
             "control",
    )
    args = parser.parse_args(argv)

    if args.quick:
        settings = ExperimentSettings(6_000, 4_000, args.seed)
    else:
        settings = ExperimentSettings(args.timing, args.warmup, args.seed)
    _apply_backend(args.backend)

    names = list(args.artifacts)
    if "all" in names:
        names = list(_ORDER)

    if args.store:
        from repro.experiments.store import set_store

        set_store(args.store)
    if args.trace_store:
        from repro.trace.tracestore import set_trace_store

        set_trace_store(args.trace_store)

    from repro.experiments.runner import cache_stats
    from repro.experiments.telemetry import TelemetryWriter

    with TelemetryWriter(args.telemetry) as writer:
        if args.parallel:
            _prewarm(settings, args.parallel, writer)

        for name in names:
            started = time.time()
            before = cache_stats()
            writer.emit("artifact_start", artifact=name)
            report = ARTIFACTS[name](settings)
            elapsed = time.time() - started
            spent = cache_stats().delta(before)
            writer.emit(
                "artifact_finish",
                artifact=name,
                wall=elapsed,
                memory_hits=spent.memory_hits,
                store_hits=spent.store_hits,
                simulations=spent.simulations,
            )
            print(report.render())
            print(f"\n  [{name} regenerated in {elapsed:.1f}s]\n")
            _export(report, name, args.json, args.csv)

    if args.observe:
        from repro.workloads.spec95 import ALL_BENCHMARKS

        _observe_bundle(
            ALL_BENCHMARKS[0], "NAS", "NAV", 128, 0, settings,
            args.observe, limit=20_000,
        )
    return 0


def _observe_bundle(
    benchmark: str,
    scheduling: str,
    policy: str,
    window: int,
    latency: int,
    settings: ExperimentSettings,
    out_dir: str,
    limit: int = 20_000,
) -> dict:
    """Run one observed cell and write its observability bundle.

    Writes ``trace.json`` (Chrome ``trace_event``), ``pipeline.kanata``
    (Konata pipeline view) and ``summary.json`` (stall/metrics summary,
    schema ``schemas/observe_summary.schema.json``) into *out_dir*;
    returns the summary document.
    """
    import dataclasses
    import json as jsonlib

    from repro.config import SchedulingModel, SpeculationPolicy
    from repro.config.presets import (
        continuous_window_64, continuous_window_128,
    )
    from repro.core.processor import Processor
    from repro.experiments.runner import (
        _dependences_for_length, _plan_for,
    )
    from repro.observe import (
        ObserverBus, PipelineRecorder, StallAccountant,
        chrome_trace, konata_log, write_summary,
    )
    from repro.workloads.catalog import get_trace

    factory = {64: continuous_window_64, 128: continuous_window_128}
    if window not in factory:
        raise SystemExit(f"unsupported window size {window} (64 or 128)")
    config = dataclasses.replace(
        factory[window](
            SchedulingModel(scheduling), SpeculationPolicy(policy),
            addr_scheduler_latency=latency,
        ),
        observe=True,
    )
    plan = _plan_for(benchmark, settings)
    trace = get_trace(benchmark, plan.length, settings.seed)
    info = _dependences_for_length(benchmark, plan.length, settings.seed)
    recorder = PipelineRecorder(limit=limit)
    observer = ObserverBus([StallAccountant(config), recorder])
    result = Processor(config, trace, info, observer=observer).run(plan)

    os.makedirs(out_dir, exist_ok=True)
    trace_path = os.path.join(out_dir, "trace.json")
    with open(trace_path, "w", encoding="utf-8") as handle:
        jsonlib.dump(chrome_trace(recorder), handle)
        handle.write("\n")
    konata_path = os.path.join(out_dir, "pipeline.kanata")
    with open(konata_path, "w", encoding="utf-8") as handle:
        handle.write(konata_log(recorder))
    summary_path = os.path.join(out_dir, "summary.json")
    doc = write_summary(summary_path, result, settings={
        "benchmark": benchmark,
        "timing": settings.timing_instructions,
        "warmup": settings.warmup_instructions,
        "seed": settings.seed,
    })
    stalls = result.extra["observe"]["stalls"]
    slots = stalls["slots"]
    print(f"observed {benchmark} on {config.label}@{window}: "
          f"{result.cycles:,} cycles, IPC {result.ipc:.3f}")
    for cause, count in sorted(
        stalls["causes"].items(), key=lambda kv: -kv[1]
    ):
        if count:
            print(f"  {cause:16s} {100.0 * count / slots:5.1f}%")
    print(f"  {'commit':16s} {100.0 * stalls['commit_slots'] / slots:5.1f}%")
    print(f"wrote {trace_path}, {konata_path}, {summary_path}")
    return doc


def _observe_main(argv) -> int:
    """``repro-experiments observe BENCHMARK [--policy NAV] ...``."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments observe",
        description=(
            "Run one benchmark with the observability bus attached and "
            "export a Chrome trace, a Konata pipeline log and a stall "
            "summary (see docs/OBSERVABILITY.md)."
        ),
    )
    parser.add_argument("benchmark", help="benchmark name (e.g. 126.gcc)")
    parser.add_argument(
        "--scheduling", choices=("NAS", "AS"), default="NAS",
        help="address-based scheduler present (AS) or not (default NAS)",
    )
    parser.add_argument(
        "--policy", default="NAV",
        choices=("NO", "NAV", "SEL", "STORE", "SYNC", "ORACLE", "SSET"),
        help="memory dependence speculation policy (default NAV)",
    )
    parser.add_argument(
        "--window", type=int, choices=(64, 128), default=128,
        help="window size preset (default 128)",
    )
    parser.add_argument(
        "--latency", type=int, default=0,
        help="AS address-scheduler latency in cycles (default 0)",
    )
    parser.add_argument(
        "--timing", type=int, default=16_000,
        help="timed instructions (default 16000)",
    )
    parser.add_argument(
        "--warmup", type=int, default=10_000,
        help="functional warm-up instructions (default 10000)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="workload seed (default 0)"
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="short run (6000 timed / 4000 warm-up)",
    )
    parser.add_argument(
        "--limit", type=int, default=20_000,
        help="max retained pipeline records (default 20000)",
    )
    parser.add_argument(
        "--out", metavar="DIR", default="observe",
        help="output directory (default 'observe')",
    )
    args = parser.parse_args(argv)

    if args.quick:
        settings = ExperimentSettings(6_000, 4_000, args.seed)
    else:
        settings = ExperimentSettings(args.timing, args.warmup, args.seed)
    _observe_bundle(
        args.benchmark, args.scheduling, args.policy, args.window,
        args.latency, settings, args.out, limit=args.limit,
    )
    return 0


def _check_main(argv) -> int:
    """``repro-experiments check {run,selftest,fuzz} ...``.

    Exit codes: 0 clean, 1 violations/failures detected, 2 usage.
    """
    import json as jsonlib

    parser = argparse.ArgumentParser(
        prog="repro-experiments check",
        description=(
            "Differential and metamorphic verification of the "
            "simulator (see docs/TESTING.md)."
        ),
    )
    sub = parser.add_subparsers(dest="mode", required=True)

    run_p = sub.add_parser(
        "run",
        help="simulate one benchmark with every checker attached",
    )
    run_p.add_argument("benchmark", help="benchmark name (e.g. 126.gcc)")
    run_p.add_argument(
        "--scheduling", choices=("NAS", "AS"), default="NAS",
        help="address-based scheduler present (AS) or not (default NAS)",
    )
    run_p.add_argument(
        "--policy", default="NAV",
        choices=("NO", "NAV", "SEL", "STORE", "SYNC", "ORACLE", "SSET"),
        help="memory dependence speculation policy (default NAV)",
    )
    run_p.add_argument(
        "--window", type=int, choices=(64, 128), default=128,
        help="window size preset (default 128)",
    )
    run_p.add_argument(
        "--latency", type=int, default=0,
        help="AS address-scheduler latency in cycles (default 0)",
    )
    run_p.add_argument(
        "--timing", type=int, default=4_000,
        help="timed instructions (default 4000)",
    )
    run_p.add_argument(
        "--warmup", type=int, default=2_000,
        help="functional warm-up instructions (default 2000)",
    )
    run_p.add_argument(
        "--seed", type=int, default=0, help="workload seed (default 0)"
    )
    run_p.add_argument(
        "--stride", type=int, default=1,
        help="run the per-cycle structure scans every N cycles "
             "(default 1 = every cycle)",
    )
    run_p.add_argument(
        "--inject", metavar="FAULT", default=None,
        help="seed a registered fault before checking (see "
             "'check selftest' for the registry); the run must then "
             "FAIL, proving the checkers see it",
    )
    run_p.add_argument(
        "--no-reference", action="store_true",
        help="skip regenerating the independent functional reference "
             "trace (faster; disables reference-divergence checks)",
    )
    run_p.add_argument(
        "--stalls", action="store_true",
        help="also attach the stall accountant and assert its "
             "conservation law",
    )
    run_p.add_argument(
        "--json-out", metavar="FILE",
        help="write the violation report as JSON to FILE",
    )

    self_p = sub.add_parser(
        "selftest",
        help="seed every registered fault; assert each is caught",
    )
    self_p.add_argument(
        "--json-out", metavar="FILE",
        help="write the per-fault record as JSON to FILE",
    )

    fuzz_p = sub.add_parser(
        "fuzz",
        help="metamorphic design-space fuzzing (paper relations)",
    )
    fuzz_p.add_argument(
        "--budget", type=int, default=5,
        help="number of random design-space cells (default 5)",
    )
    fuzz_p.add_argument(
        "--seed", type=int, default=0,
        help="fuzzer RNG seed (default 0)",
    )
    fuzz_p.add_argument(
        "--tolerance", type=float, default=0.02,
        help="oracle-dominance IPC tolerance (default 0.02)",
    )
    fuzz_p.add_argument(
        "--corpus", metavar="FILE", default=None,
        help="replay this JSON corpus before the random cells",
    )
    fuzz_p.add_argument(
        "--no-minimize", action="store_true",
        help="skip shrinking failing cells",
    )
    fuzz_p.add_argument(
        "--save-failing", metavar="FILE", default=None,
        help="write minimised failing cells as a corpus to FILE",
    )
    fuzz_p.add_argument(
        "--json-out", metavar="FILE",
        help="write the fuzzing outcome as JSON to FILE",
    )
    fuzz_p.add_argument(
        "--backend", choices=_backend_choices(), default=None,
        help="simulator backend for every fuzzed cell (default: "
             "$REPRO_BACKEND or 'reference')",
    )

    args = parser.parse_args(argv)

    def dump(payload, path):
        if path:
            with open(path, "w", encoding="utf-8") as handle:
                jsonlib.dump(payload, handle, indent=2, sort_keys=True)
                handle.write("\n")
            print(f"wrote {path}")

    if args.mode == "run":
        from repro.check import check_benchmark, fault_names
        from repro.config import SchedulingModel, SpeculationPolicy
        from repro.config.presets import (
            continuous_window_64, continuous_window_128,
        )

        if args.inject is not None and args.inject not in fault_names():
            print(
                f"unknown fault {args.inject!r}; registered faults: "
                f"{', '.join(fault_names())}",
                file=sys.stderr,
            )
            return 2
        factory = {64: continuous_window_64, 128: continuous_window_128}
        config = factory[args.window](
            SchedulingModel(args.scheduling),
            SpeculationPolicy(args.policy),
            addr_scheduler_latency=args.latency,
        )
        settings = ExperimentSettings(args.timing, args.warmup, args.seed)
        outcome = check_benchmark(
            args.benchmark, config, settings,
            reference=not args.no_reference,
            stride=args.stride,
            fault=args.inject,
            stalls=args.stalls,
        )
        report = outcome.report
        label = (
            f"{args.benchmark} {args.scheduling}/{args.policy}"
            f"@w{args.window}"
        )
        if outcome.result is not None:
            print(
                f"checked {label}: {outcome.result.committed:,} commits, "
                f"{outcome.result.cycles:,} cycles, "
                f"IPC {outcome.result.ipc:.3f}"
            )
        if args.inject:
            print(f"injected fault: {args.inject}")
        print(report.render())
        dump(report.to_dict(), args.json_out)
        return 0 if outcome.ok else 1

    if args.mode == "selftest":
        from repro.check import fault_names, selftest

        record = selftest()
        for name in fault_names():
            entry = record["faults"][name]
            status = "caught" if entry["caught"] else "MISSED"
            clean = "clean" if entry["clean_ok"] else "DIRTY-CLEAN-RUN"
            caught_by = ", ".join(entry["caught_by"]) or "-"
            print(f"{name:16s} {status:7s} by {caught_by:24s} [{clean}]")
        print(f"selftest: {'OK' if record['ok'] else 'FAILED'} "
              f"({len(record['faults'])} faults)")
        dump(record, args.json_out)
        return 0 if record["ok"] else 1

    # args.mode == "fuzz"
    from repro.check.fuzz import (
        FuzzCell, fuzz as run_fuzz, load_corpus, save_corpus,
    )

    _apply_backend(args.backend)
    corpus = []
    if args.corpus:
        try:
            corpus = load_corpus(args.corpus)
        except (OSError, ValueError, KeyError) as exc:
            print(f"cannot load corpus {args.corpus}: {exc}",
                  file=sys.stderr)
            return 2
        print(f"replaying {len(corpus)} corpus cells from {args.corpus}")
    outcome = run_fuzz(
        budget=args.budget,
        rng_seed=args.seed,
        tolerance=args.tolerance,
        corpus=corpus,
        minimize=not args.no_minimize,
        log=print,
    )
    print(
        f"fuzz: {outcome.cells_run} cells, "
        f"{len(outcome.failures)} relation failures"
    )
    for failure in outcome.failures:
        print(f"  FAIL {failure['relation']}: {failure['detail']}")
        print(f"       cell: {failure['cell']}")
    if outcome.minimized:
        print("minimised reproducers (rerun with "
              "'check fuzz --corpus FILE' after saving):")
        for cell in outcome.minimized:
            print(f"  {cell}")
    if args.save_failing and outcome.minimized:
        save_corpus(
            args.save_failing,
            [FuzzCell.from_dict(c) for c in outcome.minimized],
        )
        print(f"wrote failing corpus to {args.save_failing}")
    dump(outcome.to_dict(), args.json_out)
    return 0 if outcome.ok else 1


def _cache_main(argv) -> int:
    """``repro-experiments cache [prune] [--path DIR] [--clear] ...``."""
    from repro.experiments.store import (
        ResultStore, default_store_path,
    )
    from repro.trace.tracestore import (
        TraceStore, default_trace_store_path,
    )

    if argv and argv[0] == "prune":
        return _cache_prune_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="repro-experiments cache",
        description=(
            "Inspect or clear the persistent result and trace stores."
        ),
    )
    parser.add_argument(
        "--path", metavar="DIR", default=None,
        help="result-store directory (default: $REPRO_RESULT_STORE or "
             "~/.cache/repro-results)",
    )
    parser.add_argument(
        "--trace-path", metavar="DIR", default=None,
        help="trace-store directory (default: $REPRO_TRACE_STORE or "
             "~/.cache/repro-traces)",
    )
    parser.add_argument(
        "--clear", action="store_true",
        help="delete every cached result record",
    )
    parser.add_argument(
        "--clear-traces", action="store_true",
        help="delete every cached compiled trace",
    )
    args = parser.parse_args(argv)

    store = ResultStore(args.path or default_store_path())
    traces = TraceStore(args.trace_path or default_trace_store_path())
    if args.clear or args.clear_traces:
        if args.clear:
            removed = store.clear()
            print(f"cleared {removed} cached results from {store.root}")
        if args.clear_traces:
            removed = traces.clear()
            print(f"cleared {removed} compiled traces from {traces.root}")
        return 0
    stats = store.stats()
    print(f"store path      {stats['path']}")
    print(f"schema version  {stats['schema']}")
    print(f"entries         {stats['entries']}")
    print(f"size            {stats['size_bytes'] / 1024:.1f} KiB")
    if not os.path.isdir(store.root):
        print("(store directory does not exist yet — it is created "
              "on the first cached simulation)")
    tstats = traces.stats()
    print(f"trace store     {tstats['path']}")
    print(f"trace format    {tstats['format']}")
    print(f"trace entries   {tstats['entries']}")
    print(f"trace size      {tstats['size_bytes'] / 1024:.1f} KiB")
    if not os.path.isdir(traces.root):
        print("(trace-store directory does not exist yet — it is "
              "created on the first generated trace)")
    return 0


def _cache_prune_main(argv) -> int:
    """``repro-experiments cache prune [--max-age D] [--apply] ...``."""
    from repro.experiments.prune import prune_paths
    from repro.experiments.store import (
        ResultStore, default_store_path,
    )
    from repro.trace.tracestore import (
        TraceStore, default_trace_store_path,
    )

    parser = argparse.ArgumentParser(
        prog="repro-experiments cache prune",
        description=(
            "Evict old or excess entries from the persistent result "
            "and trace stores. Dry-run by default: prints the plan; "
            "--apply executes it."
        ),
    )
    parser.add_argument(
        "--path", metavar="DIR", default=None,
        help="result-store directory (default: $REPRO_RESULT_STORE or "
             "~/.cache/repro-results)",
    )
    parser.add_argument(
        "--trace-path", metavar="DIR", default=None,
        help="trace-store directory (default: $REPRO_TRACE_STORE or "
             "~/.cache/repro-traces)",
    )
    parser.add_argument(
        "--max-age", type=float, metavar="DAYS", default=None,
        help="evict entries older than DAYS days",
    )
    parser.add_argument(
        "--max-size", type=float, metavar="MIB", default=None,
        help="evict oldest entries until each store fits in MIB MiB",
    )
    parser.add_argument(
        "--results-only", action="store_true",
        help="prune only the result store",
    )
    parser.add_argument(
        "--traces-only", action="store_true",
        help="prune only the trace store",
    )
    parser.add_argument(
        "--apply", action="store_true",
        help="actually delete (default is a dry run)",
    )
    args = parser.parse_args(argv)
    if args.max_age is None and args.max_size is None:
        parser.error("nothing to do: pass --max-age and/or --max-size")
    if args.results_only and args.traces_only:
        parser.error("--results-only and --traces-only are exclusive")

    max_age = (
        args.max_age * 86_400.0 if args.max_age is not None else None
    )
    max_size = (
        int(args.max_size * 1024 * 1024)
        if args.max_size is not None else None
    )
    targets = []
    if not args.traces_only:
        store = ResultStore(args.path or default_store_path())
        targets.append(("results", store.root, store.entries()))
    if not args.results_only:
        traces = TraceStore(args.trace_path or default_trace_store_path())
        targets.append(("traces", traces.root, traces.entries()))

    for label, root, paths in targets:
        report = prune_paths(
            paths, max_age_seconds=max_age, max_size_bytes=max_size,
            apply=args.apply,
        )
        verb = "pruned" if args.apply else "would prune"
        print(
            f"{label:8s} {root}: {verb} "
            f"{len(report['selected'])}/{report['examined']} entries "
            f"({report['selected_bytes'] / 1024:.1f} KiB), keeping "
            f"{report['kept']} ({report['kept_bytes'] / 1024:.1f} KiB)"
        )
        if report["errors"]:
            print(f"  {report['errors']} entries could not be removed",
                  file=sys.stderr)
    if not args.apply:
        print("(dry run — re-run with --apply to delete)")
    return 0


def _status_main(argv) -> int:
    """``repro-experiments status TELEMETRY.jsonl``."""
    import json as jsonlib

    from repro.experiments.telemetry import (
        read_telemetry, render_summary, summarize_telemetry,
    )

    parser = argparse.ArgumentParser(
        prog="repro-experiments status",
        description="Summarize a JSONL experiment telemetry stream.",
    )
    parser.add_argument("telemetry", help="path to the JSONL file")
    parser.add_argument(
        "--json", action="store_true",
        help="print the summary as JSON instead of text",
    )
    args = parser.parse_args(argv)

    try:
        events = read_telemetry(args.telemetry)
    except OSError as exc:
        print(f"cannot read {args.telemetry}: {exc}", file=sys.stderr)
        return 1
    summary = summarize_telemetry(events)
    if args.json:
        print(jsonlib.dumps(summary, indent=2, sort_keys=True))
    else:
        print(render_summary(summary))
    return 0


def _prewarm(
    settings: ExperimentSettings, workers: int, telemetry=None
) -> None:
    """Simulate the configuration matrix shared by the figures, in
    parallel, so artifact rendering afterwards is mostly cache hits."""
    from repro.config import (
        continuous_window_128, continuous_window_64,
        SchedulingModel, SpeculationPolicy,
    )
    from repro.experiments.parallel import run_matrix_parallel
    from repro.workloads.spec95 import ALL_BENCHMARKS

    nas = SchedulingModel.NAS
    as_ = SchedulingModel.AS
    configs = {}
    for policy in (
        SpeculationPolicy.NO, SpeculationPolicy.NAIVE,
        SpeculationPolicy.SELECTIVE, SpeculationPolicy.STORE_BARRIER,
        SpeculationPolicy.SYNC, SpeculationPolicy.ORACLE,
    ):
        configs[f"w128 NAS/{policy.value}"] = continuous_window_128(
            nas, policy
        )
    for policy in (SpeculationPolicy.NO, SpeculationPolicy.ORACLE):
        configs[f"w64 NAS/{policy.value}"] = continuous_window_64(
            nas, policy
        )
    for latency in (0, 1, 2):
        for policy in (SpeculationPolicy.NO, SpeculationPolicy.NAIVE):
            configs[f"AS/{policy.value}+{latency}"] = (
                continuous_window_128(as_, policy, latency)
            )
    started = time.time()
    run_matrix_parallel(
        ALL_BENCHMARKS, configs, settings, workers=workers,
        telemetry=telemetry,
    )
    print(
        f"  [prewarmed {len(configs)}x{len(ALL_BENCHMARKS)} points "
        f"with {workers} workers in {time.time() - started:.1f}s]\n"
    )


def _export(report, name: str, json_dir, csv_dir) -> None:
    from repro.experiments.export import report_to_csv, report_to_json

    if json_dir:
        os.makedirs(json_dir, exist_ok=True)
        path = os.path.join(json_dir, f"{name}.json")
        with open(path, "w") as handle:
            handle.write(report_to_json(report))
    if csv_dir:
        os.makedirs(csv_dir, exist_ok=True)
        path = os.path.join(csv_dir, f"{name}.csv")
        with open(path, "w") as handle:
            handle.write(report_to_csv(report))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
