"""Shared experiment runner with result caching.

Methodology (DESIGN.md Section 2): every (benchmark, configuration) run
simulates the same deterministic trace; the first ``warmup`` dynamic
instructions run functionally (caches and branch predictors learn —
the paper's sampling methodology), the remaining ``timing`` instructions
run through the detailed timing model.

Results are memoized at two levels. An in-process dict means figure
drivers sharing configurations (most share the NAS/NO and NAS/NAV
baselines) never simulate the same point twice within one interpreter.
When a persistent store is active (:mod:`repro.experiments.store`),
results also survive across processes — a warm CI run or a second CLI
invocation re-simulates nothing. :func:`cache_stats` counts where each
result came from; the parallel runner folds those counters into its
telemetry stream.
"""

from __future__ import annotations

from dataclasses import dataclass, replace as _dc_replace
from typing import Dict, Iterable, Mapping, Optional, Tuple

from repro.config.presets import config_name
from repro.config.processor import ProcessorConfig
from repro.core.backend import (
    resolve_backend,
    split_backend_for,
    vector_limitation,
)
from repro.core.processor import Processor
from repro.core.result import SimResult
from repro.splitwindow.processor import SplitWindowProcessor
from repro.trace.sampling import SamplingPlan, Segment, parse_ratio
from repro.workloads.catalog import (
    get_compiled,
    get_dependence_info,
    get_trace,
    trace_stats,
)
from repro.workloads.spec95 import profile_for


@dataclass(frozen=True)
class ExperimentSettings:
    """Run lengths for the scaled-down reproduction.

    With ``paper_sampling`` enabled, the region after warm-up is split
    into alternating timing/functional intervals according to each
    benchmark's Table 1 "SR" ratio (e.g. 104.hydro2d's "1:10"), scaled
    to ``observation``-sized windows — the paper's Section 3.1
    methodology in miniature. The trace is lengthened so the *timed*
    instruction count stays ``timing_instructions``.
    """

    timing_instructions: int = 16_000
    warmup_instructions: int = 10_000
    seed: int = 0
    paper_sampling: bool = False
    observation: int = 2_000

    @property
    def trace_length(self) -> int:
        return self.timing_instructions + self.warmup_instructions


#: Default settings; ``quick()`` for test-suite-sized runs.
DEFAULT_SETTINGS = ExperimentSettings()


def quick_settings() -> ExperimentSettings:
    """Short runs for smoke tests (shapes hold, noisier values)."""
    return ExperimentSettings(
        timing_instructions=6_000, warmup_instructions=4_000
    )


_result_cache: Dict[Tuple, SimResult] = {}

#: Who drove this process's simulations: "cli" by default, "service"
#: once the experiment service boots (pool workers inherit it across
#: fork). Stamped on fresh results only, mirroring ``extra["backend"]``
#: — cache keys and store digests never include ``extra``, so the
#: stamp cannot perturb content addressing.
_served_by = "cli"


def set_served_by(label: str) -> str:
    """Set the ``extra["served_by"]`` stamp for fresh simulations."""
    global _served_by
    _served_by = str(label)
    return _served_by


@dataclass
class CacheStats:
    """Where results came from since the last :func:`clear_results`."""

    #: Served from the in-process memo.
    memory_hits: int = 0
    #: Restored from the persistent on-disk store.
    store_hits: int = 0
    #: Actually simulated (cache misses everywhere).
    simulations: int = 0

    def delta(self, earlier: "CacheStats") -> "CacheStats":
        """Counters accumulated since the *earlier* snapshot."""
        return CacheStats(
            memory_hits=self.memory_hits - earlier.memory_hits,
            store_hits=self.store_hits - earlier.store_hits,
            simulations=self.simulations - earlier.simulations,
        )


_cache_stats = CacheStats()


def cache_stats() -> CacheStats:
    """A snapshot of the current cache counters."""
    return _dc_replace(_cache_stats)


def clear_results() -> None:
    """Drop every cached simulation result and reset cache counters."""
    _result_cache.clear()
    _cache_stats.memory_hits = 0
    _cache_stats.store_hits = 0
    _cache_stats.simulations = 0


def _config_key(config: ProcessorConfig) -> Tuple:
    memdep = config.memdep
    return (
        config_name(config),
        config.window.size,
        config.window.issue_width,
        config.window.memory_ports,
        config.window.fu_copies,
        memdep.flush_interval,
        memdep.recovery,
        memdep.predictor_entries,
        memdep.predictor_assoc,
        memdep.confidence_threshold,
        memdep.lfst_entries,
        memdep.squash_refill_penalty,
        config.split.enabled,
        config.split.num_units,
        config.split.task_size,
        # Fabric knobs change timing, so they must be part of the key —
        # omitting them made every point of a fabric sweep collide on
        # the same store entry (fixed with SCHEMA_VERSION 3).
        config.split.link_latency,
        config.split.sync_bandwidth,
        config.split.mem_banks,
        config.split.bank_ports,
        config.observe,
    )


def run_benchmark(
    name: str,
    config: ProcessorConfig,
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    backend: Optional[str] = None,
) -> SimResult:
    """Simulate one (benchmark, config) point, with caching.

    Lookup order: in-process memo, then the persistent store (if one
    is active — see :func:`repro.experiments.store.set_store`), then
    an actual simulation. Fresh simulations populate both layers.

    *backend* selects the simulator core (precedence: argument >
    ``config.backend`` > ``$REPRO_BACKEND`` > ``"reference"``).
    Backends are bit-identical, so cache keys ignore the choice — a
    result produced by either backend satisfies both; fresh results
    record their producer in ``extra["backend"]``.
    """
    from repro.experiments.store import active_store

    backend_name = resolve_backend(backend, config)
    config_key = _config_key(config)
    key = (name, settings, config_key)
    cached = _result_cache.get(key)
    if cached is not None:
        _cache_stats.memory_hits += 1
        return cached
    store = active_store()
    if store is not None:
        restored = store.load(name, settings, config_key)
        if restored is not None:
            _cache_stats.store_hits += 1
            _result_cache[key] = restored
            return restored
    plan = _plan_for(name, settings)
    if config.split.enabled:
        # The split-window model has no functional-warm mode; its caches
        # warm during the run, and comparisons against it use the same
        # treatment on both sides. Non-degenerate fabric settings exist
        # only in the event-driven machine and force it; at degenerate
        # settings the two models are bit-identical.
        backend_name = split_backend_for(config, backend_name)
        trace = get_trace(name, plan.length, settings.seed)
        info = _dependences_for_length(
            name, plan.length, settings.seed, trace=trace
        )
        if backend_name == "eventsim":
            from repro.eventsim.splitwindow import EventSplitWindowProcessor

            result = EventSplitWindowProcessor(config, trace, info).run()
        else:
            result = SplitWindowProcessor(config, trace, info).run()
    elif backend_name == "vector" and vector_limitation(config) is None:
        from repro.core.vector import VectorProcessor

        compiled = get_compiled(name, plan.length, settings.seed)
        result = VectorProcessor(config, compiled).run(plan)
    else:
        backend_name = "reference"
        trace = get_trace(name, plan.length, settings.seed)
        info = _dependences_for_length(
            name, plan.length, settings.seed, trace=trace
        )
        result = Processor(config, trace, info).run(plan)
    result.extra["backend"] = backend_name
    result.extra["served_by"] = _served_by
    _cache_stats.simulations += 1
    _result_cache[key] = result
    if store is not None:
        store.save(name, settings, config_key, result)
    return result


def _dependences_for_length(name: str, length: int, seed: int, trace=None):
    """Dependence analysis via the catalog's provenance-keyed memo.

    Pass *trace* when already in hand so a catalog-cache miss does not
    regenerate it. The analysis is memoized by the trace's provenance
    ``(name, length, seed, generator_version)`` — and when the trace
    came from the persistent store, decoded from the packed dependence
    columns instead of recomputed.
    """
    if trace is None:
        trace = get_trace(name, length, seed)
    return get_dependence_info(trace)


def _plan_for(name: str, settings: ExperimentSettings) -> SamplingPlan:
    """Warm-up segment plus the timed region (optionally SR-sampled)."""
    warm = settings.warmup_instructions
    if not settings.paper_sampling:
        length = settings.trace_length
        segments = []
        if warm:
            segments.append(Segment(0, warm, timing=False))
        segments.append(Segment(warm, length, timing=True))
        return SamplingPlan(tuple(segments), length)

    # Paper-style: alternate timing/functional per the benchmark's
    # Table 1 ratio so that exactly `timing_instructions` are timed.
    try:
        ratio_text = profile_for(name).sampling_ratio
    except KeyError:
        ratio_text = None
    timing_ratio, functional_ratio = parse_ratio(ratio_text)
    observation = settings.observation
    segments = []
    if warm:
        segments.append(Segment(0, warm, timing=False))
    pos = warm
    timed = 0
    while timed < settings.timing_instructions:
        span = min(
            observation * timing_ratio,
            settings.timing_instructions - timed,
        )
        segments.append(Segment(pos, pos + span, timing=True))
        pos += span
        timed += span
        if functional_ratio and timed < settings.timing_instructions:
            func = observation * functional_ratio
            segments.append(Segment(pos, pos + func, timing=False))
            pos += func
    return SamplingPlan(tuple(segments), pos)


def run_benchmark_seeds(
    name: str,
    config: ProcessorConfig,
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    seeds: Tuple[int, ...] = (0, 1, 2),
    backend: Optional[str] = None,
) -> list:
    """One (benchmark, config) point across several workload seeds.

    Each seed generates a statistically-identical but distinct trace;
    the spread of the returned results bounds workload-generation noise
    (see :func:`repro.stats.summary.mean_and_spread`).
    """
    extra = {} if backend is None else {"backend": backend}
    results = []
    for seed in seeds:
        seeded = _dc_replace(settings, seed=seed)
        results.append(run_benchmark(name, config, seeded, **extra))
    return results


def run_matrix(
    benchmarks: Iterable[str],
    configs: Mapping[str, ProcessorConfig],
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    telemetry=None,
    backend: Optional[str] = None,
) -> Dict[str, Dict[str, SimResult]]:
    """Results for every (benchmark, config) pair.

    Returns ``{config_label: {benchmark: SimResult}}``. *telemetry*
    (an :class:`~repro.experiments.telemetry.TelemetryWriter` or a
    path) gets ``matrix_start``/``matrix_finish`` events including the
    cache hit/miss counters accumulated over the matrix and the
    backend the sweep ran on. *backend* is forwarded to every
    :func:`run_benchmark` cell.
    """
    import time

    from repro.experiments.telemetry import as_writer

    benchmarks = list(benchmarks)
    writer, owned = as_writer(telemetry)
    before = cache_stats()
    traces_before = trace_stats()
    started = time.perf_counter()
    writer.emit(
        "matrix_start",
        mode="serial",
        backend=resolve_backend(backend),
        benchmarks=len(benchmarks),
        configs=len(configs),
        points=len(benchmarks) * len(configs),
    )
    try:
        out: Dict[str, Dict[str, SimResult]] = {}
        for label, config in configs.items():
            out[label] = {
                name: run_benchmark(name, config, settings, backend)
                for name in benchmarks
            }
    finally:
        spent = cache_stats().delta(before)
        traces = trace_stats().delta(traces_before)
        writer.emit(
            "matrix_finish",
            mode="serial",
            wall=time.perf_counter() - started,
            memory_hits=spent.memory_hits,
            store_hits=spent.store_hits,
            simulations=spent.simulations,
            traces_generated=traces.generated,
            trace_store_hits=traces.store_hits,
            traces_inherited=traces.inherited,
            trace_wall=traces.trace_wall,
        )
        if owned:
            writer.close()
    return out
