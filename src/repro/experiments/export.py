"""Export simulation results and reports to CSV / JSON.

The experiment drivers return :class:`ExperimentReport` objects whose
``data`` payloads are plain dict/float structures; these helpers
serialise them (and raw :class:`SimResult` collections) for notebooks,
plotting scripts, or regression tracking.
"""

from __future__ import annotations

import csv
import dataclasses
import io
import json
from typing import Iterable, Mapping

from repro.core.result import SimResult
from repro.experiments.report import ExperimentReport

#: Every raw (stored, not derived) field of :class:`SimResult`, in
#: declaration order. This is the round-trip schema used by the
#: persistent result store.
RAW_RESULT_FIELDS = tuple(
    f.name for f in dataclasses.fields(SimResult)
)

#: SimResult counters exported to tabular form, in column order.
RESULT_FIELDS = (
    "benchmark", "config_label", "suite",
    "cycles", "committed", "committed_loads", "committed_stores",
    "committed_branches", "ipc",
    "misspeculations", "misspeculation_rate", "squashed_instructions",
    "false_dependence_loads", "true_dependence_loads",
    "false_dependence_fraction", "mean_resolution_latency",
    "branch_predictions", "branch_mispredictions",
    "branch_misprediction_rate",
    "load_forwards", "speculative_loads",
    "dcache_accesses", "dcache_misses", "dcache_miss_rate",
    "icache_accesses", "icache_misses",
    "l2_accesses", "l2_misses",
)


def result_row(result: SimResult) -> dict:
    """One flat dict of every exported field of *result*."""
    return {field: getattr(result, field) for field in RESULT_FIELDS}


def result_to_record(result: SimResult) -> dict:
    """Lossless dict of *result*'s raw fields (see ``RAW_RESULT_FIELDS``).

    Unlike :func:`result_row` this holds no derived metrics, so the
    record round-trips exactly through :func:`result_from_record`.
    """
    record = {
        field: getattr(result, field) for field in RAW_RESULT_FIELDS
    }
    record["extra"] = dict(result.extra)
    return record


def result_from_record(record: Mapping) -> SimResult:
    """Rebuild a :class:`SimResult` from :func:`result_to_record` output.

    Raises ``KeyError`` if the record is missing any raw field —
    callers (the result store) treat that as a stale-schema record.
    """
    return SimResult(
        **{field: record[field] for field in RAW_RESULT_FIELDS}
    )


def results_to_csv(results: Iterable[SimResult]) -> str:
    """CSV text with one row per result (stable column order)."""
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=RESULT_FIELDS)
    writer.writeheader()
    for result in results:
        writer.writerow(result_row(result))
    return buffer.getvalue()


def results_to_json(results: Iterable[SimResult], indent: int = 2) -> str:
    """JSON array of exported result records."""
    return json.dumps(
        [result_row(result) for result in results], indent=indent
    )


def report_to_json(report: ExperimentReport, indent: int = 2) -> str:
    """Serialise a report: identity, rows and the data payload."""
    return json.dumps(
        {
            "experiment": report.experiment,
            "title": report.title,
            "headers": list(report.headers),
            "rows": [list(map(str, row)) for row in report.rows],
            "notes": list(report.notes),
            "data": _plain(report.data),
        },
        indent=indent,
    )


def report_to_csv(report: ExperimentReport) -> str:
    """CSV of a report's rendered rows (headers first)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(report.headers)
    for row in report.rows:
        writer.writerow([str(cell) for cell in row])
    return buffer.getvalue()


def _plain(value):
    """Recursively coerce report data into JSON-encodable types."""
    if isinstance(value, Mapping):
        return {str(key): _plain(val) for key, val in value.items()}
    if isinstance(value, (list, tuple)):
        return [_plain(item) for item in value]
    if isinstance(value, (int, float, str, bool)) or value is None:
        return value
    return str(value)
