"""Age/size-based eviction for the persistent stores.

A long-running service node keeps its result and trace stores warm
forever, so they grow without bound; ``repro cache prune`` applies
two complementary policies to any store that can enumerate its entry
paths (both :class:`~repro.experiments.store.ResultStore` and
:class:`~repro.trace.tracestore.TraceStore` can):

* **age**: entries whose mtime is older than ``max_age_seconds`` go
  (a cold cell will be re-simulated on next request — eviction can
  only ever cost time, never correctness, exactly like corruption);
* **size**: if the survivors still exceed ``max_size_bytes``, the
  oldest go first (LRU by mtime — both stores rewrite entries they
  refresh) until the store fits.

Dry-run by default: callers get the full eviction plan without any
unlink happening, and pass ``apply=True`` to execute it.
"""

from __future__ import annotations

import os
import time
from typing import Iterable, List, Optional, Tuple


def prune_paths(
    paths: Iterable[str],
    *,
    max_age_seconds: Optional[float] = None,
    max_size_bytes: Optional[int] = None,
    now: Optional[float] = None,
    apply: bool = False,
) -> dict:
    """Plan (and with ``apply`` execute) an eviction over *paths*.

    Returns a report dict: ``examined``, ``total_bytes``,
    ``selected`` (paths planned for eviction, oldest first),
    ``selected_bytes``, ``kept``, ``kept_bytes``, ``removed`` (0 on
    dry runs), ``errors`` (unlink failures), ``applied``.
    """
    now = time.time() if now is None else now
    entries: List[Tuple[float, int, str]] = []
    for path in paths:
        try:
            stat = os.stat(path)
        except OSError:
            continue
        entries.append((stat.st_mtime, stat.st_size, path))
    entries.sort()  # oldest first

    total_bytes = sum(size for _, size, _ in entries)
    selected: List[Tuple[float, int, str]] = []
    kept: List[Tuple[float, int, str]] = []
    for mtime, size, path in entries:
        if (
            max_age_seconds is not None
            and now - mtime > max_age_seconds
        ):
            selected.append((mtime, size, path))
        else:
            kept.append((mtime, size, path))

    if max_size_bytes is not None:
        kept_bytes = sum(size for _, size, _ in kept)
        index = 0
        while kept_bytes > max_size_bytes and index < len(kept):
            mtime, size, path = kept[index]
            selected.append((mtime, size, path))
            kept_bytes -= size
            index += 1
        kept = kept[index:]
    selected.sort()

    removed = 0
    errors = 0
    if apply:
        for _, _, path in selected:
            try:
                os.unlink(path)
                removed += 1
            except OSError:
                errors += 1

    return {
        "examined": len(entries),
        "total_bytes": total_bytes,
        "selected": [path for _, _, path in selected],
        "selected_bytes": sum(size for _, size, _ in selected),
        "kept": len(kept),
        "kept_bytes": sum(size for _, size, _ in kept),
        "removed": removed,
        "errors": errors,
        "applied": apply,
    }
