"""repro — memory dependence speculation in continuous-window superscalars.

A from-scratch reproduction of Moshovos & Sohi, "Memory Dependence
Speculation Tradeoffs in Centralized, Continuous-Window Superscalar
Processors" (HPCA 2000): a cycle-level out-of-order simulator, the
paper's complete speculation-policy design space, a split-window
contrast model, calibrated SPEC'95 stand-in workloads, and a harness
regenerating every table and figure.

Quick use::

    from repro import (
        continuous_window_128, SchedulingModel, SpeculationPolicy,
        simulate, get_trace,
    )
    result = simulate(
        continuous_window_128(SchedulingModel.NAS,
                              SpeculationPolicy.SYNC),
        get_trace("102.swim", 26_000),
    )
    print(result.ipc)
"""

from repro.config import (
    ProcessorConfig,
    SchedulingModel,
    SpeculationPolicy,
    config_name,
    continuous_window_128,
    continuous_window_64,
    split_window,
)
from repro.core import Processor, SimResult, simulate
from repro.observe import (
    NullObserverSink,
    ObserverBus,
    PipelineRecorder,
    StallAccountant,
    default_observer,
)
from repro.splitwindow import simulate_split
from repro.trace.events import Trace
from repro.vm import run_program
from repro.workloads import (
    ALL_BENCHMARKS,
    FP_BENCHMARKS,
    INT_BENCHMARKS,
    KERNEL_NAMES,
    get_trace,
    kernel_trace,
)

__version__ = "1.0.0"

__all__ = [
    "ProcessorConfig",
    "SchedulingModel",
    "SpeculationPolicy",
    "config_name",
    "continuous_window_128",
    "continuous_window_64",
    "split_window",
    "Processor",
    "SimResult",
    "simulate",
    "NullObserverSink",
    "ObserverBus",
    "PipelineRecorder",
    "StallAccountant",
    "default_observer",
    "simulate_split",
    "Trace",
    "run_program",
    "ALL_BENCHMARKS",
    "FP_BENCHMARKS",
    "INT_BENCHMARKS",
    "KERNEL_NAMES",
    "get_trace",
    "kernel_trace",
    "__version__",
]
