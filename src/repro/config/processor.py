"""Configuration dataclasses mirroring Table 2 of the paper.

The paper names each configuration ``A/B`` where ``A`` says whether an
address-based load/store scheduler is present (``AS``) or absent (``NAS``)
and ``B`` names the memory dependence speculation policy. Those two axes
are :class:`SchedulingModel` and :class:`SpeculationPolicy` here; the rest
of the dataclasses capture the fixed machine of Table 2.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Optional

from repro.isa.latencies import LatencyTable, DEFAULT_LATENCIES


class SchedulingModel(enum.Enum):
    """Whether an address-based load/store scheduler is used."""

    AS = "AS"  # address-based scheduler present
    NAS = "NAS"  # no address-based scheduler


class SpeculationPolicy(enum.Enum):
    """Memory dependence speculation policy (Section 2.1)."""

    NO = "NO"  # never speculate: loads wait for all older stores
    NAIVE = "NAV"  # speculate every load as soon as its address is ready
    SELECTIVE = "SEL"  # predict dependence-prone loads; they do not speculate
    STORE_BARRIER = "STORE"  # predict dependence-prone stores; they barrier
    SYNC = "SYNC"  # speculation/synchronization via MDPT synonyms
    ORACLE = "ORACLE"  # perfect a-priori dependence knowledge
    #: Extension (not in the paper's evaluation): the store-set
    #: predictor of Chrysos & Emer [4], for head-to-head ablations
    #: against the MDPT scheme.
    STORE_SETS = "SSET"


@dataclass(frozen=True)
class FetchConfig:
    """Fetch unit (Table 2): 8-wide, 4 outstanding requests."""

    width: int = 8
    max_outstanding_requests: int = 4
    #: Combining of up to 4 non-continuous blocks per cycle.
    max_blocks_per_cycle: int = 4
    #: Combined fetch + place-into-window latency ("a combined 4 cycles").
    front_end_depth: int = 4


@dataclass(frozen=True)
class BranchPredictorConfig:
    """64K-entry McFarling combined predictor (Table 2)."""

    meta_entries: int = 64 * 1024
    bimodal_entries: int = 64 * 1024
    gselect_entries: int = 64 * 1024
    global_history_bits: int = 5
    btb_entries: int = 2048
    btb_assoc: int = 2
    ras_entries: int = 64
    max_predictions_per_cycle: int = 4
    max_resolutions_per_cycle: int = 4


@dataclass(frozen=True)
class CacheConfig:
    """One cache level (geometry + timing + MSHR limits)."""

    name: str
    size_bytes: int
    assoc: int
    block_bytes: int
    banks: int
    hit_latency: int
    #: Latency of a miss serviced by the next level (paper quotes fixed
    #: miss costs per level; transfer time is added by the hierarchy).
    miss_latency: int
    mshr_primary_per_bank: int
    mshr_secondary_per_primary: int

    @property
    def sets_per_bank(self) -> int:
        total_blocks = self.size_bytes // self.block_bytes
        return total_blocks // (self.assoc * self.banks)

    def __post_init__(self) -> None:
        if self.size_bytes % self.block_bytes:
            raise ValueError(f"{self.name}: size not a multiple of block")
        total_blocks = self.size_bytes // self.block_bytes
        if total_blocks % (self.assoc * self.banks):
            raise ValueError(
                f"{self.name}: blocks not divisible by assoc*banks"
            )
        if self.sets_per_bank & (self.sets_per_bank - 1):
            raise ValueError(f"{self.name}: sets per bank not a power of 2")


@dataclass(frozen=True)
class MainMemoryConfig:
    """Infinite main memory: 34 cycles + 2 cycles per 4-word transfer."""

    base_latency: int = 34
    cycles_per_transfer: int = 2
    transfer_words: int = 4


@dataclass(frozen=True)
class WindowConfig:
    """Reorder buffer / issue resources (Table 2 "OOO core")."""

    size: int = 128  # reorder-buffer entries
    issue_width: int = 8  # operations per cycle
    lsq_size: int = 128  # combined load/store queue entries
    lsq_input_ports: int = 4
    lsq_output_ports: int = 4
    memory_ports: int = 4
    #: Copies of every functional unit (all fully pipelined).
    fu_copies: int = 8
    store_buffer_size: int = 128


@dataclass(frozen=True)
class MemDepConfig:
    """Memory dependence machinery (Sections 3.3-3.6)."""

    scheduling: SchedulingModel = SchedulingModel.NAS
    policy: SpeculationPolicy = SpeculationPolicy.NO
    #: Extra cycles through the address-based scheduler (0, 1 or 2).
    addr_scheduler_latency: int = 0
    #: Predictor geometry: "4K, 2-way set associative" for SEL/STORE/SYNC.
    predictor_entries: int = 4096
    predictor_assoc: int = 2
    #: LFST size for the store-set extension policy.
    lfst_entries: int = 256
    #: SEL/STORE confidence: 3 miss-speculations before predicting.
    confidence_threshold: int = 3
    #: Counters/MDPT flushed every this many cycles (paper: 1M cycles;
    #: scaled down by default because our samples are far shorter).
    flush_interval: int = 100_000
    #: Squash re-dispatch penalty: cycles before the squashed load and its
    #: successors re-enter the window (front-end refill).
    squash_refill_penalty: int = 4
    #: Miss-speculation recovery: "squash" (invalidate everything after
    #: the load — the paper's model) or "selective" (re-execute only the
    #: load and its dependents — the Section 2 alternative, an ablation
    #: extension here).
    recovery: str = "squash"

    def __post_init__(self) -> None:
        if self.addr_scheduler_latency < 0:
            raise ValueError("addr_scheduler_latency must be >= 0")
        if self.recovery not in ("squash", "selective"):
            raise ValueError(
                f"unknown recovery model {self.recovery!r}"
            )
        if (
            self.scheduling is SchedulingModel.NAS
            and self.addr_scheduler_latency
        ):
            raise ValueError("NAS model has no address scheduler latency")
        if self.policy in (
            SpeculationPolicy.SELECTIVE,
            SpeculationPolicy.STORE_BARRIER,
            SpeculationPolicy.SYNC,
            SpeculationPolicy.STORE_SETS,
        ) and self.scheduling is SchedulingModel.AS:
            raise ValueError(
                f"paper only evaluates {self.policy.value} without an "
                "address-based scheduler (NAS)"
            )


@dataclass(frozen=True)
class SplitWindowConfig:
    """Distributed split-window parameters (Section 3.7).

    The fabric fields parameterize the cross-window synchronization
    fabric modelled by :mod:`repro.eventsim`: how long a posted store
    address takes to cross between units (``link_latency``), how many
    such messages the fabric can deliver per cycle (``sync_bandwidth``),
    and whether main-memory accesses contend for banks (``mem_banks`` /
    ``bank_ports``). All default to the *degenerate* point (0-latency
    links, unbounded bandwidth, no bank contention) at which the
    event-driven machine is bit-identical to the legacy cycle-driven
    :class:`repro.splitwindow.processor.SplitWindowProcessor`.
    """

    enabled: bool = False
    num_units: int = 4
    #: Dynamic instructions assigned to each sub-window task.
    task_size: int = 32
    #: Extra cycles for a posted store address to cross the sync fabric
    #: between units (on top of the address scheduler's own latency).
    link_latency: int = 0
    #: Cross-window sync-fabric bandwidth in messages per cycle
    #: (0 = unbounded; excess messages queue FIFO behind earlier ones).
    sync_bandwidth: int = 0
    #: Interleaved data-memory banks contended by load accesses
    #: (0 = no contention modelled).
    mem_banks: int = 0
    #: Accesses each bank can accept per cycle when ``mem_banks`` > 0.
    bank_ports: int = 1

    def __post_init__(self) -> None:
        if self.num_units < 1:
            raise ValueError("num_units must be >= 1")
        if self.task_size < 1:
            raise ValueError("task_size must be >= 1")
        if self.link_latency < 0:
            raise ValueError("link_latency must be >= 0")
        if self.sync_bandwidth < 0:
            raise ValueError("sync_bandwidth must be >= 0 (0 = unbounded)")
        if self.mem_banks < 0:
            raise ValueError("mem_banks must be >= 0 (0 = no contention)")
        if self.bank_ports < 1:
            raise ValueError("bank_ports must be >= 1")

    @property
    def fabric_degenerate(self) -> bool:
        """True at the 0-latency / unbounded-bandwidth / no-contention
        point where the legacy cycle-driven model is exact."""
        return (
            self.link_latency == 0
            and self.sync_bandwidth == 0
            and self.mem_banks == 0
        )


def _default_l1i() -> CacheConfig:
    return CacheConfig(
        name="L1I",
        size_bytes=64 * 1024,
        assoc=2,
        block_bytes=32,
        banks=8,
        hit_latency=2,
        miss_latency=10,
        mshr_primary_per_bank=2,
        mshr_secondary_per_primary=1,
    )


def _default_l1d() -> CacheConfig:
    return CacheConfig(
        name="L1D",
        size_bytes=32 * 1024,
        assoc=2,
        block_bytes=32,
        banks=4,
        hit_latency=2,
        miss_latency=10,
        mshr_primary_per_bank=8,
        mshr_secondary_per_primary=8,
    )


def _default_l2() -> CacheConfig:
    return CacheConfig(
        name="L2",
        size_bytes=4 * 1024 * 1024,
        assoc=2,
        block_bytes=128,
        banks=4,
        hit_latency=8,
        miss_latency=50,
        mshr_primary_per_bank=4,
        mshr_secondary_per_primary=3,
    )


@dataclass(frozen=True)
class ProcessorConfig:
    """Complete machine description.

    The default values reproduce the paper's Table 2 (128-entry continuous
    window). Use :mod:`repro.config.presets` for the named configurations.
    """

    fetch: FetchConfig = field(default_factory=FetchConfig)
    branch: BranchPredictorConfig = field(
        default_factory=BranchPredictorConfig
    )
    window: WindowConfig = field(default_factory=WindowConfig)
    icache: CacheConfig = field(default_factory=_default_l1i)
    dcache: CacheConfig = field(default_factory=_default_l1d)
    l2: CacheConfig = field(default_factory=_default_l2)
    main_memory: MainMemoryConfig = field(default_factory=MainMemoryConfig)
    memdep: MemDepConfig = field(default_factory=MemDepConfig)
    split: SplitWindowConfig = field(default_factory=SplitWindowConfig)
    latencies: LatencyTable = DEFAULT_LATENCIES
    #: Cycles from branch mispredict resolution to corrected fetch reaching
    #: the window (front-end redirect penalty).
    branch_redirect_penalty: int = 4
    #: Attach the default observability bus (stall attribution — see
    #: :mod:`repro.observe`). Purely additive: timing is bit-identical
    #: with or without it; results gain an ``extra["observe"]`` summary.
    observe: bool = False
    #: Preferred simulator backend (``"reference"`` or ``"vector"``);
    #: None defers to ``$REPRO_BACKEND`` / the default. Backends are
    #: bit-identical, so this field is deliberately *excluded* from
    #: result-store keys and does not affect ``label``.
    backend: Optional[str] = None

    def with_memdep(
        self,
        scheduling: Optional[SchedulingModel] = None,
        policy: Optional[SpeculationPolicy] = None,
        addr_scheduler_latency: Optional[int] = None,
        **kwargs,
    ) -> "ProcessorConfig":
        """A copy of this config with memory-dependence fields replaced."""
        updates = dict(kwargs)
        if scheduling is not None:
            updates["scheduling"] = scheduling
        if policy is not None:
            updates["policy"] = policy
        if addr_scheduler_latency is not None:
            updates["addr_scheduler_latency"] = addr_scheduler_latency
        return replace(self, memdep=replace(self.memdep, **updates))

    @property
    def label(self) -> str:
        """Paper-style ``A/B`` name, e.g. ``NAS/SYNC`` or ``AS/NAV+1cy``."""
        name = f"{self.memdep.scheduling.value}/{self.memdep.policy.value}"
        if (
            self.memdep.scheduling is SchedulingModel.AS
            and self.memdep.addr_scheduler_latency
        ):
            name += f"+{self.memdep.addr_scheduler_latency}cy"
        return name
