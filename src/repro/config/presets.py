"""Named machine presets used throughout the evaluation.

The paper evaluates two continuous-window machines:

* the default **128-entry** window of Table 2 (issue width 8, 4 memory
  ports, 8 copies of each functional unit), and
* a **64-entry** derivative ("derived from Table 2, by reducing issue
  width to 4, load/store ports to 2, and all functional units to 2").

Section 3.7 additionally discusses a **split-window** machine, which we
model by partitioning the same window into sub-windows with independent
fetch.
"""

from __future__ import annotations

from dataclasses import replace

from repro.config.processor import (
    MemDepConfig,
    ProcessorConfig,
    SchedulingModel,
    SpeculationPolicy,
    SplitWindowConfig,
    WindowConfig,
)


def continuous_window_128(
    scheduling: SchedulingModel = SchedulingModel.NAS,
    policy: SpeculationPolicy = SpeculationPolicy.NO,
    addr_scheduler_latency: int = 0,
    **memdep_kwargs,
) -> ProcessorConfig:
    """The paper's default machine (Table 2): 128-entry window."""
    return ProcessorConfig(
        memdep=MemDepConfig(
            scheduling=scheduling,
            policy=policy,
            addr_scheduler_latency=addr_scheduler_latency,
            **memdep_kwargs,
        )
    )


def continuous_window_64(
    scheduling: SchedulingModel = SchedulingModel.NAS,
    policy: SpeculationPolicy = SpeculationPolicy.NO,
    addr_scheduler_latency: int = 0,
    **memdep_kwargs,
) -> ProcessorConfig:
    """64-entry window: issue width 4, 2 memory ports, 2 FU copies."""
    base = continuous_window_128(
        scheduling, policy, addr_scheduler_latency, **memdep_kwargs
    )
    window = WindowConfig(
        size=64,
        issue_width=4,
        lsq_size=64,
        lsq_input_ports=2,
        lsq_output_ports=2,
        memory_ports=2,
        fu_copies=2,
        store_buffer_size=64,
    )
    return replace(base, window=window)


def split_window(
    scheduling: SchedulingModel = SchedulingModel.AS,
    policy: SpeculationPolicy = SpeculationPolicy.NAIVE,
    addr_scheduler_latency: int = 0,
    num_units: int = 4,
    task_size: int = 32,
    link_latency: int = 0,
    sync_bandwidth: int = 0,
    mem_banks: int = 0,
    bank_ports: int = 1,
    **memdep_kwargs,
) -> ProcessorConfig:
    """Distributed split-window machine for the Section 3.7 comparison.

    Total window capacity matches the 128-entry continuous machine, but is
    partitioned into *num_units* sub-windows that fetch independently.
    The fabric knobs (*link_latency*, *sync_bandwidth*, *mem_banks*,
    *bank_ports*) parameterize the cross-window sync fabric modelled by
    :mod:`repro.eventsim`; any non-degenerate setting requires the
    event-driven backend (the legacy cycle model rejects it).
    """
    base = continuous_window_128(
        scheduling, policy, addr_scheduler_latency, **memdep_kwargs
    )
    return replace(
        base,
        split=SplitWindowConfig(
            enabled=True,
            num_units=num_units,
            task_size=task_size,
            link_latency=link_latency,
            sync_bandwidth=sync_bandwidth,
            mem_banks=mem_banks,
            bank_ports=bank_ports,
        ),
    )


def config_name(config: ProcessorConfig) -> str:
    """Stable display name, e.g. ``w128 NAS/SYNC`` or ``split AS/NAV``."""
    if config.split.enabled:
        prefix = f"split{config.split.num_units}"
    else:
        prefix = f"w{config.window.size}"
    return f"{prefix} {config.label}"
