"""Processor configuration (Table 2 of the paper) and presets."""

from repro.config.processor import (
    BranchPredictorConfig,
    CacheConfig,
    FetchConfig,
    MainMemoryConfig,
    MemDepConfig,
    ProcessorConfig,
    SchedulingModel,
    SpeculationPolicy,
    SplitWindowConfig,
    WindowConfig,
)
from repro.config.presets import (
    continuous_window_128,
    continuous_window_64,
    split_window,
    config_name,
)

__all__ = [
    "BranchPredictorConfig",
    "CacheConfig",
    "FetchConfig",
    "MainMemoryConfig",
    "MemDepConfig",
    "ProcessorConfig",
    "SchedulingModel",
    "SpeculationPolicy",
    "SplitWindowConfig",
    "WindowConfig",
    "continuous_window_128",
    "continuous_window_64",
    "split_window",
    "config_name",
]
