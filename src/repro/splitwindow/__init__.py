"""Distributed, split-window processor model (Section 3.7)."""

from repro.splitwindow.processor import SplitWindowProcessor, simulate_split

__all__ = ["SplitWindowProcessor", "simulate_split"]
