"""A distributed, split-window (Multiscalar-like) timing model.

Section 3.7 of the paper explains why an address-based scheduler that
eliminates miss-speculations under a *continuous* window fails to do so
under a *split* window: the dynamic instruction stream is divided into
tasks assigned to independent units that fetch concurrently, so a load in
a younger task can compute its address — and speculatively access memory
— before an older task has even fetched the store it depends on.

This model captures exactly the properties the section's argument needs:

* the trace is split into fixed-size tasks distributed round-robin over
  ``num_units`` sub-windows;
* units fetch *independently and concurrently* (no cross-unit program
  order priority);
* register dependences are honoured exactly (producers precomputed from
  the trace, standing in for Multiscalar's register forwarding);
* stores post their addresses as soon as possible into a global
  address-based scheduler with configurable latency, loads inspect it
  before accessing memory (AS/NAV), or ignore it (NAS/NAV);
* a true-dependence violation squashes the offending task and all
  younger tasks, which then re-execute.

It is deliberately simpler than the continuous-window core — the paper
uses the split model only for the qualitative contrast of Figure 7.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Tuple

from repro.config.processor import (
    ProcessorConfig,
    SchedulingModel,
    SpeculationPolicy,
)
from repro.core.result import SimResult
from repro.isa.opcodes import FP_CLASSES
from repro.isa.registers import REG_ZERO
from repro.memory.hierarchy import MemoryHierarchy
from repro.trace.dependences import DependenceInfo, compute_dependence_info
from repro.trace.events import Trace


class _Inst:
    """Per-dynamic-instruction timing state."""

    __slots__ = (
        "inst", "seq", "task", "producers", "dispatch_cycle",
        "issue_cycle", "complete_cycle", "write_cycle", "posted_cycle",
        "mem_issue_cycle", "forwarded_from", "generation",
    )

    def __init__(self, inst, task: int, producers: Tuple[int, ...]):
        self.inst = inst
        self.seq = inst.seq
        self.task = task
        self.producers = producers
        self.reset()

    def reset(self) -> None:
        self.dispatch_cycle: Optional[int] = None
        self.issue_cycle: Optional[int] = None
        self.complete_cycle: Optional[int] = None
        self.write_cycle: Optional[int] = None
        self.posted_cycle: Optional[int] = None
        self.mem_issue_cycle: Optional[int] = None
        self.forwarded_from: Optional[int] = None


class SplitWindowProcessor:
    """Split-window machine bound to one trace."""

    def __init__(
        self,
        config: ProcessorConfig,
        trace: Trace,
        dep_info: Optional[Dict[int, DependenceInfo]] = None,
    ) -> None:
        if not config.split.enabled:
            raise ValueError("config.split.enabled must be True")
        if config.memdep.policy not in (
            SpeculationPolicy.NAIVE, SpeculationPolicy.NO
        ):
            raise ValueError(
                "split-window model supports NAV and NO policies"
            )
        if not config.split.fabric_degenerate:
            raise ValueError(
                "non-degenerate sync-fabric settings (link latency, "
                "bounded bandwidth, banked memory) are modelled only by "
                "the event-driven backend (repro.eventsim)"
            )
        self.config = config
        self.trace = trace
        self.dep_info = (
            dep_info if dep_info is not None
            else compute_dependence_info(trace)
        )
        self.as_mode = config.memdep.scheduling is SchedulingModel.AS
        self.hierarchy = MemoryHierarchy(config)

        task_size = config.split.task_size
        self._insts: List[_Inst] = []
        last_writer: Dict[int, int] = {}
        for inst in trace:
            producers = tuple(
                last_writer[src]
                for src in inst.srcs
                if src != REG_ZERO and src in last_writer
            )
            self._insts.append(
                _Inst(inst, inst.seq // task_size, producers)
            )
            if inst.dest is not None and inst.dest != REG_ZERO:
                last_writer[inst.dest] = inst.seq
        self.num_tasks = (
            (len(trace) + task_size - 1) // task_size if len(trace) else 0
        )

    # ------------------------------------------------------------------

    def run(self) -> SimResult:
        config = self.config
        stats = SimResult(
            config_label=f"split{config.split.num_units} {config.label}",
            benchmark=self.trace.name,
            suite=self.trace.suite,
        )
        insts = self._insts
        if not insts:
            return stats

        units = config.split.num_units
        per_unit_fetch = max(1, config.fetch.width // units)
        per_unit_issue = max(1, config.window.issue_width // units)
        latency_of = config.latencies.latency
        sched_latency = config.memdep.addr_scheduler_latency
        refill = config.memdep.squash_refill_penalty

        #: Oldest not-yet-committed task.
        commit_task = 0
        #: Per unit: task index currently running, or None.
        running: List[Optional[int]] = [None] * units
        next_task = 0
        #: Per task: index of next instruction to dispatch.
        cursor: Dict[int, int] = {}
        #: Posted store addresses: seq -> (visible cycle, inst).
        posted: Dict[int, _Inst] = {}
        #: Dependent loads by producing store seq.
        dep_loads: Dict[int, List[_Inst]] = {}
        for record in insts:
            info = self.dep_info.get(record.seq)
            if info is not None:
                dep_loads.setdefault(info.store_seq, []).append(record)

        pending: List[Tuple[int, int, _Inst]] = []  # (seq, serial, inst)
        serial = 0
        cycle = 0
        guard = 0

        def task_range(task: int) -> Tuple[int, int]:
            size = config.split.task_size
            return task * size, min((task + 1) * size, len(insts))

        def squash_from_seq(seq: int, resume: int) -> None:
            """Squash the load at *seq* and everything younger.

            The offending load's task rewinds to the load (instructions
            before it, including any already-written same-task stores,
            survive — squash invalidation re-executes only the load and
            its successors); strictly younger tasks restart entirely.
            """
            nonlocal next_task, pending
            task = insts[seq].task
            for u in range(units):
                if running[u] is not None and running[u] > task:
                    running[u] = None
            next_task = min(next_task, task + 1)
            for record in insts[seq:]:
                if record.dispatch_cycle is None and (
                    record.task > task + units
                ):
                    break
                record.reset()
            for posted_seq in [s for s in posted if s >= seq]:
                del posted[posted_seq]
            pending = [
                (s, n, r) for s, n, r in pending if r.seq < seq
            ]
            heapq.heapify(pending)
            cursor[task] = seq
            for later in range(task + 1, self.num_tasks):
                cursor.pop(later, None)
            nonlocal task_resume_at
            task_resume_at = resume

        task_resume_at = 0

        while commit_task < self.num_tasks:
            guard += 1
            if guard > 80 * len(insts) + 10_000:
                raise RuntimeError("split-window simulation wedged")
            cycle += 1

            # --- spawn tasks onto free units (in order) ---
            if cycle >= task_resume_at:
                for u in range(units):
                    if running[u] is None and next_task < self.num_tasks:
                        target = next_task % units
                        if running[target] is None:
                            running[target] = next_task
                            cursor.setdefault(
                                next_task, task_range(next_task)[0]
                            )
                            next_task += 1

            # --- per-unit fetch/dispatch (independent, concurrent) ---
            for u in range(units):
                task = running[u]
                if task is None:
                    continue
                lo, hi = task_range(task)
                pos = cursor[task]
                for _ in range(per_unit_fetch):
                    if pos >= hi:
                        break
                    record = insts[pos]
                    record.dispatch_cycle = cycle
                    serial += 1
                    heapq.heappush(pending, (record.seq, serial, record))
                    pos += 1
                cursor[task] = pos

            # --- issue: within-unit age priority, global port limits ---
            ports = config.window.memory_ports
            issued_per_unit = [0] * units
            fp_used = 0
            requeue = []
            squash_request: Optional[Tuple[int, int]] = None
            while pending:
                seq, n, record = heapq.heappop(pending)
                unit = record.task % units
                if record.dispatch_cycle is None:
                    continue  # squashed residue
                if issued_per_unit[unit] >= per_unit_issue:
                    requeue.append((seq, n, record))
                    if len(requeue) > 4 * units * per_unit_issue:
                        break
                    continue
                # Register readiness.
                ready = record.dispatch_cycle
                blocked = False
                for producer_seq in record.producers:
                    producer = insts[producer_seq]
                    done = (
                        producer.write_cycle
                        if producer.inst.is_store
                        else producer.complete_cycle
                    )
                    if producer.seq >= record.seq:
                        continue
                    if done is None:
                        blocked = True
                        break
                    ready = max(ready, done)
                if blocked or ready > cycle:
                    requeue.append((seq, n, record))
                    continue

                inst = record.inst
                if inst.is_store:
                    if self.as_mode and record.posted_cycle is None:
                        record.posted_cycle = cycle + 1 + sched_latency
                        posted[record.seq] = record
                    if ports <= 0:
                        requeue.append((seq, n, record))
                        continue
                    ports -= 1
                    issued_per_unit[unit] += 1
                    record.issue_cycle = cycle
                    record.write_cycle = cycle + 2
                    record.complete_cycle = record.write_cycle
                    if not self.as_mode:
                        posted[record.seq] = record
                    # Violation check happens when the store writes; do
                    # it eagerly here with the known write cycle.
                    for load in dep_loads.get(record.seq, ()):
                        if (
                            load.mem_issue_cycle is not None
                            and load.mem_issue_cycle <= record.write_cycle
                            and load.forwarded_from != record.seq
                            and load.dispatch_cycle is not None
                        ):
                            stats.misspeculations += 1
                            stats.squashed_instructions += max(
                                0, cursor.get(load.task, load.seq)
                                - load.seq
                            )
                            squash_request = (
                                load.seq, record.write_cycle + refill
                            )
                            break
                    if squash_request:
                        break
                elif inst.is_load:
                    open_, waited = self._load_gate(
                        record, posted, cycle, sched_latency
                    )
                    if not open_:
                        requeue.append((seq, n, record))
                        continue
                    if ports <= 0:
                        requeue.append((seq, n, record))
                        continue
                    ports -= 1
                    issued_per_unit[unit] += 1
                    record.issue_cycle = cycle
                    record.mem_issue_cycle = cycle
                    if waited is not None:
                        record.forwarded_from = waited.seq
                        record.complete_cycle = max(
                            cycle + 1, waited.write_cycle + 1
                        )
                    else:
                        record.complete_cycle = self.hierarchy.load(
                            inst.addr, cycle
                        )
                else:
                    op = inst.op
                    if op in FP_CLASSES:
                        if fp_used >= config.window.fu_copies:
                            requeue.append((seq, n, record))
                            continue
                        fp_used += 1
                    issued_per_unit[unit] += 1
                    record.issue_cycle = cycle
                    record.complete_cycle = cycle + latency_of(op)

            for item in requeue:
                heapq.heappush(pending, item)
            if squash_request is not None:
                squash_from_seq(*squash_request)

            # --- commit whole tasks in program order ---
            while commit_task < self.num_tasks:
                lo, hi = task_range(commit_task)
                done = all(
                    (r.write_cycle if r.inst.is_store
                     else r.complete_cycle) is not None
                    and (r.write_cycle if r.inst.is_store
                         else r.complete_cycle) <= cycle
                    for r in insts[lo:hi]
                )
                if not done:
                    break
                for r in insts[lo:hi]:
                    stats.committed += 1
                    if r.inst.is_load:
                        stats.committed_loads += 1
                    elif r.inst.is_store:
                        stats.committed_stores += 1
                        posted.pop(r.seq, None)
                    elif r.inst.is_branch:
                        stats.committed_branches += 1
                for u in range(units):
                    if running[u] == commit_task:
                        running[u] = None
                commit_task += 1

        stats.cycles = cycle
        return stats

    def _load_gate(
        self,
        record: _Inst,
        posted: Dict[int, _Inst],
        cycle: int,
        sched_latency: int,
    ) -> Tuple[bool, Optional[_Inst]]:
        """May this load access memory? Returns (open, forward-source)."""
        inst = record.inst
        if not self.as_mode:
            # NAS: forward from the youngest older *issued* store if one
            # overlaps; otherwise speculate against memory.
            best = None
            for seq, store in posted.items():
                if seq >= record.seq or store.write_cycle is None:
                    continue
                if store.write_cycle > cycle:
                    continue
                s = store.inst
                if s.addr < inst.addr + inst.size and (
                    inst.addr < s.addr + s.size
                ):
                    if best is None or seq > best.seq:
                        best = store
            return True, best
        # AS: inspect posted addresses of *older* stores (only those the
        # units have fetched and posted — the split-window loophole).
        match = None
        for seq, store in posted.items():
            if seq >= record.seq:
                continue
            visible = (store.posted_cycle or 0)
            if visible > cycle:
                continue
            s = store.inst
            if s.addr < inst.addr + inst.size and (
                inst.addr < s.addr + s.size
            ):
                if match is None or seq > match.seq:
                    match = store
        if match is not None:
            if match.write_cycle is None or match.write_cycle > cycle:
                return False, None
            return True, match
        return True, None


def simulate_split(
    config: ProcessorConfig,
    trace: Trace,
    dep_info: Optional[Dict[int, DependenceInfo]] = None,
) -> SimResult:
    """Run the split-window model over *trace*."""
    return SplitWindowProcessor(config, trace, dep_info).run()
