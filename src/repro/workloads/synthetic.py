"""Synthetic-CFG trace generator.

Builds, per workload profile, a synthetic *static program* — a sequence of
loops whose bodies contain address computation, loads, compute chains,
stores and branches, optionally with a called function — and then executes
it abstractly to emit a dynamic trace with real PCs, register dependences,
runtime-computed addresses and memory values.

The generator is engineered so each mechanism under study sees the same
structure it would in a real trace:

* **addresses are ready early, store data late** — address registers are
  produced near the body top from the induction variable, while store data
  comes from the tail of a (possibly long-latency, possibly FP/divide)
  compute chain. This asymmetry is what makes "loads wait for all older
  stores" (NAS/NO) expensive and address-based scheduling (AS) useful.
* **true dependences are stable per static (load PC, store PC) pair** —
  dependence pairs are dedicated store/load slot pairs reading and writing
  a small circular buffer, activated with a calibrated probability. The
  MDPT (NAS/SYNC) and the SEL/STORE predictors have something to learn.
* **same-iteration pairs violate under naive speculation** — the load's
  address is ready long before the store's chain-fed data, so NAS/NAV
  squashes; cross-iteration (lagged) pairs usually resolve in time.
* **calls produce the classic stack dependences of integer code** —
  argument stores in the caller feed argument loads in the callee a few
  instructions later.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.isa.instruction import DynInst
from repro.isa.opcodes import OpClass
from repro.isa.registers import fp_reg, int_reg
from repro.trace.events import Trace
from repro.workloads.profiles import WorkloadProfile

_MASK32 = 0xFFFFFFFF
_DEP_BUF_WORDS = 32

# Register plan (flat namespace).
_R_IND = int_reg(1)  # induction variable
_R_TRIP = int_reg(2)  # trip-count limit
_R_ADDR = tuple(int_reg(n) for n in (3, 4, 5, 6))  # address registers
_R_EARLY = int_reg(7)  # early data (ready at body top)
_R_CHAIN = tuple(int_reg(n) for n in range(8, 16))  # integer chain
_F_CHAIN = tuple(fp_reg(n) for n in range(0, 8))  # fp chain
_R_LOAD = tuple(int_reg(n) for n in range(16, 24))  # int load destinations
_F_LOAD = tuple(fp_reg(n) for n in range(8, 16))  # fp load destinations
_R_ARG = (int_reg(24), int_reg(25))  # call arguments
_R_RESULT = int_reg(26)  # callee result
_R_FRAME = int_reg(27)  # callee frame pointer
_R_SP = int_reg(29)  # stack pointer
_R_BASE = int_reg(28)  # region base (preamble)


@dataclass
class _Slot:
    """One static instruction slot of the synthetic program."""

    kind: str
    op: OpClass
    pc: int = 0
    dest: Optional[int] = None
    srcs: Tuple[int, ...] = ()
    # memory behaviour
    region: int = 0
    region_words: int = 0
    stride: int = 1
    offset: int = 0
    pair: int = -1  # dependence-pair index, or -1
    lag: int = 0
    # branch behaviour
    bias: float = 0.0
    skip: int = 0
    target: int = 0  # branch target pc


@dataclass
class _DepPair:
    """A calibrated (store slot, load slot) dependence pair."""

    buffer_base: int
    lag: int
    activation: float
    history: List[bool] = field(default_factory=list)


@dataclass
class _Loop:
    """One synthetic loop: preamble + body (+ optional callee slots)."""

    preamble: List[_Slot]
    body: List[_Slot]
    callee: List[_Slot]
    trip_count: int
    pairs: List[_DepPair]
    body_start_pc: int = 0


class SyntheticProgram:
    """Deterministic synthetic workload for one profile.

    The same (profile, seed) pair always generates the same trace, so
    every processor configuration is compared on identical instruction
    streams — the paper's methodology.
    """

    def __init__(self, profile: WorkloadProfile, seed: int = 0) -> None:
        self.profile = profile
        name_key = zlib.crc32(profile.name.encode())
        self._build_rng = random.Random(name_key * 7919 + seed * 2 + 1)
        self._region_cursor = 0x1000_0000
        self._region_count = 0
        self._random_base = self._alloc_region(
            profile.random_region_kb * 1024
        )
        self._stack_base = self._alloc_region(4096)
        self._pc_cursor = 0
        self._loops = [
            self._build_loop(i) for i in range(profile.num_loops)
        ]
        self._outer_jump_pc = self._alloc_pcs(1)
        # Functions live after the loops: assign callee PCs and resolve
        # each call slot's target now.
        for loop in self._loops:
            if not loop.callee:
                continue
            base = self._alloc_pcs(len(loop.callee))
            for i, slot in enumerate(loop.callee):
                slot.pc = base + i * 4
            for slot in loop.body:
                if slot.kind == "call":
                    slot.target = loop.callee[0].pc
        self._seed = seed

    # -- construction -------------------------------------------------------

    def _alloc_region(self, size_bytes: int) -> int:
        # Stagger region bases by a non-power-of-two stride so different
        # regions do not all map their first blocks onto cache set 0
        # (real heaps and arrays are not mutually set-aligned either).
        self._region_count += 1
        stagger = (self._region_count * 2080) & 0x7FE0
        base = self._region_cursor + stagger
        self._region_cursor += (
            (size_bytes + stagger + 0xFFFF) & ~0xFFFF
        ) + 0x10000
        return base

    def _alloc_pcs(self, count: int) -> int:
        start = self._pc_cursor
        self._pc_cursor += count * 4
        return start

    def _build_loop(self, loop_index: int) -> _Loop:
        profile = self.profile
        rng = self._build_rng
        fp = profile.suite == "fp"

        has_call = rng.random() < profile.call_fraction
        branch_density = 0.16 if profile.suite == "int" else 0.045
        call_part = 11 if has_call else 0  # caller 5 + callee 6

        # Fixed point on the per-iteration instruction count so the
        # dynamic load/store fractions land on the Table 1 calibration
        # regardless of call blocks and dependence-pair slots.
        total = profile.body_size + (6 if has_call else 0)
        chain_target = min(profile.chain_length, 8)
        for _ in range(4):
            loads_total = max(1, round(profile.load_fraction * total))
            stores_total = max(1, round(profile.store_fraction * total))
            branch_target = max(1, round(branch_density * total))
            load_target = max(0, loads_total - (2 if has_call else 0))
            store_target = max(0, stores_total - (3 if has_call else 0))
            n_addr_plan = min(len(_R_ADDR), 2 + load_target // 3)
            overhead = 1 + n_addr_plan + 1 + 1  # ind, addrs, early, loop
            count = (
                overhead + load_target + store_target + chain_target
                + (branch_target - 1) + call_part
            )
            if count > total:
                total = count
            else:
                break
        filler_budget = max(0, total - count)

        data_branches = round(
            (branch_target - 1) * profile.data_branch_fraction
        )
        pred_branches = max(0, branch_target - 1 - data_branches)
        # Taken data branches skip filler; add replacement filler so the
        # expected dynamic size still matches.
        expected_skips = round(
            data_branches * profile.branch_bias * 1.5
            + pred_branches * 0.04
        )
        filler_budget += expected_skips

        # Dependence pairs: expected dependent loads per iteration.
        expected_dep = profile.dep_load_fraction * max(load_target, 1)
        pairs: List[_DepPair] = []
        pair_slots: List[Tuple[int, int]] = []  # (store pair idx, lag)
        if expected_dep > 0 and load_target >= 1:
            same_iter = profile.dep_same_iter_fraction
            lag_choices = profile.dep_lags or (1,)
            n_pairs = max(1, min(2, round(expected_dep + 0.49)))
            for p in range(n_pairs):
                if rng.random() < same_iter:
                    lag = 0
                else:
                    lag = rng.choice(lag_choices)
                activation = min(1.0, expected_dep / n_pairs)
                pairs.append(_DepPair(
                    buffer_base=self._alloc_region(
                        _DEP_BUF_WORDS * 4 + 4096
                    ),
                    lag=lag,
                    activation=activation,
                ))
                pair_slots.append((p, lag))

        stream_regions = [
            self._alloc_region(profile.stream_region_kb * 1024)
            for _ in range(2)
        ]
        chain_regs = _F_CHAIN if fp else _R_CHAIN
        load_regs = _F_LOAD if fp else _R_LOAD

        # ---- preamble ------------------------------------------------------
        preamble_pc = self._alloc_pcs(4)
        preamble = [
            _Slot("li", OpClass.IALU, preamble_pc + 0, dest=_R_IND),
            _Slot("li", OpClass.IALU, preamble_pc + 4, dest=_R_TRIP),
            _Slot("li", OpClass.IALU, preamble_pc + 8, dest=_R_BASE),
            _Slot("li", OpClass.IALU, preamble_pc + 12, dest=_R_SP),
        ]

        # ---- body ----------------------------------------------------------
        body: List[_Slot] = []

        def add(slot: _Slot) -> _Slot:
            body.append(slot)
            return slot

        add(_Slot("ind", OpClass.IALU, dest=_R_IND, srcs=(_R_IND,)))
        n_addr = min(len(_R_ADDR), 2 + load_target // 3)
        for a in range(n_addr):
            add(_Slot("addr", OpClass.IALU, dest=_R_ADDR[a],
                      srcs=(_R_IND,)))
        add(_Slot("early", OpClass.IALU, dest=_R_EARLY, srcs=(_R_IND,)))

        # Loads. One may be a random-region load whose value feeds a store.
        n_random = max(
            (1 if profile.store_data_from_load_fraction > 0 else 0),
            round(load_target * profile.random_load_fraction),
        )
        n_random = min(n_random, load_target)
        n_dep_loads = len(pair_slots)
        n_stream_loads = max(0, load_target - n_random - n_dep_loads)

        load_slots: List[_Slot] = []
        random_load_slot: Optional[_Slot] = None
        for i in range(n_stream_loads):
            addr_src = _R_ADDR[i % n_addr]
            if load_slots and (
                rng.random() < profile.late_addr_load_fraction
            ):
                # Pointer-style load: address comes from an earlier load.
                addr_src = load_slots[-1].dest
            slot = add(_Slot(
                "load_stream", OpClass.LOAD,
                dest=load_regs[i % len(load_regs)],
                srcs=(addr_src,),
                region=stream_regions[i % 2],
                region_words=(profile.stream_region_kb * 1024) // 4,
                stride=rng.choice((1, 1, 1, 2)),
                offset=rng.randrange(64),
            ))
            load_slots.append(slot)
        for i in range(n_random):
            addr_src = _R_ADDR[(n_stream_loads + i) % n_addr]
            if load_slots and (
                rng.random() < profile.late_addr_load_fraction
            ):
                addr_src = load_slots[-1].dest
            slot = add(_Slot(
                "load_random", OpClass.LOAD,
                dest=_R_LOAD[(n_stream_loads + i) % len(_R_LOAD)],
                srcs=(addr_src,),
                region=self._random_base,
                region_words=(profile.random_region_kb * 1024) // 4,
            ))
            load_slots.append(slot)
            if random_load_slot is None:
                random_load_slot = slot

        # Compute chain feeding store data.
        chain_len = min(profile.chain_length, len(chain_regs))
        has_divide = rng.random() < profile.divide_fraction
        chain_tail = _R_EARLY
        chain_first = _R_EARLY
        first_load_dest = (
            load_slots[0].dest if load_slots else load_regs[0]
        )
        for c in range(chain_len):
            if fp and rng.random() < profile.fp_compute_fraction:
                if has_divide and c == chain_len // 2:
                    op = OpClass.FDIV_DP
                else:
                    op = rng.choice(
                        (OpClass.FADD, OpClass.FMUL_DP, OpClass.FADD)
                    )
            else:
                if has_divide and c == chain_len // 2:
                    op = OpClass.IDIV
                elif rng.random() < 0.2:
                    op = OpClass.IMUL
                else:
                    op = OpClass.IALU
            dest = chain_regs[c % len(chain_regs)]
            srcs = (chain_tail,) if c else (first_load_dest, _R_EARLY)
            add(_Slot("chain", op, dest=dest, srcs=srcs))
            chain_tail = dest
            if c == 0:
                chain_first = dest

        # Dependence-pair stores and loads.
        dep_store_value_src = chain_tail
        for pair_index, lag in pair_slots:
            add(_Slot(
                "store_dep", OpClass.STORE,
                srcs=(_R_ADDR[0], dep_store_value_src),
                pair=pair_index,
            ))
        # Stream stores (some fed by the random load, some early data).
        n_plain_stores = max(0, store_target - len(pair_slots))
        for i in range(n_plain_stores):
            if (
                random_load_slot is not None
                and rng.random() < profile.store_data_from_load_fraction
            ):
                data_src = random_load_slot.dest
            elif rng.random() < 0.15:
                data_src = _R_EARLY
            else:
                data_src = chain_tail
            addr_src = _R_ADDR[i % n_addr]
            if load_slots and (
                rng.random() < profile.store_late_addr_fraction
            ):
                # Store through a pointer or computed index: the address
                # register arrives moderately late, so under the AS
                # models this store posts late (AS/NO blocks younger
                # loads on it; AS/NAV speculates past it — Figure 3's
                # effect). The early-chain register keeps the delay in
                # the few-cycle range the paper's ~5% gap implies.
                if rng.random() < 0.5:
                    addr_src = chain_first
                else:
                    addr_src = load_slots[i % len(load_slots)].dest
            add(_Slot(
                "store_stream", OpClass.STORE,
                srcs=(addr_src, data_src),
                region=stream_regions[(i + 1) % 2],
                region_words=(profile.stream_region_kb * 1024) // 4,
                stride=1,
                offset=rng.randrange(64) + 4096,
            ))
        # Dependence-pair loads come after the stores (same-iteration pairs
        # must follow their producing store in program order).
        for pair_index, lag in pair_slots:
            add(_Slot(
                "load_dep", OpClass.LOAD,
                dest=load_regs[-1],
                srcs=(_R_ADDR[0],),
                pair=pair_index,
                lag=lag,
            ))

        # Filler compute to reach the planned size (plus if-block targets
        # and replacement for expected skipped slots). Filler consumes
        # load results: delaying a load delays real work, exactly the
        # cost structure that makes blocked loads expensive.
        filler = filler_budget
        for i in range(filler):
            if fp and rng.random() < profile.fp_compute_fraction:
                op = rng.choice((OpClass.FADD, OpClass.FMUL_SP))
                dest = chain_regs[(i + 3) % len(chain_regs)]
            else:
                op = OpClass.IALU
                dest = _R_CHAIN[(i + 3) % len(_R_CHAIN)]
            if load_slots and i % 2 == 0:
                srcs = (load_slots[i % len(load_slots)].dest, _R_EARLY)
            else:
                srcs = (_R_EARLY,)
            add(_Slot("chain", op, dest=dest, srcs=srcs))

        # Data-dependent branches guard short if-blocks of filler work.
        insert_at = len(body) - max(1, filler // 2)
        for b in range(data_branches):
            skip = min(2, max(1, filler // max(1, data_branches) - 1))
            body.insert(
                insert_at,
                _Slot("branch_data", OpClass.BRANCH,
                      srcs=(first_load_dest, _R_EARLY),
                      bias=profile.branch_bias, skip=skip),
            )
        for b in range(pred_branches):
            body.insert(
                max(1, len(body) // 2),
                _Slot("branch_pred", OpClass.BRANCH,
                      srcs=(_R_IND, _R_TRIP), bias=0.04, skip=1),
            )

        # Call block (caller side) placed before the loop branch.
        callee: List[_Slot] = []
        if has_call:
            body.append(_Slot("arg", OpClass.IALU, dest=_R_ARG[0],
                              srcs=(_R_IND,)))
            body.append(_Slot("arg", OpClass.IALU, dest=_R_ARG[1],
                              srcs=(_R_EARLY,)))
            body.append(_Slot("store_arg", OpClass.STORE,
                              srcs=(_R_SP, _R_ARG[0]), offset=0))
            body.append(_Slot("store_arg", OpClass.STORE,
                              srcs=(_R_SP, _R_ARG[1]), offset=4))
            body.append(_Slot("call", OpClass.CALL, dest=int_reg(31)))
            # Callee PCs are assigned after every loop is laid out (all
            # functions live past the loops), keeping each loop's
            # preamble -> body -> next-preamble fall-through contiguous.
            callee = [
                _Slot("fn_frame", OpClass.IALU,
                      dest=_R_FRAME, srcs=(_R_SP,)),
                _Slot("load_arg", OpClass.LOAD,
                      dest=_R_LOAD[0], srcs=(_R_FRAME,), offset=0),
                _Slot("load_arg", OpClass.LOAD,
                      dest=_R_LOAD[1], srcs=(_R_FRAME,), offset=4),
                _Slot("fn_chain", OpClass.IMUL,
                      dest=_R_RESULT, srcs=(_R_LOAD[0], _R_LOAD[1])),
                _Slot("store_result", OpClass.STORE,
                      srcs=(_R_FRAME, _R_RESULT), offset=8),
                _Slot("ret", OpClass.RETURN,
                      srcs=(int_reg(31),)),
            ]

        # Loop-closing branch.
        body.append(_Slot("branch_loop", OpClass.BRANCH,
                          srcs=(_R_IND, _R_TRIP)))

        # Assign body PCs and resolve intra-body branch targets.
        body_start = self._alloc_pcs(len(body))
        for i, slot in enumerate(body):
            slot.pc = body_start + i * 4
        for i, slot in enumerate(body):
            if slot.kind in ("branch_data", "branch_pred"):
                # Never let a skip jump past the loop-closing branch.
                slot.skip = max(0, min(slot.skip, len(body) - 2 - i))
                slot.target = body[i + 1 + slot.skip].pc
            elif slot.kind == "branch_loop":
                slot.target = body_start

        trip = max(4, int(profile.trip_count
                          * (0.75 + 0.5 * rng.random())))
        return _Loop(
            preamble=preamble,
            body=body,
            callee=callee,
            trip_count=trip,
            pairs=pairs,
            body_start_pc=body_start,
        )

    # -- dynamic emission -----------------------------------------------------

    def generate(self, length: int, seed: Optional[int] = None) -> Trace:
        """Emit a dynamic trace of exactly *length* instructions."""
        if length < 1:
            raise ValueError("length must be positive")
        name_key = zlib.crc32(self.profile.name.encode())
        emit_seed = seed if seed is not None else self._seed
        rng = random.Random(name_key * 104729 + emit_seed * 2)
        mem: Dict[int, int] = {}
        out: List[DynInst] = []
        profile = self.profile
        silent = profile.silent_store_fraction

        def store_value(addr: int, seq: int) -> int:
            if silent and rng.random() < silent:
                return mem.get(addr, 0)
            return ((seq * 2654435761) & _MASK32) | 1

        while len(out) < length:
            for loop in self._loops:
                if len(out) >= length:
                    break
                self._emit_loop(loop, rng, mem, out, length, store_value)
            if len(out) < length:
                out.append(DynInst(
                    seq=len(out), pc=self._outer_jump_pc,
                    op=OpClass.JUMP, taken=True,
                    target=self._loops[0].preamble[0].pc,
                ))
        del out[length:]
        return Trace(out, name=self.profile.name, suite=self.profile.suite)

    def _emit_loop(self, loop, rng, mem, out, length, store_value) -> None:
        profile = self.profile
        for slot in loop.preamble:
            if len(out) >= length:
                return
            out.append(DynInst(
                seq=len(out), pc=slot.pc, op=slot.op,
                dest=slot.dest, srcs=slot.srcs,
            ))
        for pair in loop.pairs:
            pair.history.clear()

        for it in range(loop.trip_count):
            if len(out) >= length:
                return
            # Draw this iteration's dependence-pair activations.
            active = [rng.random() < p.activation for p in loop.pairs]
            for pair, act in zip(loop.pairs, active):
                pair.history.append(act)

            body = loop.body
            i = 0
            while i < len(body):
                if len(out) >= length:
                    return
                slot = body[i]
                seq = len(out)
                kind = slot.kind

                if kind in ("ind", "addr", "early", "chain", "li", "arg",
                            "fn_frame", "fn_chain"):
                    out.append(DynInst(
                        seq=seq, pc=slot.pc, op=slot.op,
                        dest=slot.dest, srcs=slot.srcs,
                    ))

                elif kind == "load_stream":
                    # Loads stream through the lower half of the region;
                    # stores through the upper half — structurally
                    # disjoint regardless of region size.
                    half = slot.region_words // 2
                    addr = slot.region + 4 * (
                        (it * slot.stride + slot.offset) % half
                    )
                    out.append(DynInst(
                        seq=seq, pc=slot.pc, op=OpClass.LOAD,
                        dest=slot.dest, srcs=slot.srcs,
                        addr=addr, value=mem.get(addr, 0),
                    ))

                elif kind == "load_random":
                    if rng.random() < profile.random_hot_fraction:
                        hot_words = min(slot.region_words, 2048)
                        addr = slot.region + 4 * rng.randrange(hot_words)
                    else:
                        addr = slot.region + 4 * rng.randrange(
                            slot.region_words
                        )
                    out.append(DynInst(
                        seq=seq, pc=slot.pc, op=OpClass.LOAD,
                        dest=slot.dest, srcs=slot.srcs,
                        addr=addr, value=mem.get(addr, 0),
                    ))

                elif kind == "store_dep":
                    pair = loop.pairs[slot.pair]
                    if active[slot.pair]:
                        addr = pair.buffer_base + 4 * (
                            it % _DEP_BUF_WORDS
                        )
                    else:
                        addr = pair.buffer_base + 2048 + 4 * (
                            it % _DEP_BUF_WORDS
                        )
                    value = store_value(addr, seq)
                    mem[addr] = value
                    out.append(DynInst(
                        seq=seq, pc=slot.pc, op=OpClass.STORE,
                        srcs=slot.srcs, addr=addr, value=value,
                    ))

                elif kind == "load_dep":
                    pair = loop.pairs[slot.pair]
                    lagged_it = it - slot.lag
                    was_active = (
                        lagged_it >= 0
                        and lagged_it < len(pair.history)
                        and pair.history[lagged_it]
                    )
                    if was_active:
                        addr = pair.buffer_base + 4 * (
                            lagged_it % _DEP_BUF_WORDS
                        )
                    else:
                        addr = pair.buffer_base + 1024 + 4 * (
                            it % _DEP_BUF_WORDS
                        )
                    out.append(DynInst(
                        seq=seq, pc=slot.pc, op=OpClass.LOAD,
                        dest=slot.dest, srcs=slot.srcs,
                        addr=addr, value=mem.get(addr, 0),
                    ))

                elif kind == "store_stream":
                    half = slot.region_words // 2
                    addr = slot.region + 4 * (
                        half + (it * slot.stride + slot.offset) % half
                    )
                    value = store_value(addr, seq)
                    mem[addr] = value
                    out.append(DynInst(
                        seq=seq, pc=slot.pc, op=OpClass.STORE,
                        srcs=slot.srcs, addr=addr, value=value,
                    ))

                elif kind == "store_arg" or kind == "store_result":
                    addr = self._stack_base + slot.offset
                    value = store_value(addr, seq)
                    mem[addr] = value
                    out.append(DynInst(
                        seq=seq, pc=slot.pc, op=OpClass.STORE,
                        srcs=slot.srcs, addr=addr, value=value,
                    ))

                elif kind == "load_arg":
                    addr = self._stack_base + slot.offset
                    out.append(DynInst(
                        seq=seq, pc=slot.pc, op=OpClass.LOAD,
                        dest=slot.dest, srcs=slot.srcs,
                        addr=addr, value=mem.get(addr, 0),
                    ))

                elif kind in ("branch_data", "branch_pred"):
                    taken = rng.random() < slot.bias
                    target = slot.target if taken else slot.pc + 4
                    out.append(DynInst(
                        seq=seq, pc=slot.pc, op=OpClass.BRANCH,
                        srcs=slot.srcs, taken=taken, target=target,
                    ))
                    if taken:
                        i += 1 + slot.skip
                        continue

                elif kind == "branch_loop":
                    taken = it + 1 < loop.trip_count
                    target = slot.target if taken else slot.pc + 4
                    out.append(DynInst(
                        seq=seq, pc=slot.pc, op=OpClass.BRANCH,
                        srcs=slot.srcs, taken=taken, target=target,
                    ))

                elif kind == "call":
                    out.append(DynInst(
                        seq=seq, pc=slot.pc, op=OpClass.CALL,
                        dest=slot.dest, taken=True, target=slot.target,
                    ))
                    # Emit the callee inline, then continue the body.
                    for fn_slot in loop.callee:
                        if len(out) >= length:
                            return
                        fseq = len(out)
                        if fn_slot.kind == "load_arg":
                            addr = self._stack_base + fn_slot.offset
                            out.append(DynInst(
                                seq=fseq, pc=fn_slot.pc, op=OpClass.LOAD,
                                dest=fn_slot.dest, srcs=fn_slot.srcs,
                                addr=addr, value=mem.get(addr, 0),
                            ))
                        elif fn_slot.kind == "store_result":
                            addr = self._stack_base + fn_slot.offset
                            value = store_value(addr, fseq)
                            mem[addr] = value
                            out.append(DynInst(
                                seq=fseq, pc=fn_slot.pc,
                                op=OpClass.STORE, srcs=fn_slot.srcs,
                                addr=addr, value=value,
                            ))
                        elif fn_slot.kind == "ret":
                            out.append(DynInst(
                                seq=fseq, pc=fn_slot.pc,
                                op=OpClass.RETURN, srcs=fn_slot.srcs,
                                taken=True, target=slot.pc + 4,
                            ))
                        else:
                            out.append(DynInst(
                                seq=fseq, pc=fn_slot.pc, op=fn_slot.op,
                                dest=fn_slot.dest, srcs=fn_slot.srcs,
                            ))

                else:  # pragma: no cover - construction guarantees coverage
                    raise AssertionError(f"unknown slot kind {kind!r}")

                i += 1
