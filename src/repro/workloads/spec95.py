"""Per-benchmark calibrations for the 18 SPEC'95 stand-ins.

Table 1 columns (instruction count, load/store fractions, sampling ratio)
are copied from the paper. The structural knobs are calibrated so that
the simulated machine lands in the neighbourhood of the paper's
per-program measurements:

* Table 4 "NAV" miss-speculation rate ⇒ ``dep_load_fraction`` /
  ``dep_same_iter_fraction`` (how many loads truly collide with a recent
  store whose data is still in flight);
* Table 3 resolution latency ⇒ ``chain_length`` / ``divide_fraction`` /
  ``store_data_from_load_fraction`` (how late store data arrives);
* integer-vs-FP speedup asymmetry ⇒ ``fp_compute_fraction``, branch mix,
  loop shape and working-set sizes.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.workloads.profiles import WorkloadProfile

SPEC95_PROFILES: Dict[str, WorkloadProfile] = {}


def _add(profile: WorkloadProfile) -> None:
    SPEC95_PROFILES[profile.name] = profile
    SPEC95_PROFILES[profile.short_name] = profile


# ---------------------------------------------------------------------------
# SPECint'95
# ---------------------------------------------------------------------------

_add(WorkloadProfile(
    name="099.go", suite="int",
    instruction_count_millions=133.8,
    load_fraction=0.209, store_fraction=0.073, sampling_ratio=None,
    dep_load_fraction=0.040, dep_same_iter_fraction=0.65, dep_lags=(1, 3),
    chain_length=3, divide_fraction=0.08,
    store_data_from_load_fraction=0.10,
    data_branch_fraction=0.50, branch_bias=0.35,
    stream_region_kb=32, random_region_kb=1024, random_load_fraction=0.35,
    late_addr_load_fraction=0.45, store_late_addr_fraction=0.30,
    body_size=18, num_loops=6, trip_count=24, call_fraction=0.3,
))

_add(WorkloadProfile(
    name="124.m88ksim", suite="int",
    instruction_count_millions=196.3,
    load_fraction=0.188, store_fraction=0.096, sampling_ratio="1:1",
    dep_load_fraction=0.022, dep_same_iter_fraction=0.55, dep_lags=(1, 2),
    chain_length=3, data_branch_fraction=0.40, branch_bias=0.25,
    stream_region_kb=48, random_region_kb=256, random_load_fraction=0.15,
    late_addr_load_fraction=0.20, store_late_addr_fraction=0.25,
    body_size=20, num_loops=5, trip_count=40, call_fraction=0.5,
))

_add(WorkloadProfile(
    name="126.gcc", suite="int",
    instruction_count_millions=316.9,
    load_fraction=0.243, store_fraction=0.175, sampling_ratio="1:2",
    dep_load_fraction=0.030, dep_same_iter_fraction=0.55, dep_lags=(1, 4),
    chain_length=3, divide_fraction=0.20,
    store_data_from_load_fraction=0.22,
    data_branch_fraction=0.45, branch_bias=0.30,
    stream_region_kb=64, random_region_kb=2048, random_load_fraction=0.25,
    late_addr_load_fraction=0.30, store_late_addr_fraction=0.25,
    body_size=22, num_loops=6, trip_count=28, call_fraction=0.5,
))

_add(WorkloadProfile(
    name="129.compress", suite="int",
    instruction_count_millions=153.8,
    load_fraction=0.217, store_fraction=0.135, sampling_ratio="1:2",
    dep_load_fraction=0.085, dep_same_iter_fraction=0.70, dep_lags=(1,),
    chain_length=3, divide_fraction=0.25,
    store_data_from_load_fraction=0.15,
    data_branch_fraction=0.35, branch_bias=0.30,
    stream_region_kb=96, random_region_kb=512, random_load_fraction=0.20,
    late_addr_load_fraction=0.10, store_late_addr_fraction=0.20,
    body_size=18, num_loops=3, trip_count=64, call_fraction=0.1,
))

_add(WorkloadProfile(
    name="130.li", suite="int",
    instruction_count_millions=206.5,
    load_fraction=0.296, store_fraction=0.176, sampling_ratio="1:1",
    dep_load_fraction=0.060, dep_same_iter_fraction=0.60, dep_lags=(1, 2),
    chain_length=5, divide_fraction=0.30,
    store_data_from_load_fraction=0.25,
    data_branch_fraction=0.40, branch_bias=0.30,
    stream_region_kb=32, random_region_kb=512, random_load_fraction=0.25,
    late_addr_load_fraction=0.30, store_late_addr_fraction=0.25,
    body_size=20, num_loops=5, trip_count=32, call_fraction=0.6,
))

_add(WorkloadProfile(
    name="132.ijpeg", suite="int",
    instruction_count_millions=129.6,
    load_fraction=0.177, store_fraction=0.087, sampling_ratio=None,
    dep_load_fraction=0.016, dep_same_iter_fraction=0.45, dep_lags=(2, 4),
    chain_length=4, data_branch_fraction=0.20, branch_bias=0.20,
    stream_region_kb=128, random_region_kb=256, random_load_fraction=0.08,
    late_addr_load_fraction=0.10, store_late_addr_fraction=0.15,
    body_size=26, num_loops=4, trip_count=96, call_fraction=0.1,
))

_add(WorkloadProfile(
    name="134.perl", suite="int",
    instruction_count_millions=176.8,
    load_fraction=0.256, store_fraction=0.166, sampling_ratio="1:1",
    dep_load_fraction=0.055, dep_same_iter_fraction=0.60, dep_lags=(1, 3),
    chain_length=4, divide_fraction=0.25,
    store_data_from_load_fraction=0.25,
    data_branch_fraction=0.45, branch_bias=0.30,
    stream_region_kb=48, random_region_kb=1024, random_load_fraction=0.20,
    late_addr_load_fraction=0.30, store_late_addr_fraction=0.25,
    body_size=20, num_loops=5, trip_count=30, call_fraction=0.6,
))

_add(WorkloadProfile(
    name="147.vortex", suite="int",
    instruction_count_millions=376.9,
    load_fraction=0.263, store_fraction=0.273, sampling_ratio="1:2",
    dep_load_fraction=0.060, dep_same_iter_fraction=0.60, dep_lags=(1, 2),
    chain_length=3, divide_fraction=0.20,
    store_data_from_load_fraction=0.30,
    data_branch_fraction=0.35, branch_bias=0.25,
    stream_region_kb=64, random_region_kb=2048, random_load_fraction=0.25,
    late_addr_load_fraction=0.25, store_late_addr_fraction=0.15,
    body_size=22, num_loops=5, trip_count=36, call_fraction=0.5,
))

# ---------------------------------------------------------------------------
# SPECfp'95
# ---------------------------------------------------------------------------

_add(WorkloadProfile(
    name="101.tomcatv", suite="fp",
    instruction_count_millions=329.1,
    load_fraction=0.319, store_fraction=0.088, sampling_ratio="1:2",
    dep_load_fraction=0.020, dep_same_iter_fraction=0.45, dep_lags=(1, 2),
    chain_length=6, fp_compute_fraction=0.85,
    data_branch_fraction=0.05, branch_bias=0.15,
    stream_region_kb=512, random_region_kb=128, random_load_fraction=0.04,
    store_late_addr_fraction=0.1,
    body_size=34, num_loops=4, trip_count=128, call_fraction=0.0,
))

_add(WorkloadProfile(
    name="102.swim", suite="fp",
    instruction_count_millions=188.8,
    load_fraction=0.270, store_fraction=0.066, sampling_ratio="1:2",
    dep_load_fraction=0.018, dep_same_iter_fraction=0.50, dep_lags=(1,),
    chain_length=2, fp_compute_fraction=0.85,
    data_branch_fraction=0.03, branch_bias=0.10,
    stream_region_kb=1024, random_region_kb=64, random_load_fraction=0.02,
    store_late_addr_fraction=0.08,
    body_size=36, num_loops=3, trip_count=160, call_fraction=0.0,
))

_add(WorkloadProfile(
    name="103.su2cor", suite="fp",
    instruction_count_millions=279.9,
    load_fraction=0.338, store_fraction=0.101, sampling_ratio="1:3",
    dep_load_fraction=0.050, dep_same_iter_fraction=0.55, dep_lags=(1, 2),
    chain_length=8, fp_compute_fraction=0.85, divide_fraction=0.30,
    store_data_from_load_fraction=0.15,
    data_branch_fraction=0.06, branch_bias=0.15,
    stream_region_kb=512, random_region_kb=256, random_load_fraction=0.06,
    store_late_addr_fraction=0.12,
    body_size=36, num_loops=4, trip_count=96, call_fraction=0.0,
))

_add(WorkloadProfile(
    name="104.hydro2d", suite="fp",
    instruction_count_millions=1128.9,
    load_fraction=0.297, store_fraction=0.082, sampling_ratio="1:10",
    dep_load_fraction=0.100, dep_same_iter_fraction=0.65, dep_lags=(1,),
    chain_length=3, fp_compute_fraction=0.85,
    data_branch_fraction=0.05, branch_bias=0.15,
    stream_region_kb=512, random_region_kb=128, random_load_fraction=0.04,
    store_late_addr_fraction=0.1,
    body_size=30, num_loops=4, trip_count=128, call_fraction=0.0,
))

_add(WorkloadProfile(
    name="107.mgrid", suite="fp",
    instruction_count_millions=95.0,
    load_fraction=0.466, store_fraction=0.030, sampling_ratio=None,
    dep_load_fraction=0.003, dep_same_iter_fraction=0.40, dep_lags=(2,),
    chain_length=5, fp_compute_fraction=0.90,
    data_branch_fraction=0.03, branch_bias=0.10,
    stream_region_kb=1024, random_region_kb=64, random_load_fraction=0.02,
    store_late_addr_fraction=0.08,
    body_size=40, num_loops=3, trip_count=192, call_fraction=0.0,
))

_add(WorkloadProfile(
    name="110.applu", suite="fp",
    instruction_count_millions=168.9,
    load_fraction=0.314, store_fraction=0.079, sampling_ratio="1:1",
    dep_load_fraction=0.030, dep_same_iter_fraction=0.55, dep_lags=(1, 2),
    chain_length=5, fp_compute_fraction=0.85,
    data_branch_fraction=0.05, branch_bias=0.15,
    stream_region_kb=512, random_region_kb=128, random_load_fraction=0.05,
    store_late_addr_fraction=0.1,
    body_size=32, num_loops=4, trip_count=112, call_fraction=0.0,
))

_add(WorkloadProfile(
    name="125.turb3d", suite="fp",
    instruction_count_millions=1666.6,
    load_fraction=0.213, store_fraction=0.146, sampling_ratio="1:10",
    dep_load_fraction=0.015, dep_same_iter_fraction=0.50, dep_lags=(1, 4),
    chain_length=6, fp_compute_fraction=0.80, divide_fraction=0.20,
    data_branch_fraction=0.08, branch_bias=0.15,
    stream_region_kb=384, random_region_kb=256, random_load_fraction=0.06,
    store_late_addr_fraction=0.12,
    body_size=30, num_loops=5, trip_count=80, call_fraction=0.1,
))

_add(WorkloadProfile(
    name="141.apsi", suite="fp",
    instruction_count_millions=125.9,
    load_fraction=0.314, store_fraction=0.134, sampling_ratio=None,
    dep_load_fraction=0.040, dep_same_iter_fraction=0.55, dep_lags=(1, 2),
    chain_length=8, fp_compute_fraction=0.85, divide_fraction=0.30,
    store_data_from_load_fraction=0.10,
    data_branch_fraction=0.06, branch_bias=0.15,
    stream_region_kb=384, random_region_kb=256, random_load_fraction=0.05,
    store_late_addr_fraction=0.1,
    body_size=34, num_loops=4, trip_count=96, call_fraction=0.0,
))

_add(WorkloadProfile(
    name="145.fpppp", suite="fp",
    instruction_count_millions=214.2,
    load_fraction=0.488, store_fraction=0.175, sampling_ratio="1:2",
    dep_load_fraction=0.030, dep_same_iter_fraction=0.55, dep_lags=(1,),
    chain_length=7, fp_compute_fraction=0.90, divide_fraction=0.15,
    store_data_from_load_fraction=0.10,
    data_branch_fraction=0.03, branch_bias=0.10,
    stream_region_kb=256, random_region_kb=128, random_load_fraction=0.05,
    store_late_addr_fraction=0.12,
    body_size=44, num_loops=3, trip_count=72, call_fraction=0.0,
))

_add(WorkloadProfile(
    name="146.wave5", suite="fp",
    instruction_count_millions=290.8,
    load_fraction=0.302, store_fraction=0.130, sampling_ratio="1:2",
    dep_load_fraction=0.040, dep_same_iter_fraction=0.60, dep_lags=(1, 2),
    chain_length=3, fp_compute_fraction=0.85,
    data_branch_fraction=0.05, branch_bias=0.15,
    stream_region_kb=512, random_region_kb=128, random_load_fraction=0.05,
    store_late_addr_fraction=0.1,
    body_size=30, num_loops=4, trip_count=120, call_fraction=0.0,
))

# ---------------------------------------------------------------------------

#: Benchmark display order (matches the paper's tables/figures).
INT_BENCHMARKS: Tuple[str, ...] = (
    "099.go", "124.m88ksim", "126.gcc", "129.compress",
    "130.li", "132.ijpeg", "134.perl", "147.vortex",
)
FP_BENCHMARKS: Tuple[str, ...] = (
    "101.tomcatv", "102.swim", "103.su2cor", "104.hydro2d",
    "107.mgrid", "110.applu", "125.turb3d", "141.apsi",
    "145.fpppp", "146.wave5",
)
ALL_BENCHMARKS: Tuple[str, ...] = INT_BENCHMARKS + FP_BENCHMARKS


def profile_for(name: str) -> WorkloadProfile:
    """Look up a profile by full ('126.gcc') or short ('126') name."""
    try:
        return SPEC95_PROFILES[name]
    except KeyError:
        known = ", ".join(INT_BENCHMARKS + FP_BENCHMARKS)
        raise KeyError(
            f"unknown benchmark {name!r}; known benchmarks: {known}"
        ) from None
