"""Workload catalog: one place to get any trace, with caching.

Traces are deterministic functions of ``(name, length, seed,
generator_version)``; the catalog memoizes them at three layers so a
benchmark suite that runs 16 machine configurations over 18 workloads
generates each trace once — ideally once *ever*:

1. **Object memo** (``_trace_cache``): materialized :class:`Trace`
   instances, LRU-bounded, exactly as before.
2. **Compiled memo** (``_compiled_cache``): packed
   :class:`~repro.trace.compiled.CompiledTrace` columns per *series*
   ``(name, seed)``. :func:`precompile` fills this before the parallel
   runner forks, so workers inherit the buffers copy-on-write and
   never regenerate a trace.
3. **Persistent store** (:mod:`repro.trace.tracestore`): compiled
   binaries on disk, shared across processes and CI runs. Enabled via
   ``$REPRO_TRACE_STORE`` or
   :func:`repro.trace.tracestore.set_trace_store`.

Dependence analyses are memoized by trace **provenance** — the same
``(name, length, seed, generator_version)`` tuple, stamped onto every
trace the catalog produces — so they survive trace-cache eviction, can
be persisted inside compiled trace files, and need no ``id()``-reuse
pinning. Hand-built traces (``provenance is None``) are computed on
demand and not memoized.

Budgeting: kernels run on the VM to natural completion under an
instruction budget (exceeding it raises
:class:`~repro.vm.interpreter.ExecutionLimitExceeded`); synthetic
SPEC'95 stand-ins generate exactly the requested length. Both default
to the one :data:`DEFAULT_LENGTH` constant. Every kernel's natural
length fits the default budget (the longest, ``matmul``, retires
~25.5k instructions); a test pins that invariant.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, replace as _dc_replace
from time import perf_counter
from typing import Dict, Iterable, Optional, Tuple

from repro.trace.compiled import CompiledTrace, compile_trace
from repro.trace.dependences import (
    DependenceInfo,
    compute_dependence_info,
    compute_true_dependences,
)
from repro.trace.events import Trace
from repro.trace.tracestore import active_trace_store
from repro.vm.interpreter import run_program
from repro.workloads.kernels import KERNELS
from repro.workloads.spec95 import profile_for
from repro.workloads.synthetic import SyntheticProgram

#: Default instruction budget for every workload: synthetic SPEC'95
#: stand-ins generate exactly this many instructions, kernels must run
#: to natural completion within it. The paper simulated ~100M
#: instructions per program; this is our laptop-scale substitute (see
#: DESIGN.md Section 2).
DEFAULT_LENGTH = 30_000

#: Version stamp of everything that determines trace *content*: the
#: synthetic generator, the kernel sources, and the VM's execution
#: semantics. Bump it whenever any of those change observable traces —
#: every persisted trace and memoized dependence analysis is then
#: invalidated (new store address, new provenance key).
GENERATOR_VERSION = "1"

KERNEL_NAMES = tuple(sorted(KERNELS))

#: LRU bound for all catalog memos. A full benchmark suite touches ~18
#: workloads times a couple of (length, seed) variants; 32 keeps that
#: whole working set resident while bounding a long-lived process.
TRACE_CACHE_SIZE = 32

#: Provenance: (canonical name, trace length, seed, generator version).
Provenance = Tuple[str, int, int, str]

_trace_cache: "OrderedDict[Tuple[str, int, int], Trace]" = OrderedDict()
#: series (name, seed) -> (compiled, origin); origin is "precompiled"
#: (placed by :func:`precompile`, pre-fork), "loaded" (trace store) or
#: "compiled" (packed after a local generation).
_compiled_cache: "OrderedDict[Tuple[str, int], Tuple[CompiledTrace, str]]" = (
    OrderedDict()
)
_dep_cache: "OrderedDict[Provenance, Dict[int, DependenceInfo]]" = (
    OrderedDict()
)
_true_dep_cache: "OrderedDict[Provenance, Dict[int, int]]" = OrderedDict()


@dataclass
class TraceStats:
    """Where traces came from, and what acquiring them cost.

    ``trace_wall`` counts seconds spent off the fast path: generating,
    loading, materializing and analysing traces (in-memory memo hits
    are effectively free and not timed).
    """

    #: Generated from scratch (VM run or synthetic generation).
    generated: int = 0
    #: Loaded from the persistent trace store.
    store_hits: int = 0
    #: Served from compiled columns placed by :func:`precompile`
    #: (in a forked worker: inherited copy-on-write from the parent).
    inherited: int = 0
    #: Served from an in-process memo (object or compiled).
    memory_hits: int = 0
    #: Seconds spent acquiring traces and dependence analyses.
    trace_wall: float = 0.0

    def delta(self, earlier: "TraceStats") -> "TraceStats":
        """Counters accumulated since the *earlier* snapshot."""
        return TraceStats(
            generated=self.generated - earlier.generated,
            store_hits=self.store_hits - earlier.store_hits,
            inherited=self.inherited - earlier.inherited,
            memory_hits=self.memory_hits - earlier.memory_hits,
            trace_wall=self.trace_wall - earlier.trace_wall,
        )

    @property
    def source(self) -> Optional[str]:
        """Dominant acquisition source, for telemetry labels."""
        if self.generated:
            return "generated"
        if self.store_hits:
            return "store_hit"
        if self.inherited:
            return "inherited"
        if self.memory_hits:
            return "memory"
        return None


_trace_stats = TraceStats()


def trace_stats() -> TraceStats:
    """A snapshot of the current trace-acquisition counters."""
    return _dc_replace(_trace_stats)


def _canonical_name(name: str) -> str:
    """Series name: kernel names as-is, SPEC stand-ins canonicalized
    (``"126"`` and ``"126.gcc"`` are the same trace series)."""
    if name in KERNELS:
        return name
    return profile_for(name).name


def get_trace(
    name: str, length: int = DEFAULT_LENGTH, seed: int = 0
) -> Trace:
    """Trace for benchmark *name* ('126.gcc', '126', or a kernel name).

    Lookup order: object memo, compiled memo (columns placed by
    :func:`precompile` or a previous call), persistent trace store,
    then actual generation. Freshly generated traces are compiled and
    persisted when a store is active.
    """
    key = (name, length, seed)
    cached = _trace_cache.get(key)
    if cached is not None:
        _trace_cache.move_to_end(key)
        _trace_stats.memory_hits += 1
        return cached

    started = perf_counter()
    canonical = _canonical_name(name)
    series = (canonical, seed)
    trace: Optional[Trace] = None

    entry = _compiled_cache.get(series)
    if entry is not None:
        compiled, origin = entry
        served = _serve(compiled, length)
        if served is not None:
            _compiled_cache.move_to_end(series)
            trace = served.materialize(
                provenance=(canonical, served.length, seed,
                            GENERATOR_VERSION)
            )
            if origin == "precompiled":
                _trace_stats.inherited += 1
            else:
                _trace_stats.memory_hits += 1

    if trace is None:
        store = active_trace_store()
        if store is not None:
            compiled = store.load(canonical, length, seed,
                                  GENERATOR_VERSION)
            if compiled is not None:
                _remember_compiled(series, compiled, "loaded")
                trace = compiled.materialize(
                    provenance=(canonical, compiled.length, seed,
                                GENERATOR_VERSION)
                )
                _trace_stats.store_hits += 1

    if trace is None:
        trace, kind = _generate(canonical, length, seed)
        _trace_stats.generated += 1
        store = active_trace_store()
        if store is not None:
            compiled = _compile_with_dependences(trace, kind, length)
            store.save(compiled, seed, GENERATOR_VERSION)
            _remember_compiled(series, compiled, "compiled")

    _trace_stats.trace_wall += perf_counter() - started
    _trace_cache[key] = trace
    if len(_trace_cache) > TRACE_CACHE_SIZE:
        _trace_cache.popitem(last=False)
    return trace


def get_compiled(
    name: str, length: int = DEFAULT_LENGTH, seed: int = 0
) -> CompiledTrace:
    """Packed columns for benchmark *name* — no ``DynInst`` objects.

    The vector backend's entry point: same three-layer lookup as
    :func:`get_trace` (compiled memo, persistent store, generation) but
    the result stays columnar, so a sweep running on the ``vector``
    backend never materializes an instruction list. The returned trace
    always carries its packed dependence map. The compiled memo stays
    authoritative: a trace served here and one served by
    :func:`get_trace` for the same request come from the same columns.
    """
    started = perf_counter()
    canonical = _canonical_name(name)
    series = (canonical, seed)

    entry = _compiled_cache.get(series)
    if entry is not None:
        compiled, origin = entry
        served = _serve(compiled, length)
        if served is not None:
            _compiled_cache.move_to_end(series)
            if not served.has_dependences:
                served.attach_dependences(
                    _dependence_info_for(served, canonical, seed)
                )
            if origin == "precompiled":
                _trace_stats.inherited += 1
            else:
                _trace_stats.memory_hits += 1
            _trace_stats.trace_wall += perf_counter() - started
            return served

    store = active_trace_store()
    if store is not None:
        compiled = store.load(canonical, length, seed,
                              GENERATOR_VERSION)
        if compiled is not None:
            _remember_compiled(series, compiled, "loaded")
            if not compiled.has_dependences:
                compiled.attach_dependences(
                    _dependence_info_for(compiled, canonical, seed)
                )
            _trace_stats.store_hits += 1
            _trace_stats.trace_wall += perf_counter() - started
            return compiled

    trace, kind = _generate(canonical, length, seed)
    _trace_stats.generated += 1
    compiled = _compile_with_dependences(trace, kind, length)
    if store is not None:
        store.save(compiled, seed, GENERATOR_VERSION)
    _remember_compiled(series, compiled, "compiled")
    _trace_stats.trace_wall += perf_counter() - started
    return compiled


def _generate(canonical: str, length: int, seed: int):
    """Run the generator; returns ``(trace, kind)`` with provenance."""
    if canonical in KERNELS:
        trace = kernel_trace(canonical, max_instructions=length)
        kind = "kernel"
    else:
        profile = profile_for(canonical)
        trace = SyntheticProgram(profile, seed=seed).generate(length)
        kind = "synthetic"
    trace.provenance = (canonical, len(trace), seed, GENERATOR_VERSION)
    return trace, kind


def _serve(compiled: CompiledTrace, length: int) -> Optional[CompiledTrace]:
    """The part of *compiled* answering a request for *length*, if any.

    Kernel entries hold a run to natural completion: they serve any
    budget ≥ that length (regeneration under a smaller budget would
    raise, exactly as uncached). Synthetic entries are prefix-stable:
    a longer entry serves a shorter request by column slicing.
    """
    if compiled.kind == "kernel":
        return compiled if length >= compiled.length else None
    if compiled.length == length:
        return compiled
    if compiled.length > length:
        return compiled.slice_prefix(length)
    return None


def _compile_with_dependences(
    trace: Trace, kind: str, budget: int
) -> CompiledTrace:
    """Pack *trace* with its dependence map (memoizing the analysis)."""
    info = compute_dependence_info(trace)
    prov = trace.provenance
    if prov is not None:
        _memo_put(_dep_cache, prov, info)
    return compile_trace(
        trace, dep_info=info, kind=kind,
        budget=budget if kind == "kernel" else None,
    )


def _remember_compiled(
    series: Tuple[str, int], compiled: CompiledTrace, origin: str
) -> None:
    """Keep the longest compiled entry seen for *series*."""
    entry = _compiled_cache.get(series)
    if entry is not None and entry[0].length >= compiled.length:
        compiled = entry[0]
    _compiled_cache[series] = (compiled, origin)
    _compiled_cache.move_to_end(series)
    if len(_compiled_cache) > TRACE_CACHE_SIZE:
        _compiled_cache.popitem(last=False)


def precompile(
    requests: Iterable[Tuple[str, int]], seed: int = 0
) -> Dict[str, str]:
    """Fill the compiled memo for ``(name, length)`` *requests*.

    Called by the parallel runner **before forking**: workers inherit
    the packed columns copy-on-write and serve every ``get_trace``
    from memory (telemetry source ``inherited``) instead of
    regenerating per process. Entries already compiled, and entries
    found in the persistent store, are re-flagged as precompiled;
    missing ones are generated (and persisted when a store is active).

    Returns ``{name: "memo" | "store" | "generated" | "error"}``
    describing where each series came from. A benchmark whose
    generation raises (e.g. a kernel that does not fit the requested
    budget) is recorded as ``"error"`` and skipped — its shard then
    fails (or raises) on its own, preserving the runner's per-shard
    fault semantics instead of killing the whole matrix pre-fork.
    """
    out: Dict[str, str] = {}
    started = perf_counter()
    for name, length in requests:
        canonical = _canonical_name(name)
        series = (canonical, seed)
        entry = _compiled_cache.get(series)
        if entry is not None and _serve(entry[0], length) is not None:
            if not entry[0].has_dependences:
                entry[0].attach_dependences(
                    _dependence_info_for(entry[0], canonical, seed)
                )
            _compiled_cache[series] = (entry[0], "precompiled")
            out[name] = "memo"
            continue
        store = active_trace_store()
        compiled = (
            store.load(canonical, length, seed, GENERATOR_VERSION)
            if store is not None else None
        )
        if compiled is not None:
            _remember_compiled(series, compiled, "precompiled")
            out[name] = "store"
            _trace_stats.store_hits += 1
            continue
        try:
            trace, kind = _generate(canonical, length, seed)
        except Exception:
            out[name] = "error"
            continue
        _trace_stats.generated += 1
        compiled = _compile_with_dependences(trace, kind, length)
        if store is not None:
            store.save(compiled, seed, GENERATOR_VERSION)
        _remember_compiled(series, compiled, "precompiled")
        out[name] = "generated"
    _trace_stats.trace_wall += perf_counter() - started
    return out


def kernel_trace(
    name: str, max_instructions: int = DEFAULT_LENGTH, **kwargs
) -> Trace:
    """Run kernel *name* on the VM and return its trace.

    Kernel parameters (e.g. ``n=...``) pass through to the kernel
    factory. *max_instructions* is a budget, not a truncation length:
    the run raises :class:`~repro.vm.interpreter.ExecutionLimitExceeded`
    if the kernel does not complete within it. The default is the same
    :data:`DEFAULT_LENGTH` that sizes synthetic traces, so kernel and
    synthetic workloads are budgeted consistently.
    """
    if name not in KERNELS:
        raise KeyError(
            f"unknown kernel {name!r}; kernels: {', '.join(KERNEL_NAMES)}"
        )
    source, memory = KERNELS[name](**kwargs)
    return run_program(
        source,
        memory=memory,
        max_instructions=max_instructions,
        name=name,
    )


# -- dependence analyses -----------------------------------------------------


def _memo_put(memo: OrderedDict, key, value) -> None:
    memo[key] = value
    memo.move_to_end(key)
    if len(memo) > TRACE_CACHE_SIZE:
        memo.popitem(last=False)


def _dependence_info_for(
    compiled: CompiledTrace, canonical: str, seed: int
) -> Dict[int, DependenceInfo]:
    """Dependence info for a compiled entry, memoized by provenance."""
    prov = (canonical, compiled.length, seed, GENERATOR_VERSION)
    cached = _dep_cache.get(prov)
    if cached is not None:
        _dep_cache.move_to_end(prov)
        return cached
    info = (
        compiled.dependence_info()
        if compiled.has_dependences
        else compiled.compute_dependence_info()
    )
    _memo_put(_dep_cache, prov, info)
    return info


def get_dependence_info(trace: Trace) -> Dict[int, DependenceInfo]:
    """Memoized :func:`compute_dependence_info` for *trace*.

    Keyed by the trace's provenance; catalog-produced traces share one
    analysis per ``(name, length, seed, generator_version)`` no matter
    how many times the trace object itself is evicted and rebuilt.
    When the analysis was persisted inside a compiled trace file, it
    is decoded from the packed columns instead of recomputed.
    Hand-built traces (no provenance) are computed uncached.
    """
    prov = trace.provenance
    if prov is None:
        return compute_dependence_info(trace)
    cached = _dep_cache.get(prov)
    if cached is not None:
        _dep_cache.move_to_end(prov)
        return cached
    started = perf_counter()
    info: Optional[Dict[int, DependenceInfo]] = None
    entry = _compiled_cache.get((prov[0], prov[2]))
    if entry is not None:
        served = _serve(entry[0], prov[1])
        if served is not None and served.has_dependences:
            info = served.dependence_info()
    if info is None:
        info = compute_dependence_info(trace)
    _memo_put(_dep_cache, prov, info)
    _trace_stats.trace_wall += perf_counter() - started
    return info


def get_dependences(trace: Trace) -> Dict[int, int]:
    """Memoized :func:`compute_true_dependences` for *trace*.

    Derived from :func:`get_dependence_info` (same loads, same
    producing stores), so both analyses share one scan and one memo
    entry per provenance.
    """
    prov = trace.provenance
    if prov is None:
        return compute_true_dependences(trace)
    cached = _true_dep_cache.get(prov)
    if cached is not None:
        _true_dep_cache.move_to_end(prov)
        return cached
    deps = {
        load: info.store_seq
        for load, info in get_dependence_info(trace).items()
    }
    _memo_put(_true_dep_cache, prov, deps)
    return deps


def clear_cache() -> None:
    """Drop all cached traces, compiled columns and dependence memos."""
    _trace_cache.clear()
    _compiled_cache.clear()
    _dep_cache.clear()
    _true_dep_cache.clear()
