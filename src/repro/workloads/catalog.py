"""Workload catalog: one place to get any trace, with caching.

Traces are deterministic functions of (name, length, seed); the catalog
memoizes them (and their precomputed dependence analyses) so a benchmark
suite that runs 16 machine configurations over 18 workloads generates
each trace once. Both memos are LRU-bounded so a long-lived process
(parallel runner worker, notebook) cannot accumulate traces without
limit.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Tuple

from repro.trace.dependences import compute_true_dependences
from repro.trace.events import Trace
from repro.vm.interpreter import run_program
from repro.workloads.kernels import KERNELS
from repro.workloads.spec95 import profile_for
from repro.workloads.synthetic import SyntheticProgram

#: Default timing-trace length for SPEC'95 stand-ins. The paper simulated
#: ~100M instructions per program; this is our laptop-scale substitute
#: (see DESIGN.md Section 2).
DEFAULT_LENGTH = 30_000

KERNEL_NAMES = tuple(sorted(KERNELS))

#: LRU bound for both memos. A full benchmark suite touches ~18
#: workloads times a couple of (length, seed) variants; 32 keeps that
#: whole working set resident while bounding a long-lived process.
TRACE_CACHE_SIZE = 32

_trace_cache: "OrderedDict[Tuple[str, int, int], Trace]" = OrderedDict()
_dep_cache: "OrderedDict[int, Tuple[Trace, Dict[int, int]]]" = OrderedDict()


def get_trace(
    name: str, length: int = DEFAULT_LENGTH, seed: int = 0
) -> Trace:
    """Trace for benchmark *name* ('126.gcc', '126', or a kernel name)."""
    key = (name, length, seed)
    cached = _trace_cache.get(key)
    if cached is not None:
        _trace_cache.move_to_end(key)
        return cached
    if name in KERNELS:
        trace = kernel_trace(name, max_instructions=length)
    else:
        profile = profile_for(name)
        program = SyntheticProgram(profile, seed=seed)
        trace = program.generate(length)
    _trace_cache[key] = trace
    if len(_trace_cache) > TRACE_CACHE_SIZE:
        _trace_cache.popitem(last=False)
    return trace


def kernel_trace(name: str, max_instructions: int = 200_000, **kwargs) -> Trace:
    """Run kernel *name* on the VM and return its trace.

    Kernel parameters (e.g. ``n=...``) pass through to the kernel factory.
    """
    if name not in KERNELS:
        raise KeyError(
            f"unknown kernel {name!r}; kernels: {', '.join(KERNEL_NAMES)}"
        )
    source, memory = KERNELS[name](**kwargs)
    return run_program(
        source,
        memory=memory,
        max_instructions=max_instructions,
        name=name,
    )


def get_dependences(trace: Trace) -> Dict[int, int]:
    """Memoized :func:`compute_true_dependences` for *trace*."""
    key = id(trace)
    entry = _dep_cache.get(key)
    # The identity check guards against id() reuse after a trace that
    # was cached here has been garbage collected.
    if entry is not None and entry[0] is trace:
        _dep_cache.move_to_end(key)
        return entry[1]
    deps = compute_true_dependences(trace)
    # Storing the trace alongside its analysis pins it, so the id key
    # stays valid for exactly as long as the cache entry lives.
    _dep_cache[key] = (trace, deps)
    if len(_dep_cache) > TRACE_CACHE_SIZE:
        _dep_cache.popitem(last=False)
    return deps


def clear_cache() -> None:
    """Drop all cached traces and dependence analyses."""
    _trace_cache.clear()
    _dep_cache.clear()
