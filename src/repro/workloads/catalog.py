"""Workload catalog: one place to get any trace, with caching.

Traces are deterministic functions of (name, length, seed); the catalog
memoizes them (and their precomputed dependence analyses) so a benchmark
suite that runs 16 machine configurations over 18 workloads generates
each trace once.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.trace.dependences import compute_true_dependences
from repro.trace.events import Trace
from repro.vm.interpreter import run_program
from repro.workloads.kernels import KERNELS
from repro.workloads.spec95 import profile_for
from repro.workloads.synthetic import SyntheticProgram

#: Default timing-trace length for SPEC'95 stand-ins. The paper simulated
#: ~100M instructions per program; this is our laptop-scale substitute
#: (see DESIGN.md Section 2).
DEFAULT_LENGTH = 30_000

KERNEL_NAMES = tuple(sorted(KERNELS))

_trace_cache: Dict[Tuple[str, int, int], Trace] = {}
_dep_cache: Dict[int, Dict[int, int]] = {}


def get_trace(
    name: str, length: int = DEFAULT_LENGTH, seed: int = 0
) -> Trace:
    """Trace for benchmark *name* ('126.gcc', '126', or a kernel name)."""
    key = (name, length, seed)
    cached = _trace_cache.get(key)
    if cached is not None:
        return cached
    if name in KERNELS:
        trace = kernel_trace(name, max_instructions=length)
    else:
        profile = profile_for(name)
        program = SyntheticProgram(profile, seed=seed)
        trace = program.generate(length)
    _trace_cache[key] = trace
    return trace


def kernel_trace(name: str, max_instructions: int = 200_000, **kwargs) -> Trace:
    """Run kernel *name* on the VM and return its trace.

    Kernel parameters (e.g. ``n=...``) pass through to the kernel factory.
    """
    if name not in KERNELS:
        raise KeyError(
            f"unknown kernel {name!r}; kernels: {', '.join(KERNEL_NAMES)}"
        )
    source, memory = KERNELS[name](**kwargs)
    return run_program(
        source,
        memory=memory,
        max_instructions=max_instructions,
        name=name,
    )


def get_dependences(trace: Trace) -> Dict[int, int]:
    """Memoized :func:`compute_true_dependences` for *trace*."""
    key = id(trace)
    deps = _dep_cache.get(key)
    if deps is None:
        deps = compute_true_dependences(trace)
        _dep_cache[key] = deps
    return deps


def clear_cache() -> None:
    """Drop all cached traces and dependence analyses."""
    _trace_cache.clear()
    _dep_cache.clear()
