"""Workloads: SPEC'95 stand-in trace generators and assembly kernels.

The paper's experiments ran SPEC'95 binaries; without those binaries (or a
MIPS compiler and their modified inputs) we substitute, per benchmark, a
synthetic workload calibrated to Table 1's instruction mix and to the
dependence/latency structure that drives each paper result (see DESIGN.md
Section 2 for the substitution argument).
"""

from repro.workloads.profiles import WorkloadProfile
from repro.workloads.spec95 import (
    SPEC95_PROFILES,
    INT_BENCHMARKS,
    FP_BENCHMARKS,
    ALL_BENCHMARKS,
    profile_for,
)
from repro.workloads.synthetic import SyntheticProgram
from repro.workloads.catalog import (
    DEFAULT_LENGTH,
    GENERATOR_VERSION,
    get_trace,
    get_dependences,
    get_dependence_info,
    clear_cache,
    kernel_trace,
    precompile,
    trace_stats,
    KERNEL_NAMES,
)

__all__ = [
    "WorkloadProfile",
    "SPEC95_PROFILES",
    "INT_BENCHMARKS",
    "FP_BENCHMARKS",
    "ALL_BENCHMARKS",
    "profile_for",
    "SyntheticProgram",
    "DEFAULT_LENGTH",
    "GENERATOR_VERSION",
    "get_trace",
    "get_dependences",
    "get_dependence_info",
    "clear_cache",
    "kernel_trace",
    "precompile",
    "trace_stats",
    "KERNEL_NAMES",
]
