"""Hand-written assembly kernels (run on the ``repro.vm`` interpreter).

Each kernel is a function returning ``(source, memory_init)``: assembly
text plus an initial memory image. They give the test-suite and the
examples programs whose exact dependence structure is known by
construction — including the recurrence loop of the paper's Figure 7.
"""

from repro.workloads.kernels.recurrence import recurrence_loop
from repro.workloads.kernels.pointer_chase import pointer_chase
from repro.workloads.kernels.memcopy import memcopy
from repro.workloads.kernels.stack_calls import stack_calls
from repro.workloads.kernels.hashtable import hashtable_updates
from repro.workloads.kernels.reduction import vector_reduction
from repro.workloads.kernels.matmul import matmul
from repro.workloads.kernels.btree import btree_lookups
from repro.workloads.kernels.histogram import histogram
from repro.workloads.kernels.fibonacci import fibonacci

KERNELS = {
    "fibonacci": fibonacci,
    "recurrence": recurrence_loop,
    "pointer_chase": pointer_chase,
    "memcopy": memcopy,
    "stack_calls": stack_calls,
    "hashtable": hashtable_updates,
    "reduction": vector_reduction,
    "matmul": matmul,
    "btree": btree_lookups,
    "histogram": histogram,
}

__all__ = [
    "KERNELS",
    "recurrence_loop",
    "pointer_chase",
    "memcopy",
    "stack_calls",
    "hashtable_updates",
    "vector_reduction",
    "matmul",
    "btree_lookups",
    "histogram",
    "fibonacci",
]
