"""Call-heavy kernel: stack argument passing through memory.

The caller stores two arguments to the stack, calls, and the callee loads
them back — short, perfectly stable memory dependences at fixed static
PCs. This is the integer-code pattern that memory dependence prediction
(NAS/SYNC) learns after one miss-speculation.
"""

from __future__ import annotations

from typing import Dict, Tuple


def stack_calls(
    calls: int = 512, stack: int = 0x8000
) -> Tuple[str, Dict[int, int]]:
    """Assembly + memory image for a loop of argument-passing calls."""
    source = f"""
        li   r29, {stack}      # stack pointer
        li   r2, 0             # call counter
        li   r3, {calls}
        li   r4, 0             # accumulator
    loop:
        add  r5, r2, r4        # arg0
        slli r6, r2, 1         # arg1
        sw   r5, 0(r29)        # spill arg0   <- callee reloads
        sw   r6, 4(r29)        # spill arg1   <- callee reloads
        call helper
        add  r4, r4, r7        # use result
        addi r2, r2, 1
        blt  r2, r3, loop
        halt
    helper:
        lw   r8, 0(r29)        # reload arg0  <- depends on caller store
        lw   r9, 4(r29)        # reload arg1  <- depends on caller store
        add  r7, r8, r9
        ret
    """
    return source, {}
