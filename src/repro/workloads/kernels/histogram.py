"""Histogram accumulation: data-dependent read-modify-write conflicts.

Bucket indices come from loaded data, so a bucket's read-modify-write
occasionally collides with the previous iteration's store to the same
bucket — *ambiguous* dependences that are usually false (different
buckets) but sometimes true. The distribution's skew controls the
collision rate, making this the tunable middle ground between
``memcopy`` (never conflicts) and ``recurrence`` (always conflicts).
"""

from __future__ import annotations

import random
from typing import Dict, Tuple


def histogram(
    samples: int = 1024,
    buckets: int = 128,
    skew: int = 4,
    data_base: int = 0x70000,
    hist_base: int = 0x78000,
    seed: int = 3,
) -> Tuple[str, Dict[int, int]]:
    """Assembly + memory image for histogramming *samples* values.

    ``skew`` > 1 concentrates values on low buckets (more collisions).
    """
    if buckets & (buckets - 1):
        raise ValueError("buckets must be a power of two")
    rng = random.Random(seed)
    memory: Dict[int, int] = {}
    for i in range(samples):
        value = min(
            rng.randrange(buckets) for _ in range(skew)
        )
        memory[data_base + i * 4] = value
    for b in range(buckets):
        memory[hist_base + b * 4] = 0

    source = f"""
        li   r1, {data_base}
        li   r2, {hist_base}
        li   r3, 0             # i
        li   r4, {samples}
    loop:
        slli r5, r3, 2
        add  r6, r1, r5
        lw   r7, 0(r6)         # bucket index (data-dependent)
        slli r7, r7, 2
        add  r8, r2, r7        # &hist[bucket]
        lw   r9, 0(r8)         # read   <- sometimes true dependence
        addi r9, r9, 1
        sw   r9, 0(r8)         # modify-write
        addi r3, r3, 1
        blt  r3, r4, loop
        halt
    """
    return source, memory
