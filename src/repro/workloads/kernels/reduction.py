"""Floating-point vector reduction with strided spills.

A SPECfp-flavoured kernel: streaming loads feed a floating-point chain
whose result is spilled every iteration — store data arrives many cycles
after the store's address is known, the asymmetry that makes NAS/NO so
expensive on floating-point codes.
"""

from __future__ import annotations

from typing import Dict, Tuple


def vector_reduction(
    elements: int = 1024, src: int = 0x20000, spill: int = 0x80000
) -> Tuple[str, Dict[int, int]]:
    """Assembly + memory image for a multiply-accumulate reduction."""
    memory = {src + i * 4: (i % 97) + 1 for i in range(elements)}
    source = f"""
        li   r1, {src}
        li   r2, {spill}
        li   r3, 0
        li   r4, {elements}
        li   f0, 0              # accumulator
        li   f1, 3              # scale
    loop:
        slli r5, r3, 2
        add  r6, r1, r5
        add  r7, r2, r5
        flw  f2, 0(r6)          # stream in
        fmuld f3, f2, f1        # 5-cycle multiply
        fadd f0, f0, f3         # 2-cycle accumulate
        fdivd f4, f3, f1        # 15-cycle divide (late store data)
        fsw  f4, 0(r7)          # spill: address early, data very late
        addi r3, r3, 1
        blt  r3, r4, loop
        halt
    """
    return source, memory
