"""The paper's Figure 7 loop: a memory recurrence across iterations.

::

    for i = 1 .. n:
        a[i] = a[i - 1] + k

Iteration *i*'s ``load a[i-1]`` truly depends on iteration *i-1*'s
``store a[i]``. Under a continuous window the store's address is computed
before the load's (program order priority), so an address-based scheduler
avoids all miss-speculation; under a split window the two iterations may
live in different sub-windows and the load can run first (Section 3.7).
"""

from __future__ import annotations

from typing import Dict, Tuple


def recurrence_loop(
    n: int = 512, base: int = 0x1000, k: int = 3
) -> Tuple[str, Dict[int, int]]:
    """Assembly + memory image for ``a[i] = a[i-1] + k``."""
    source = f"""
        li   r1, {base}        # &a[0]
        li   r2, 1             # i
        li   r3, {n}           # n
        li   r4, {k}           # k
    loop:
        slli r5, r2, 2         # i * 4
        add  r6, r1, r5        # &a[i]
        lw   r7, -4(r6)        # a[i-1]   <- depends on previous store
        add  r8, r7, r4        # a[i-1] + k
        sw   r8, 0(r6)         # a[i]     <- feeds next iteration's load
        addi r2, r2, 1
        blt  r2, r3, loop
        halt
    """
    memory = {base: 1}  # a[0]
    return source, memory
