"""Tiny dense matrix multiply: the classic FP inner-product loop.

Per inner-loop iteration: two streaming loads feed a multiply-
accumulate chain; the result row is stored once per middle-loop
iteration with very late data — the store's value is the end of a long
FP chain, so the NAS/NO policy stalls the next row's loads behind it.
"""

from __future__ import annotations

from typing import Dict, Tuple


def matmul(
    n: int = 12,
    a_base: int = 0x30000,
    b_base: int = 0x40000,
    c_base: int = 0x50000,
) -> Tuple[str, Dict[int, int]]:
    """Assembly + memory image for ``C = A @ B`` over n x n ints."""
    memory: Dict[int, int] = {}
    for i in range(n):
        for j in range(n):
            memory[a_base + (i * n + j) * 4] = (i + 2 * j + 1) % 17
            memory[b_base + (i * n + j) * 4] = (3 * i + j + 1) % 13
    source = f"""
        li   r1, {a_base}
        li   r2, {b_base}
        li   r3, {c_base}
        li   r4, {n}          # n
        li   r10, 0           # i
    iloop:
        li   r11, 0           # j
    jloop:
        li   r12, 0           # k
        li   f0, 0            # acc
    kloop:
        mul  r13, r10, r4     # i*n
        add  r13, r13, r12    # i*n + k
        slli r13, r13, 2
        add  r13, r1, r13
        flw  f1, 0(r13)       # A[i][k]
        mul  r14, r12, r4     # k*n
        add  r14, r14, r11    # k*n + j
        slli r14, r14, 2
        add  r14, r2, r14
        flw  f2, 0(r14)       # B[k][j]
        fmuld f3, f1, f2
        fadd f0, f0, f3       # acc += A[i][k]*B[k][j]
        addi r12, r12, 1
        blt  r12, r4, kloop
        mul  r15, r10, r4
        add  r15, r15, r11
        slli r15, r15, 2
        add  r15, r3, r15
        fsw  f0, 0(r15)       # C[i][j]  <- data is the whole FP chain
        addi r11, r11, 1
        blt  r11, r4, jloop
        addi r10, r10, 1
        blt  r10, r4, iloop
        halt
    """
    return source, memory
