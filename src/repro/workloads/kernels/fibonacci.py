"""Recursive Fibonacci: deep call trees and stack-carried dependences.

The most demanding return-address-stack workload in the suite: calls
nest ``n`` deep, and every frame spills the return address and the
argument to the stack and reloads them after the inner call returns —
dozens of genuine, short-distance, perfectly-PC-stable memory
dependences per call, exactly the pattern that made memory dependence
prediction attractive for integer code.
"""

from __future__ import annotations

from typing import Dict, Tuple


def fibonacci(n: int = 13, stack: int = 0x90000) -> Tuple[str, Dict[int, int]]:
    """Assembly + memory image computing ``fib(n)`` recursively.

    Frame layout (grows downward, 12 bytes per frame):
    ``[saved r31, saved argument, saved fib(n-1)]``.
    """
    if not 1 <= n <= 20:
        raise ValueError("n must be in [1, 20] (call depth)")
    source = f"""
        li   r29, {stack}      # stack pointer (grows down)
        li   r1, {n}           # argument
        call fib
        halt

    fib:                       # fib(r1) -> r2
        li   r3, 2
        blt  r1, r3, base      # n < 2 -> return n
        addi r29, r29, -12     # push frame
        sw   r31, 0(r29)       # save return address   <- reloaded below
        sw   r1, 4(r29)        # save argument         <- reloaded below
        addi r1, r1, -1
        call fib               # fib(n-1)
        sw   r2, 8(r29)        # save fib(n-1)         <- reloaded below
        lw   r1, 4(r29)        # reload argument
        addi r1, r1, -2
        call fib               # fib(n-2)
        lw   r4, 8(r29)        # reload fib(n-1)
        add  r2, r2, r4        # fib(n-1) + fib(n-2)
        lw   r31, 0(r29)       # reload return address
        addi r29, r29, 12      # pop frame
        ret
    base:
        mv   r2, r1
        ret
    """
    return source, {}
