"""Binary-search-tree lookups: pointer chasing with branchy control.

Each probe descends the tree by loaded child pointers — load addresses
arrive late (the anti-streaming case), and the data-dependent branches
stress the direction predictor. No true memory dependences exist during
the search phase, so a no-speculation policy loses everything the tree
could overlap.
"""

from __future__ import annotations

import random
from typing import Dict, Tuple


def btree_lookups(
    nodes: int = 255,
    probes: int = 512,
    base: int = 0x60000,
    seed: int = 11,
) -> Tuple[str, Dict[int, int]]:
    """Assembly + memory image for repeated BST lookups.

    Nodes are three words: ``[key, left, right]`` (0 = null). A balanced
    tree over shuffled keys is materialised in memory; probe keys cycle
    through a deterministic pseudo-random sequence.
    """
    rng = random.Random(seed)
    keys = list(range(1, nodes + 1))
    rng.shuffle(keys)

    addr_of = {}
    next_slot = [0]

    def place(sorted_keys):
        if not sorted_keys:
            return 0
        mid = len(sorted_keys) // 2
        key = sorted_keys[mid]
        slot = next_slot[0]
        next_slot[0] += 1
        addr = base + slot * 12
        addr_of[key] = addr
        left = place(sorted_keys[:mid])
        right = place(sorted_keys[mid + 1:])
        memory[addr] = key
        memory[addr + 4] = left
        memory[addr + 8] = right
        return addr

    memory: Dict[int, int] = {}
    root = place(sorted(keys))

    source = f"""
        li   r1, {root}        # root
        li   r2, 0             # probe counter
        li   r3, {probes}
        li   r4, 7             # probe key state
        li   r5, {nodes}
        li   r9, 0             # hits
    probe:
        mul  r4, r4, r4        # key = (key*key + probe) % nodes + 1
        add  r4, r4, r2
        div  r6, r4, r5
        mul  r6, r6, r5
        sub  r4, r4, r6
        addi r4, r4, 1
        mv   r7, r1            # node = root
    descend:
        beq  r7, r0, miss
        lw   r8, 0(r7)         # node.key
        beq  r8, r4, hit
        blt  r4, r8, left
        lw   r7, 8(r7)         # node = node.right
        j    descend
    left:
        lw   r7, 4(r7)         # node = node.left
        j    descend
    hit:
        addi r9, r9, 1
    miss:
        addi r2, r2, 1
        blt  r2, r3, probe
        halt
    """
    return source, memory
