"""Linked-list pointer chase: serial load-to-load dependences.

Exercises late-arriving *addresses* (the opposite asymmetry from the
streaming kernels): each load's address is the previous load's value, so
no speculation policy can start a load before its predecessor finishes.
"""

from __future__ import annotations

import random
from typing import Dict, Tuple


def pointer_chase(
    nodes: int = 256, hops: int = 2048, base: int = 0x2000, seed: int = 7
) -> Tuple[str, Dict[int, int]]:
    """Assembly + memory image for chasing a shuffled singly-linked list.

    Each node is two words: ``[next, payload]``. The chase also stores an
    accumulated checksum every hop so stores interleave with the chase.
    """
    rng = random.Random(seed)
    order = list(range(1, nodes))
    rng.shuffle(order)
    order = [0] + order
    memory: Dict[int, int] = {}
    for i, node in enumerate(order):
        nxt = order[(i + 1) % nodes]
        memory[base + node * 8] = base + nxt * 8
        memory[base + node * 8 + 4] = node * 13 + 1
    checksum_addr = base + nodes * 8 + 64

    source = f"""
        li   r1, {base}          # current node
        li   r2, 0               # hop counter
        li   r3, {hops}
        li   r4, 0               # checksum
        li   r5, {checksum_addr}
    loop:
        lw   r6, 4(r1)           # payload
        add  r4, r4, r6
        sw   r4, 0(r5)           # running checksum (same-address stores)
        lw   r1, 0(r1)           # next   <- serial dependence
        addi r2, r2, 1
        blt  r2, r3, loop
        halt
    """
    return source, memory
