"""Word-wise memcpy: abundant load/store parallelism, zero true deps.

The ideal showcase for memory dependence speculation: every load is
independent of every store (disjoint regions), so NAS/NO's "wait for all
older stores" policy gives up the entire overlap for nothing.
"""

from __future__ import annotations

from typing import Dict, Tuple


def memcopy(
    words: int = 1024, src: int = 0x4000, dst: int = 0x40000
) -> Tuple[str, Dict[int, int]]:
    """Assembly + memory image for ``dst[0:words] = src[0:words]``."""
    if dst < src + words * 4 and src < dst + words * 4:
        raise ValueError("source and destination regions overlap")
    memory = {src + i * 4: (i * 2654435761) & 0xFFFFFFFF
              for i in range(words)}
    source = f"""
        li   r1, {src}
        li   r2, {dst}
        li   r3, 0
        li   r4, {words}
    loop:
        slli r5, r3, 2
        add  r6, r1, r5
        add  r7, r2, r5
        lw   r8, 0(r6)
        sw   r8, 0(r7)
        addi r3, r3, 1
        blt  r3, r4, loop
        halt
    """
    return source, memory
