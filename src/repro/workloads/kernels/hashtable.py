"""Hash-table update kernel: read-modify-write with *ambiguous* deps.

Buckets are chosen by a multiplicative hash of the loop index, so two
nearby iterations only rarely touch the same bucket — loads almost never
truly depend on recent stores, yet a no-speculation policy must always
wait. A small fraction of iterations deliberately rehash into the
previous iteration's bucket to create occasional true dependences (the
case that punishes naive speculation).
"""

from __future__ import annotations

from typing import Dict, Tuple


def hashtable_updates(
    updates: int = 1024,
    buckets: int = 64,
    base: int = 0x10000,
    collide_every: int = 16,
) -> Tuple[str, Dict[int, int]]:
    """Assembly + memory image for hashed read-modify-write updates.

    Every ``collide_every``-th iteration reuses the previous iteration's
    bucket, creating a true store-to-load dependence one iteration apart.
    """
    if buckets & (buckets - 1):
        raise ValueError("buckets must be a power of two")
    source = f"""
        li   r1, {base}
        li   r2, 0              # i
        li   r3, {updates}
        li   r4, {buckets - 1}  # mask
        li   r10, {collide_every}
        li   r11, 1             # previous bucket index
    loop:
        mul  r5, r2, r2         # hash = (i*i + i) & mask
        add  r5, r5, r2
        and  r5, r5, r4
        div  r6, r2, r10        # i / collide_every
        mul  r6, r6, r10
        sub  r6, r2, r6         # i % collide_every
        bne  r6, r0, nocollide
        mv   r5, r11            # collide: reuse previous bucket
    nocollide:
        slli r7, r5, 2
        add  r8, r1, r7         # &table[bucket]
        lw   r9, 0(r8)          # read    <- sometimes depends on last store
        addi r9, r9, 1
        sw   r9, 0(r8)          # modify-write
        mv   r11, r5
        addi r2, r2, 1
        blt  r2, r3, loop
        halt
    """
    memory = {base + i * 4: 0 for i in range(buckets)}
    return source, memory
