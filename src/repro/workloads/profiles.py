"""Workload profile: everything the synthetic generator needs to know.

A profile captures (a) the measurable instruction mix of the original
SPEC'95 program (Table 1 of the paper) and (b) the latent structural
parameters — dependence density, dependence distance, store-data latency,
branch behaviour, working-set size — that produce the paper's per-program
behaviour (Table 3 false-dependence rates, Table 4 miss-speculation
rates, and the per-figure speedup shapes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple


@dataclass(frozen=True)
class WorkloadProfile:
    """Calibration of one synthetic SPEC'95 stand-in."""

    # -- identity / Table 1 facts -----------------------------------------
    name: str
    suite: str  # "int" or "fp"
    #: Dynamic instruction count of the original run, in millions.
    instruction_count_millions: float
    load_fraction: float
    store_fraction: float
    #: Table 1 "SR" sampling ratio, e.g. "1:2"; None for "N/A".
    sampling_ratio: Optional[str]

    # -- memory dependence structure ---------------------------------------
    #: Fraction of loads that truly depend on a store within the window.
    dep_load_fraction: float = 0.04
    #: Of dependent loads, the share whose producing store is in the same
    #: loop iteration (short distance — the naive-speculation hazard).
    dep_same_iter_fraction: float = 0.6
    #: Iteration lags used for cross-iteration dependences.
    dep_lags: Tuple[int, ...] = (1, 2)
    #: Probability that a store silently rewrites the current value.
    silent_store_fraction: float = 0.02

    # -- store data latency (drives Table 3 resolution latency) ------------
    #: Length of the compute chain feeding store data registers.
    chain_length: int = 3
    #: Fraction of compute-chain operations that are floating point.
    fp_compute_fraction: float = 0.0
    #: Fraction of chains that include a divide (long latency tail).
    divide_fraction: float = 0.0
    #: Fraction of stores whose data comes via a load from the random
    #: region (cache-miss-fed stores: very late data).
    store_data_from_load_fraction: float = 0.0

    # -- branch behaviour ----------------------------------------------------
    #: Branches per body instruction beyond the loop-closing branch
    #: (data-dependent "if" branches).
    data_branch_fraction: float = 0.3
    #: Probability a data branch is taken (i.i.d. per execution).
    branch_bias: float = 0.25

    # -- locality --------------------------------------------------------------
    #: Size of each streaming array region in KiB.
    stream_region_kb: int = 64
    #: Size of the randomly-accessed region in KiB.
    random_region_kb: int = 256
    #: Fraction of independent loads that hit the random region.
    random_load_fraction: float = 0.1
    #: Of random-region accesses, the share that stays in a hot subset
    #: (real "random" access streams are heavily skewed; without this the
    #: D-cache miss rate is far above anything SPEC'95 exhibits).
    random_hot_fraction: float = 0.85
    #: Fraction of loads whose *address* comes from a previous load
    #: (pointer-chasing codes): their addresses arrive late, which lowers
    #: the false-dependence fraction — by address-ready time the older
    #: stores have usually issued.
    late_addr_load_fraction: float = 0.0
    #: Fraction of stores whose address register comes from a load
    #: (stores through pointers): they post addresses late, which is what
    #: separates AS/NAV from AS/NO.
    store_late_addr_fraction: float = 0.05

    # -- program shape -----------------------------------------------------------
    body_size: int = 24
    num_loops: int = 4
    trip_count: int = 48
    #: Fraction of loops whose body contains a call block (stack-argument
    #: stores in the caller, matching loads in the callee — the classic
    #: integer-code source of short memory dependences).
    call_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.suite not in ("int", "fp"):
            raise ValueError(f"{self.name}: suite must be 'int' or 'fp'")
        for field_name in (
            "load_fraction",
            "store_fraction",
            "dep_load_fraction",
            "dep_same_iter_fraction",
            "fp_compute_fraction",
            "data_branch_fraction",
            "branch_bias",
            "random_load_fraction",
            "call_fraction",
            "silent_store_fraction",
            "divide_fraction",
            "store_data_from_load_fraction",
            "random_hot_fraction",
            "late_addr_load_fraction",
            "store_late_addr_fraction",
        ):
            value = getattr(self, field_name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(
                    f"{self.name}: {field_name}={value} outside [0, 1]"
                )
        if self.load_fraction + self.store_fraction >= 0.9:
            raise ValueError(f"{self.name}: memory fractions too large")
        if self.body_size < 8:
            raise ValueError(f"{self.name}: body too small")
        if self.trip_count < 2 or self.num_loops < 1:
            raise ValueError(f"{self.name}: bad loop shape")

    @property
    def short_name(self) -> str:
        """Leading numeric part of the SPEC name, e.g. '126' for 126.gcc."""
        return self.name.split(".")[0]
