"""The dynamic execution trace: an ordered list of :class:`DynInst`.

A trace comes from functional execution (``repro.vm``) or from the
synthetic workload generator (``repro.workloads``). Because it is the
*correct-path* instruction stream, squash recovery is modelled by
re-dispatching from the squashed instruction onward — memory dependence
miss-speculation never changes the control path, only timing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

from repro.isa.instruction import DynInst, TraceSummary


@dataclass
class Trace:
    """A complete dynamic instruction trace plus provenance metadata."""

    instructions: List[DynInst]
    name: str = "trace"
    #: Optional tag: "int" or "fp" (SPEC'95 class) for summary grouping.
    suite: Optional[str] = None

    def __post_init__(self) -> None:
        for i, inst in enumerate(self.instructions):
            if inst.seq != i:
                raise ValueError(
                    f"trace {self.name}: instruction {i} has seq "
                    f"{inst.seq}; sequence numbers must be 0..N-1"
                )

    def __len__(self) -> int:
        return len(self.instructions)

    def __getitem__(self, seq: int) -> DynInst:
        return self.instructions[seq]

    def __iter__(self):
        return iter(self.instructions)

    def summary(self) -> TraceSummary:
        """Aggregate composition (load/store/branch fractions)."""
        summary = TraceSummary()
        for inst in self.instructions:
            summary.add(inst)
        return summary

    def slice(self, start: int, stop: int) -> Sequence[DynInst]:
        """Instructions with ``start <= seq < stop``."""
        return self.instructions[start:stop]

    @staticmethod
    def from_iterable(
        instructions: Iterable[DynInst],
        name: str = "trace",
        suite: Optional[str] = None,
    ) -> "Trace":
        return Trace(list(instructions), name=name, suite=suite)
