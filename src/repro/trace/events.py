"""The dynamic execution trace: an ordered list of :class:`DynInst`.

A trace comes from functional execution (``repro.vm``) or from the
synthetic workload generator (``repro.workloads``). Because it is the
*correct-path* instruction stream, squash recovery is modelled by
re-dispatching from the squashed instruction onward — memory dependence
miss-speculation never changes the control path, only timing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.isa.instruction import DynInst, TraceSummary


@dataclass
class Trace:
    """A complete dynamic instruction trace plus provenance metadata."""

    instructions: List[DynInst]
    name: str = "trace"
    #: Optional tag: "int" or "fp" (SPEC'95 class) for summary grouping.
    suite: Optional[str] = None
    #: Where this trace came from, when the catalog produced it:
    #: ``(name, length, seed, generator_version)``. Keys the dependence
    #: memos so analyses survive trace-cache eviction and can be shared
    #: across processes. ``None`` for hand-built traces. Excluded from
    #: equality: two traces with identical instructions are the same
    #: trace regardless of how they were obtained.
    provenance: Optional[Tuple[str, int, int, str]] = field(
        default=None, compare=False
    )

    def __post_init__(self) -> None:
        for i, inst in enumerate(self.instructions):
            if inst.seq != i:
                raise ValueError(
                    f"trace {self.name}: instruction {i} has seq "
                    f"{inst.seq}; sequence numbers must be 0..N-1"
                )

    @classmethod
    def trusted(
        cls,
        instructions: List[DynInst],
        name: str = "trace",
        suite: Optional[str] = None,
        provenance: Optional[Tuple[str, int, int, str]] = None,
    ) -> "Trace":
        """Construct without the O(n) seq re-validation.

        For producers that guarantee ``seq == index`` by construction
        (the compiled-trace materializer); everything else should use
        the normal constructor.
        """
        trace = cls.__new__(cls)
        trace.instructions = instructions
        trace.name = name
        trace.suite = suite
        trace.provenance = provenance
        return trace

    def __len__(self) -> int:
        return len(self.instructions)

    def __getitem__(self, seq: int) -> DynInst:
        return self.instructions[seq]

    def __iter__(self):
        return iter(self.instructions)

    def summary(self) -> TraceSummary:
        """Aggregate composition (load/store/branch fractions)."""
        summary = TraceSummary()
        for inst in self.instructions:
            summary.add(inst)
        return summary

    def slice(self, start: int, stop: int) -> Sequence[DynInst]:
        """Instructions with ``start <= seq < stop``."""
        return self.instructions[start:stop]

    @staticmethod
    def from_iterable(
        instructions: Iterable[DynInst],
        name: str = "trace",
        suite: Optional[str] = None,
    ) -> "Trace":
        return Trace(list(instructions), name=name, suite=suite)
