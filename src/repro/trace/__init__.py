"""Dynamic-trace infrastructure consumed by the timing simulator."""

from repro.trace.events import Trace
from repro.trace.cursor import TraceCursor
from repro.trace.compiled import (
    COMPILED_FORMAT_VERSION,
    CompiledTrace,
    TraceFormatError,
    compile_trace,
)
from repro.trace.dependences import (
    compute_true_dependences,
    dependence_distance_histogram,
)
from repro.trace.sampling import SamplingPlan, Segment, make_sampling_plan
from repro.trace.tracestore import (
    TRACE_STORE_ENV_VAR,
    TraceStore,
    active_trace_store,
    default_trace_store_path,
    set_trace_store,
)
from repro.trace.depgraph import trace_to_dot

__all__ = [
    "trace_to_dot",
    "Trace",
    "TraceCursor",
    "COMPILED_FORMAT_VERSION",
    "CompiledTrace",
    "TraceFormatError",
    "compile_trace",
    "TRACE_STORE_ENV_VAR",
    "TraceStore",
    "active_trace_store",
    "default_trace_store_path",
    "set_trace_store",
    "compute_true_dependences",
    "dependence_distance_histogram",
    "SamplingPlan",
    "Segment",
    "make_sampling_plan",
]
