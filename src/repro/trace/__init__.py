"""Dynamic-trace infrastructure consumed by the timing simulator."""

from repro.trace.events import Trace
from repro.trace.cursor import TraceCursor
from repro.trace.dependences import (
    compute_true_dependences,
    dependence_distance_histogram,
)
from repro.trace.sampling import SamplingPlan, Segment, make_sampling_plan
from repro.trace.depgraph import trace_to_dot

__all__ = [
    "trace_to_dot",
    "Trace",
    "TraceCursor",
    "compute_true_dependences",
    "dependence_distance_histogram",
    "SamplingPlan",
    "Segment",
    "make_sampling_plan",
]
