"""Structure-of-arrays compiled traces.

A :class:`~repro.trace.events.Trace` is ~30k :class:`DynInst` objects;
producing one means running the VM interpreter or the synthetic
generator, and sharing one between processes means pickling every
object. The evaluation's shape is "same instruction stream, many
machine configurations" (Section 3 of the paper), so the stream is
worth compiling once into a form that is cheap to persist, share and
re-materialize.

:class:`CompiledTrace` packs each ``DynInst`` field into one parallel
column:

* ``pc``/``dest``/``addr``/``size``/``value``/``target`` are int64
  ``array('q')`` columns. Nullable columns (``dest``, ``addr``,
  ``value``, ``target``) carry a one-bit-per-instruction null mask, so
  ``None`` costs one bit and no sentinel value is stolen from the
  integer domain. The rare integer outside int64 range goes to a
  per-column overflow side table, keeping the round trip bit-exact for
  arbitrary Python ints.
* ``op`` is one byte per instruction indexing an ``op_names`` table
  recorded alongside the columns (robust to :class:`OpClass` members
  being reordered between versions).
* ``taken`` is one byte per instruction (0=None, 1=False, 2=True).
* ``srcs`` tuples are flattened into one int64 column plus an offsets
  column (CSR-style), so variable arity costs 8 bytes per source.
* The precomputed dependence map (:func:`compute_dependence_info`)
  packs into three more columns: dependent load seqs, producing store
  seqs and a stale-value-equality bitmask.

``seq`` is implicit (column index), which also makes prefix slicing
exact: the first *n* rows of every column ARE the compiled form of the
first *n* instructions, and a dependence map restricted to loads below
*n* is exactly the dependence map of the prefix (a load's producing
store is always older than the load).

Materialization back to ``DynInst`` objects is lazy — a consumer that
only needs the dependence map or the composition summary never builds
a single object — and trusted (the O(n) seq re-validation in
``Trace.__post_init__`` is skipped; the compiler already proved it).

``to_bytes``/``from_bytes`` give a versioned, checksummed binary
encoding used by :mod:`repro.trace.tracestore`:

    b"RPTC" | u32 format | u32 header_len | header JSON | payload
    | sha256(header JSON + payload)

Columns sit at 8-byte-aligned offsets inside the payload so a reader
may address them directly in an ``mmap`` of the file.
"""

from __future__ import annotations

import hashlib
import json
import struct
from array import array
from typing import Dict, List, Optional, Sequence, Tuple

from repro.isa.instruction import DynInst
from repro.isa.opcodes import OpClass
from repro.trace.dependences import DependenceInfo
from repro.trace.events import Trace

#: Bump when the column layout or the header schema changes; old files
#: then fail the format check and are regenerated.
COMPILED_FORMAT_VERSION = 1

_MAGIC = b"RPTC"
_INT64_MIN = -(1 << 63)
_INT64_MAX = (1 << 63) - 1

#: Columns serialized into the payload, in file order.
_INT_COLUMNS = ("pc", "dest", "size", "addr", "value", "target",
                "srcs_off", "srcs_flat", "dep_load", "dep_store")
_BYTE_COLUMNS = ("op", "taken")
_MASK_COLUMNS = ("dest_null", "addr_null", "value_null", "target_null",
                 "dep_stale")


class TraceCompileError(ValueError):
    """A trace cannot be represented in the compiled format."""


class TraceFormatError(ValueError):
    """A byte stream is not a valid compiled trace."""


def _pack_ints(values: Sequence[int], overflow: Dict[str, Dict[str, int]],
               column: str) -> array:
    """int64 column; out-of-range entries go to the overflow table."""
    try:
        return array("q", values)
    except OverflowError:
        pass
    spill = overflow.setdefault(column, {})
    packed = array("q", bytes(8 * len(values)))
    for i, value in enumerate(values):
        if _INT64_MIN <= value <= _INT64_MAX:
            packed[i] = value
        else:
            spill[str(i)] = value
    return packed


def _pack_mask(flags: Sequence[bool]) -> bytes:
    """One bit per entry, LSB-first within each byte."""
    mask = bytearray((len(flags) + 7) // 8)
    for i, flag in enumerate(flags):
        if flag:
            mask[i >> 3] |= 1 << (i & 7)
    return bytes(mask)


def _mask_bit(mask: bytes, i: int) -> int:
    return (mask[i >> 3] >> (i & 7)) & 1


def _slice_mask(mask: bytes, length: int) -> bytes:
    """The first *length* bits of *mask*, spare tail bits zeroed."""
    out = bytearray(mask[: (length + 7) // 8])
    if length & 7 and out:
        out[-1] &= (1 << (length & 7)) - 1
    return bytes(out)


class CompiledTrace:
    """One trace compiled into packed parallel columns.

    Construct with :func:`compile_trace` or :meth:`from_bytes`; the
    raw constructor trusts its arguments.
    """

    __slots__ = (
        "name", "suite", "length", "kind", "budget",
        "pc", "op", "dest", "dest_null", "size", "addr", "addr_null",
        "value", "value_null", "taken", "target", "target_null",
        "srcs_off", "srcs_flat", "overflow",
        "dep_load", "dep_store", "dep_stale",
        "_instructions", "_op_names",
    )

    def __init__(self, *, name: str, suite: Optional[str], length: int,
                 kind: str, budget: Optional[int],
                 pc: array, op: bytes, dest: array, dest_null: bytes,
                 size: array, addr: array, addr_null: bytes,
                 value: array, value_null: bytes, taken: bytes,
                 target: array, target_null: bytes,
                 srcs_off: array, srcs_flat: array,
                 overflow: Dict[str, Dict[str, int]],
                 dep_load: Optional[array] = None,
                 dep_store: Optional[array] = None,
                 dep_stale: Optional[bytes] = None) -> None:
        self.name = name
        self.suite = suite
        self.length = length
        #: "kernel" (VM execution, runs to natural completion under an
        #: instruction budget) or "synthetic" (prefix-stable stream).
        self.kind = kind
        #: For kernels: the ``max_instructions`` budget the run was
        #: generated under (>= length, since the run completed).
        self.budget = budget
        self.pc = pc
        self.op = op
        self.dest = dest
        self.dest_null = dest_null
        self.size = size
        self.addr = addr
        self.addr_null = addr_null
        self.value = value
        self.value_null = value_null
        self.taken = taken
        self.target = target
        self.target_null = target_null
        self.srcs_off = srcs_off
        self.srcs_flat = srcs_flat
        self.overflow = overflow
        self.dep_load = dep_load
        self.dep_store = dep_store
        self.dep_stale = dep_stale
        self._instructions: Optional[List[DynInst]] = None
        #: Op-name order the ``op`` bytes index into; None means the
        #: current :class:`OpClass` definition order (fresh compile).
        self._op_names: Optional[List[str]] = None

    def __len__(self) -> int:
        return self.length

    @property
    def has_dependences(self) -> bool:
        return self.dep_load is not None

    # -- materialization -----------------------------------------------------

    @property
    def instructions(self) -> List[DynInst]:
        """The materialized ``DynInst`` list (built once, on demand)."""
        if self._instructions is None:
            self._instructions = self._materialize_all()
        return self._instructions

    def _materialize_all(self) -> List[DynInst]:
        n = self.length
        ops = _op_table(self)
        pc, dest, size = self.pc, self.dest, self.size
        addr, value, target = self.addr, self.value, self.target
        op_col, taken_col = self.op, self.taken
        dest_null, addr_null = self.dest_null, self.addr_null
        value_null, target_null = self.value_null, self.target_null
        srcs_off, srcs_flat = self.srcs_off, self.srcs_flat
        spill = {
            column: {int(i): v for i, v in table.items()}
            for column, table in self.overflow.items()
        }
        new = DynInst.__new__
        out: List[DynInst] = []
        append = out.append
        taken_map = (None, False, True)
        srcs_cache: Dict[Tuple[int, ...], Tuple[int, ...]] = {}
        for i in range(n):
            byte = i >> 3
            bit = 1 << (i & 7)
            lo, hi = srcs_off[i], srcs_off[i + 1]
            srcs = tuple(srcs_flat[lo:hi])
            # Source tuples repeat heavily (same static instruction);
            # interning them keeps the materialized trace compact.
            srcs = srcs_cache.setdefault(srcs, srcs)
            # Assigned one attribute at a time, in dataclass field
            # order, so instances keep CPython's key-sharing dicts —
            # replacing __dict__ wholesale would give every DynInst a
            # combined dict (~2x the memory, measurably slower to read
            # in the simulator's hot loops).
            inst = new(DynInst)
            inst.seq = i
            inst.pc = pc[i]
            inst.op = ops[op_col[i]]
            inst.dest = None if dest_null[byte] & bit else dest[i]
            inst.srcs = srcs
            inst.addr = None if addr_null[byte] & bit else addr[i]
            inst.size = size[i]
            inst.value = None if value_null[byte] & bit else value[i]
            inst.taken = taken_map[taken_col[i]]
            inst.target = None if target_null[byte] & bit else target[i]
            append(inst)
        for column, table in spill.items():
            for i, big in table.items():
                if column == "srcs_flat":
                    lo = None
                    for j in range(n):
                        if self.srcs_off[j] <= i < self.srcs_off[j + 1]:
                            lo = j
                            break
                    srcs = list(out[lo].srcs)
                    srcs[i - self.srcs_off[lo]] = big
                    out[lo].srcs = tuple(srcs)
                else:
                    setattr(out[i], column, big)
        return out

    def instruction(self, i: int) -> DynInst:
        """One materialized instruction (materializes the whole list)."""
        return self.instructions[i]

    def materialize(self, provenance: Optional[Tuple] = None) -> Trace:
        """A :class:`Trace` over the (shared) materialized list.

        Skips the O(n) seq validation — the compiler proved it.
        """
        return Trace.trusted(
            self.instructions, name=self.name, suite=self.suite,
            provenance=provenance,
        )

    # -- packed-column fast paths --------------------------------------------

    def dependence_info(self) -> Optional[Dict[int, DependenceInfo]]:
        """Decode the packed dependence map, or None if not attached."""
        if self.dep_load is None:
            return None
        stale = self.dep_stale
        return {
            load: DependenceInfo(
                store_seq=store, stale_equal=bool(_mask_bit(stale, i))
            )
            for i, (load, store) in enumerate(
                zip(self.dep_load, self.dep_store)
            )
        }

    def true_dependences(self) -> Optional[Dict[int, int]]:
        """load seq -> producing store seq, or None if not attached."""
        if self.dep_load is None:
            return None
        return dict(zip(self.dep_load, self.dep_store))

    def attach_dependences(
        self, info: Dict[int, DependenceInfo]
    ) -> None:
        """Pack *info* (:func:`compute_dependence_info` result) in."""
        loads = sorted(info)
        self.dep_load = array("q", loads)
        self.dep_store = array("q", (info[k].store_seq for k in loads))
        self.dep_stale = _pack_mask([info[k].stale_equal for k in loads])

    def compute_dependence_info(self) -> Dict[int, DependenceInfo]:
        """:func:`repro.trace.dependences.compute_dependence_info`
        straight off the packed columns — no object materialization.

        Word granularity (4 bytes) matches the object-walk version
        bit for bit; a test asserts the equivalence.
        """
        ops = _op_table(self)
        load_idx = _op_index(ops, OpClass.LOAD)
        store_idx = _op_index(ops, OpClass.STORE)
        op_col, addr_col, size_col = self.op, self.addr, self.size
        value_col, value_null = self.value, self.value_null
        memory: Dict[int, int] = {}
        last_store: Dict[int, int] = {}
        pre_write: Dict[int, int] = {}
        info: Dict[int, DependenceInfo] = {}
        for i in range(self.length):
            op = op_col[i]
            if op == store_idx:
                addr = addr_col[i]
                word = addr >> 2
                pre_write[i] = memory.get(word, 0)
                stored = (
                    0 if value_null[i >> 3] & (1 << (i & 7))
                    else value_col[i]
                )
                for w in range(word, (addr + size_col[i] - 1 >> 2) + 1):
                    last_store[w] = i
                    memory[w] = stored
            elif op == load_idx:
                addr = addr_col[i]
                youngest = -1
                for w in range(addr >> 2, (addr + size_col[i] - 1 >> 2) + 1):
                    seq = last_store.get(w, -1)
                    if seq > youngest:
                        youngest = seq
                if youngest >= 0:
                    correct = (
                        0 if value_null[i >> 3] & (1 << (i & 7))
                        else value_col[i]
                    )
                    info[i] = DependenceInfo(
                        store_seq=youngest,
                        stale_equal=pre_write.get(youngest, 0) == correct,
                    )
        if self.overflow:
            # Out-of-int64 addresses/values/sizes are possible in
            # principle; fall back to the reference implementation
            # rather than replicate overflow patching here.
            from repro.trace.dependences import compute_dependence_info

            return compute_dependence_info(self.materialize())
        return info

    def summary_counts(self) -> Dict[str, int]:
        """Loads/stores/branches straight off the ``op`` column."""
        ops = _op_table(self)
        counts = [0] * len(ops)
        for op in self.op:
            counts[op] += 1
        loads = counts[_op_index(ops, OpClass.LOAD)]
        stores = counts[_op_index(ops, OpClass.STORE)]
        branches = sum(
            counts[i] for i, op in enumerate(ops) if op.branch_class
        )
        return {
            "instructions": self.length,
            "loads": loads,
            "stores": stores,
            "branches": branches,
        }

    # -- prefix slicing ------------------------------------------------------

    def slice_prefix(self, length: int) -> "CompiledTrace":
        """The compiled form of the first *length* instructions.

        Exact for prefix-stable streams (the synthetic generator): row
        *i* of every column only describes instruction *i*, and the
        dependence map restricted to loads below *length* is the
        dependence map of the prefix.
        """
        if not 0 <= length <= self.length:
            raise ValueError(
                f"prefix {length} out of range for trace of "
                f"{self.length}"
            )
        if length == self.length:
            return self
        ops_order = self._op_names
        flat_stop = self.srcs_off[length]
        overflow: Dict[str, Dict[str, int]] = {}
        for column, table in self.overflow.items():
            stop = flat_stop if column == "srcs_flat" else length
            kept = {i: v for i, v in table.items() if int(i) < stop}
            if kept:
                overflow[column] = kept
        dep_load = dep_store = dep_stale = None
        if self.dep_load is not None:
            import bisect

            stop = bisect.bisect_left(self.dep_load, length)
            dep_load = self.dep_load[:stop]
            dep_store = self.dep_store[:stop]
            dep_stale = _slice_mask(self.dep_stale, stop)
        prefix = CompiledTrace(
            name=self.name, suite=self.suite, length=length,
            kind=self.kind, budget=self.budget,
            pc=self.pc[:length], op=self.op[:length],
            dest=self.dest[:length],
            dest_null=_slice_mask(self.dest_null, length),
            size=self.size[:length], addr=self.addr[:length],
            addr_null=_slice_mask(self.addr_null, length),
            value=self.value[:length],
            value_null=_slice_mask(self.value_null, length),
            taken=self.taken[:length], target=self.target[:length],
            target_null=_slice_mask(self.target_null, length),
            srcs_off=self.srcs_off[:length + 1],
            srcs_flat=self.srcs_flat[:flat_stop],
            overflow=overflow,
            dep_load=dep_load, dep_store=dep_store, dep_stale=dep_stale,
        )
        prefix._op_names = ops_order
        return prefix

    # -- serialization -------------------------------------------------------

    def to_bytes(self) -> bytes:
        """Versioned, checksummed binary encoding (see module doc)."""
        chunks: List[bytes] = []
        columns: Dict[str, Dict] = {}
        offset = 0
        for column in _INT_COLUMNS:
            data = getattr(self, column, None)
            if data is None:
                continue
            raw = data.tobytes()
            columns[column] = {
                "typecode": "q", "count": len(data), "offset": offset,
            }
            chunks.append(raw)
            offset += len(raw)
        for column in _BYTE_COLUMNS + _MASK_COLUMNS:
            data = getattr(self, column, None)
            if data is None:
                continue
            pad = (-offset) % 8
            if pad:
                chunks.append(b"\0" * pad)
                offset += pad
            columns[column] = {
                "typecode": "B", "count": len(data), "offset": offset,
            }
            chunks.append(bytes(data))
            offset += len(data)
        payload = b"".join(chunks)
        header = {
            "format": COMPILED_FORMAT_VERSION,
            "name": self.name,
            "suite": self.suite,
            "length": self.length,
            "kind": self.kind,
            "budget": self.budget,
            "op_names": [op.name for op in OpClass],
            "byteorder": "little",
            "overflow": self.overflow,
            "columns": columns,
        }
        header_bytes = json.dumps(
            header, sort_keys=True, separators=(",", ":")
        ).encode("utf-8")
        pad = (-(len(_MAGIC) + 8 + len(header_bytes))) % 8
        header_bytes += b" " * pad
        digest = hashlib.sha256(header_bytes + payload).digest()
        return b"".join((
            _MAGIC,
            struct.pack("<II", COMPILED_FORMAT_VERSION, len(header_bytes)),
            header_bytes,
            payload,
            digest,
        ))

    @classmethod
    def from_bytes(cls, blob) -> "CompiledTrace":
        """Decode :meth:`to_bytes` output (accepts any buffer/mmap).

        Raises :class:`TraceFormatError` on any structural problem —
        wrong magic, version skew, truncation, checksum mismatch.
        """
        blob = memoryview(blob)
        if len(blob) < len(_MAGIC) + 8 + 32:
            raise TraceFormatError("truncated compiled trace")
        if bytes(blob[:4]) != _MAGIC:
            raise TraceFormatError("bad magic")
        version, header_len = struct.unpack_from("<II", blob, 4)
        if version != COMPILED_FORMAT_VERSION:
            raise TraceFormatError(
                f"format {version} != {COMPILED_FORMAT_VERSION}"
            )
        body_start = 12 + header_len
        if len(blob) < body_start + 32:
            raise TraceFormatError("truncated compiled trace")
        header_bytes = bytes(blob[12:body_start])
        payload = blob[body_start:-32]
        checksum = hashlib.sha256(header_bytes)
        checksum.update(payload)
        if checksum.digest() != bytes(blob[-32:]):
            raise TraceFormatError("checksum mismatch")
        try:
            header = json.loads(header_bytes)
            columns = header["columns"]
            length = header["length"]
            name = header["name"]
        except (ValueError, KeyError, TypeError) as exc:
            raise TraceFormatError(f"bad header: {exc}") from None

        def int_column(column: str) -> Optional[array]:
            spec = columns.get(column)
            if spec is None:
                return None
            out = array("q")
            start = spec["offset"]
            out.frombytes(payload[start:start + 8 * spec["count"]])
            if len(out) != spec["count"]:
                raise TraceFormatError(f"short column {column}")
            return out

        def byte_column(column: str) -> Optional[bytes]:
            spec = columns.get(column)
            if spec is None:
                return None
            start = spec["offset"]
            raw = bytes(payload[start:start + spec["count"]])
            if len(raw) != spec["count"]:
                raise TraceFormatError(f"short column {column}")
            return raw

        try:
            compiled = cls(
                name=name, suite=header.get("suite"), length=length,
                kind=header.get("kind", "synthetic"),
                budget=header.get("budget"),
                pc=int_column("pc"), op=byte_column("op"),
                dest=int_column("dest"), dest_null=byte_column("dest_null"),
                size=int_column("size"),
                addr=int_column("addr"), addr_null=byte_column("addr_null"),
                value=int_column("value"),
                value_null=byte_column("value_null"),
                taken=byte_column("taken"),
                target=int_column("target"),
                target_null=byte_column("target_null"),
                srcs_off=int_column("srcs_off"),
                srcs_flat=int_column("srcs_flat"),
                overflow=header.get("overflow", {}),
                dep_load=int_column("dep_load"),
                dep_store=int_column("dep_store"),
                dep_stale=byte_column("dep_stale"),
            )
        except (KeyError, TypeError) as exc:
            raise TraceFormatError(f"bad columns: {exc}") from None
        for column in ("pc", "op", "dest", "size", "addr", "value",
                       "taken", "target"):
            data = getattr(compiled, column)
            if data is None or len(data) != length:
                raise TraceFormatError(f"column {column} wrong length")
        if (compiled.srcs_off is None
                or len(compiled.srcs_off) != length + 1):
            raise TraceFormatError("column srcs_off wrong length")
        # Rebuild the OpClass mapping by name so a reordered enum in a
        # future version cannot silently remap opcodes.
        try:
            _op_table(compiled, header["op_names"])
        except KeyError as exc:
            raise TraceFormatError(f"unknown op class {exc}") from None
        compiled._op_names = header["op_names"]
        return compiled


# Per-instance op tables: from_bytes records the file's op-name order;
# compile_trace always uses the current OpClass order.
def _op_table(compiled: CompiledTrace,
              names: Optional[List[str]] = None) -> Tuple[OpClass, ...]:
    if names is None:
        names = getattr(compiled, "_op_names", None)
    if names is None:
        return tuple(OpClass)
    return tuple(OpClass[name] for name in names)


def _op_index(ops: Tuple[OpClass, ...], member: OpClass) -> int:
    return ops.index(member)


def compile_trace(
    trace: Trace,
    dep_info: Optional[Dict[int, DependenceInfo]] = None,
    kind: str = "synthetic",
    budget: Optional[int] = None,
) -> CompiledTrace:
    """Pack *trace* into a :class:`CompiledTrace`.

    The conversion is bit-exact and reversible for every ``DynInst``
    field (including ``None`` encodings and arbitrary-precision ints).
    *dep_info* (a :func:`compute_dependence_info` result) is packed
    alongside when given.
    """
    instructions = trace.instructions
    n = len(instructions)
    op_index = {op: i for i, op in enumerate(OpClass)}
    overflow: Dict[str, Dict[str, int]] = {}

    pcs: List[int] = []
    ops = bytearray(n)
    dests: List[int] = []
    dest_null: List[bool] = []
    sizes: List[int] = []
    addrs: List[int] = []
    addr_null: List[bool] = []
    values: List[int] = []
    value_null: List[bool] = []
    takens = bytearray(n)
    targets: List[int] = []
    target_null: List[bool] = []
    srcs_off: List[int] = [0]
    srcs_flat: List[int] = []

    for i, inst in enumerate(instructions):
        pcs.append(inst.pc)
        ops[i] = op_index[inst.op]
        dest = inst.dest
        dest_null.append(dest is None)
        dests.append(0 if dest is None else dest)
        sizes.append(inst.size)
        addr = inst.addr
        addr_null.append(addr is None)
        addrs.append(0 if addr is None else addr)
        value = inst.value
        value_null.append(value is None)
        values.append(0 if value is None else value)
        taken = inst.taken
        if taken is None:
            takens[i] = 0
        elif taken is True:
            takens[i] = 2
        elif taken is False:
            takens[i] = 1
        else:
            raise TraceCompileError(
                f"seq {i}: taken={taken!r} is not a bool or None"
            )
        target = inst.target
        target_null.append(target is None)
        targets.append(0 if target is None else target)
        srcs_flat.extend(inst.srcs)
        srcs_off.append(len(srcs_flat))

    compiled = CompiledTrace(
        name=trace.name, suite=trace.suite, length=n,
        kind=kind, budget=budget,
        pc=_pack_ints(pcs, overflow, "pc"),
        op=bytes(ops),
        dest=_pack_ints(dests, overflow, "dest"),
        dest_null=_pack_mask(dest_null),
        size=_pack_ints(sizes, overflow, "size"),
        addr=_pack_ints(addrs, overflow, "addr"),
        addr_null=_pack_mask(addr_null),
        value=_pack_ints(values, overflow, "value"),
        value_null=_pack_mask(value_null),
        taken=bytes(takens),
        target=_pack_ints(targets, overflow, "target"),
        target_null=_pack_mask(target_null),
        srcs_off=_pack_ints(srcs_off, overflow, "srcs_off"),
        srcs_flat=_pack_ints(srcs_flat, overflow, "srcs_flat"),
        overflow=overflow,
    )
    if dep_info is not None:
        compiled.attach_dependences(dep_info)
    return compiled
