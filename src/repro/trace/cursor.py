"""A rewindable cursor over a trace.

The fetch stage pulls instructions through a cursor. Squash invalidation
rewinds the cursor to the miss-speculated instruction so everything after
it is re-dispatched (Section 2: "invalidating and re-executing all
instructions following the miss-speculated load").
"""

from __future__ import annotations

from typing import Optional

from repro.isa.instruction import DynInst
from repro.trace.events import Trace


class TraceCursor:
    """Sequential view over a (sub-)range of a trace.

    Accepts a :class:`Trace` or anything exposing an ``instructions``
    list (e.g. :class:`~repro.trace.compiled.CompiledTrace`, which
    materializes it lazily on first access). The list is bound once at
    construction so the fetch hot loop indexes it directly.
    """

    def __init__(self, trace: Trace, start: int = 0,
                 stop: Optional[int] = None) -> None:
        self._trace = trace
        self._instructions = trace.instructions
        if stop is None:
            stop = len(self._instructions)
        if not 0 <= start <= stop <= len(self._instructions):
            raise ValueError("cursor range out of bounds")
        self._start = start
        self._stop = stop
        self._pos = start

    @property
    def position(self) -> int:
        """Sequence number of the next instruction to be fetched."""
        return self._pos

    @property
    def start(self) -> int:
        return self._start

    @property
    def stop(self) -> int:
        return self._stop

    @property
    def exhausted(self) -> bool:
        return self._pos >= self._stop

    def peek(self, offset: int = 0) -> Optional[DynInst]:
        """Instruction *offset* past the cursor, or None past the end."""
        index = self._pos + offset
        if index >= self._stop:
            return None
        return self._instructions[index]

    def advance(self) -> DynInst:
        """Consume and return the next instruction."""
        if self.exhausted:
            raise StopIteration("trace cursor exhausted")
        inst = self._instructions[self._pos]
        self._pos += 1
        return inst

    def rewind_to(self, seq: int) -> None:
        """Move the cursor back so *seq* is the next instruction fetched."""
        if not self._start <= seq <= self._pos:
            raise ValueError(
                f"cannot rewind to {seq} (cursor at {self._pos}, "
                f"range starts at {self._start})"
            )
        self._pos = seq

    def remaining(self) -> int:
        return self._stop - self._pos
