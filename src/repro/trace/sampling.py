"""Trace sampling: alternating timing and functional intervals.

The paper (Section 3.1) simulates an *observation* of 50,000 instructions
in timing mode, then skips ahead in functional mode according to a
per-benchmark "timing:functional" ratio (Table 1's "SR" column), keeping
the I-cache, D-cache and branch predictors warm during functional
intervals. ``make_sampling_plan`` reproduces that structure for our
(much shorter) traces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple


@dataclass(frozen=True)
class Segment:
    """A [start, stop) range of trace sequence numbers."""

    start: int
    stop: int
    timing: bool  # True = detailed timing, False = functional warm-up

    def __post_init__(self) -> None:
        if self.start >= self.stop:
            raise ValueError("segment must be non-empty")

    def __len__(self) -> int:
        return self.stop - self.start


@dataclass(frozen=True)
class SamplingPlan:
    """Ordered, non-overlapping segments covering [0, length)."""

    segments: Tuple[Segment, ...]
    length: int

    def timing_instructions(self) -> int:
        return sum(len(s) for s in self.segments if s.timing)

    def functional_instructions(self) -> int:
        return sum(len(s) for s in self.segments if not s.timing)


def make_sampling_plan(
    length: int,
    timing_ratio: int = 1,
    functional_ratio: int = 0,
    observation: int = 50_000,
) -> SamplingPlan:
    """Build a plan with *timing_ratio* : *functional_ratio* interleaving.

    A ratio of (1, 2) with observation=O produces segments
    ``timing[O], functional[2*O], timing[O], ...`` until the trace is
    covered — the paper's "1:2" sampling. ``functional_ratio=0`` (the
    paper's "N/A") times the entire trace.
    """
    if length < 1:
        raise ValueError("trace length must be positive")
    if timing_ratio < 1 or functional_ratio < 0:
        raise ValueError("ratios must be positive (functional may be 0)")
    if observation < 1:
        raise ValueError("observation size must be positive")

    segments: List[Segment] = []
    pos = 0
    while pos < length:
        timing_stop = min(pos + observation * timing_ratio, length)
        segments.append(Segment(pos, timing_stop, timing=True))
        pos = timing_stop
        if functional_ratio and pos < length:
            func_stop = min(pos + observation * functional_ratio, length)
            segments.append(Segment(pos, func_stop, timing=False))
            pos = func_stop
    return SamplingPlan(tuple(segments), length)


def parse_ratio(text: Optional[str]) -> Tuple[int, int]:
    """Parse a Table 1 "SR" entry: "1:2" -> (1, 2); "N/A"/None -> (1, 0)."""
    if text is None or text.upper() == "N/A":
        return (1, 0)
    left, _, right = text.partition(":")
    return (int(left), int(right))
