"""Persistent on-disk store for compiled traces.

Mirrors the conventions of :mod:`repro.experiments.store` (content
addressing, checksums, atomic writes, quiet failure → regenerate) but
for :class:`~repro.trace.compiled.CompiledTrace` binaries instead of
result records.

Keying exploits how traces are produced:

* A trace is a deterministic function of ``(name, length, seed,
  generator_version)``.
* The synthetic generator is **prefix-stable**: the first *n*
  instructions of a longer run are exactly the *n*-instruction run
  (same profile, same seed). So one file per *series* ``(name, seed,
  generator_version)`` — holding the longest trace generated so far —
  serves every shorter length by slicing columns, dependence map
  included (a load's producing store is always older, so restricting
  the map to loads below *n* is exact).
* A kernel runs on the VM to **natural completion** under an
  instruction *budget* (exceeding it raises). A stored kernel entry of
  natural length *L* serves any request whose budget is ≥ *L* — the
  regenerated trace would be identical — and misses for smaller
  budgets, where regeneration would raise exactly as it does uncached.

File layout: ``root/t{format}/xx/{digest}.rptc`` where *digest* is the
SHA-256 of the canonical series identity and *format* is
:data:`~repro.trace.compiled.COMPILED_FORMAT_VERSION`. Payloads are
read through ``mmap`` and validated end-to-end (magic, version,
trailing SHA-256) by :meth:`CompiledTrace.from_bytes`; any structural
failure unlinks the file and falls through to regeneration, so
corruption can only ever cost a re-generation, never a wrong trace.
"""

from __future__ import annotations

import hashlib
import json
import mmap
import os
import tempfile
from typing import Iterator, Optional, Union

from repro.trace.compiled import (
    COMPILED_FORMAT_VERSION,
    CompiledTrace,
    TraceFormatError,
)

#: Environment variable naming the default trace-store directory.
TRACE_STORE_ENV_VAR = "REPRO_TRACE_STORE"


def default_trace_store_path() -> str:
    """``$REPRO_TRACE_STORE`` or ``~/.cache/repro-traces``."""
    env = os.environ.get(TRACE_STORE_ENV_VAR)
    if env:
        return env
    return os.path.join(
        os.path.expanduser("~"), ".cache", "repro-traces"
    )


class TraceStore:
    """On-disk cache of compiled traces under one root directory."""

    def __init__(self, root: Union[str, os.PathLike]) -> None:
        self.root = os.fspath(root)
        self.hits = 0
        self.prefix_hits = 0
        self.misses = 0
        self.writes = 0
        self.corrupt_dropped = 0
        self.stale_dropped = 0

    # -- keying --------------------------------------------------------------

    def digest(self, name: str, seed: int, generator_version: str) -> str:
        """Content address of one trace *series*.

        Length is deliberately absent: one file per series holds the
        longest trace and serves shorter requests by column slicing.
        """
        identity = [COMPILED_FORMAT_VERSION, name, seed, generator_version]
        return hashlib.sha256(
            json.dumps(identity, sort_keys=True,
                       separators=(",", ":")).encode("utf-8")
        ).hexdigest()

    def _path_for(self, digest: str) -> str:
        return os.path.join(
            self.root, f"t{COMPILED_FORMAT_VERSION}", digest[:2],
            f"{digest}.rptc",
        )

    def path_for(self, name: str, seed: int, generator_version: str) -> str:
        """On-disk path a series would live at (whether or not present)."""
        return self._path_for(self.digest(name, seed, generator_version))

    # -- read ----------------------------------------------------------------

    def load(
        self, name: str, length: int, seed: int, generator_version: str
    ) -> Optional[CompiledTrace]:
        """The stored compiled trace for ``(name, length, seed)``.

        ``None`` on miss, corruption, version skew, or a stored entry
        too short to serve *length* under its kind's semantics.
        """
        path = self._path_for(self.digest(name, seed, generator_version))
        stored = self._read(path)
        if stored is None:
            self.misses += 1
            return None
        if stored.name != name:
            # A digest collision or a file moved by hand; either way
            # the content does not answer this query.
            self._drop(path, corrupt=True)
            self.misses += 1
            return None
        if stored.kind == "kernel":
            # Kernel entries hold a run to natural completion; they
            # serve any budget the run fits in. For smaller budgets
            # regeneration raises ExecutionLimitExceeded, exactly as
            # it would have uncached.
            if length >= stored.length:
                self.hits += 1
                return stored
            self.misses += 1
            return None
        if stored.length == length:
            self.hits += 1
            return stored
        if stored.length > length:
            self.prefix_hits += 1
            return stored.slice_prefix(length)
        # Too short for this request; keep it — it still serves
        # shorter lengths, and save() will replace it with the longer
        # trace the caller is about to generate.
        self.misses += 1
        return None

    def _read(self, path: str) -> Optional[CompiledTrace]:
        """Decode one file via mmap; unlink and None on any failure."""
        try:
            with open(path, "rb") as handle:
                try:
                    view = mmap.mmap(
                        handle.fileno(), 0, access=mmap.ACCESS_READ
                    )
                except ValueError:  # empty file
                    self._drop(path, corrupt=True)
                    return None
        except FileNotFoundError:
            return None
        except OSError:
            return None
        result: Optional[CompiledTrace] = None
        try:
            result = CompiledTrace.from_bytes(view)
        except TraceFormatError:
            # Handled (not re-raised) so the traceback — which pins
            # memoryviews over the mmap — is discarded before close.
            pass
        try:
            view.close()
        except BufferError:
            # A stray exported view; the map is reclaimed when it dies.
            pass
        if result is None:
            self._drop(path, corrupt=True)
        return result

    def _drop(self, path: str, corrupt: bool) -> None:
        if corrupt:
            self.corrupt_dropped += 1
        else:
            self.stale_dropped += 1
        try:
            os.unlink(path)
        except OSError:
            pass

    # -- write ---------------------------------------------------------------

    def save(
        self,
        compiled: CompiledTrace,
        seed: int,
        generator_version: str,
    ) -> Optional[str]:
        """Persist *compiled* as its series' entry.

        Replaces an existing entry only when *compiled* is longer (a
        longer synthetic trace serves strictly more requests; kernel
        lengths never differ within a generator version). Returns the
        entry path, or ``None`` when nothing was written.
        """
        digest = self.digest(compiled.name, seed, generator_version)
        path = self._path_for(digest)
        existing = self._read(path)
        if existing is not None and existing.length >= compiled.length:
            return None
        directory = os.path.dirname(path)
        try:
            os.makedirs(directory, exist_ok=True)
            fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(compiled.to_bytes())
                os.replace(tmp_path, path)
            except BaseException:
                try:
                    os.unlink(tmp_path)
                except OSError:
                    pass
                raise
        except OSError:
            # Unwritable store (read-only CI cache, full disk): the
            # freshly generated trace is still returned to the caller.
            return None
        self.writes += 1
        return path

    # -- maintenance / introspection -----------------------------------------

    def entries(self) -> Iterator[str]:
        """Paths of every trace file currently in the store."""
        base = os.path.join(self.root, f"t{COMPILED_FORMAT_VERSION}")
        if not os.path.isdir(base):
            return
        for shard in sorted(os.listdir(base)):
            shard_dir = os.path.join(base, shard)
            if not os.path.isdir(shard_dir):
                continue
            for name in sorted(os.listdir(shard_dir)):
                if name.endswith(".rptc"):
                    yield os.path.join(shard_dir, name)

    def __len__(self) -> int:
        return sum(1 for _ in self.entries())

    def size_bytes(self) -> int:
        total = 0
        for path in self.entries():
            try:
                total += os.path.getsize(path)
            except OSError:
                pass
        return total

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for path in list(self.entries()):
            try:
                os.unlink(path)
                removed += 1
            except OSError:
                pass
        return removed

    def stats(self) -> dict:
        """Session counters plus on-disk totals."""
        return {
            "path": self.root,
            "format": COMPILED_FORMAT_VERSION,
            "hits": self.hits,
            "prefix_hits": self.prefix_hits,
            "misses": self.misses,
            "writes": self.writes,
            "corrupt_dropped": self.corrupt_dropped,
            "stale_dropped": self.stale_dropped,
            "entries": len(self),
            "size_bytes": self.size_bytes(),
        }


# -- process-wide active store ----------------------------------------------

_active: Optional[TraceStore] = None
_explicitly_disabled = False


def set_trace_store(
    store: Union[TraceStore, str, os.PathLike, None],
) -> Optional[TraceStore]:
    """Install the process-wide trace store (path or instance).

    ``set_trace_store(None)`` disables persistence entirely, including
    the ``$REPRO_TRACE_STORE`` fallback, until the next call. Returns
    the installed store (or ``None``).
    """
    global _active, _explicitly_disabled
    if store is None:
        _active = None
        _explicitly_disabled = True
    elif isinstance(store, TraceStore):
        _active = store
        _explicitly_disabled = False
    else:
        _active = TraceStore(store)
        _explicitly_disabled = False
    return _active


def active_trace_store() -> Optional[TraceStore]:
    """The installed store, else one from ``$REPRO_TRACE_STORE``."""
    global _active
    if _active is None and not _explicitly_disabled:
        env = os.environ.get(TRACE_STORE_ENV_VAR)
        if env:
            _active = TraceStore(env)
    return _active
