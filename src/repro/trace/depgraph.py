"""Dependence-graph export: a trace region as a Graphviz DOT digraph.

Renders both register edges (solid) and true memory dependences
(dashed, red) for a window of the dynamic trace — the picture behind
every argument in the paper: which loads feed which computation, and
which stores they must not bypass.

The DOT text renders with any Graphviz install (``dot -Tsvg``); no
Graphviz dependency is needed to produce it.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.isa.registers import REG_ZERO
from repro.trace.dependences import compute_true_dependences
from repro.trace.events import Trace

_SHAPE = {
    "LOAD": "house",
    "STORE": "invhouse",
    "BRANCH": "diamond",
    "JUMP": "diamond",
    "CALL": "cds",
    "RETURN": "cds",
}


def trace_to_dot(
    trace: Trace,
    start: int = 0,
    stop: Optional[int] = None,
    include_memory_edges: bool = True,
) -> str:
    """DOT digraph of the dependence structure of ``trace[start:stop]``.

    Register edges connect each instruction to the youngest older writer
    of each source register; memory edges connect each load to its
    producing store. Edges from producers outside the region are
    omitted (the nodes are annotated instead).
    """
    if stop is None:
        stop = min(len(trace), start + 64)
    if not 0 <= start < stop <= len(trace):
        raise ValueError("bad trace region")

    lines: List[str] = [
        "digraph trace {",
        "  rankdir=TB;",
        '  node [fontname="monospace" fontsize=10];',
        f'  label="{trace.name} [{start}:{stop})";',
    ]
    last_writer: Dict[int, int] = {}
    in_region = set(range(start, stop))
    # Seed the writer map from instructions before the region so edges
    # from just-outside producers are recognised (and skipped cleanly).
    for inst in trace.slice(max(0, start - 256), start):
        if inst.dest is not None and inst.dest != REG_ZERO:
            last_writer[inst.dest] = inst.seq

    for inst in trace.slice(start, stop):
        shape = _SHAPE.get(inst.op.name, "box")
        extra = ""
        if inst.is_mem:
            extra = f"\\n@{inst.addr:#x}"
        lines.append(
            f'  n{inst.seq} [label="{inst.seq}: {inst.op.name}'
            f'{extra}" shape={shape}];'
        )
        for src in inst.srcs:
            if src == REG_ZERO:
                continue
            producer = last_writer.get(src)
            if producer is not None and producer in in_region:
                lines.append(f"  n{producer} -> n{inst.seq};")
        if inst.dest is not None and inst.dest != REG_ZERO:
            last_writer[inst.dest] = inst.seq

    if include_memory_edges:
        deps = compute_true_dependences(trace)
        for load_seq in range(start, stop):
            store_seq = deps.get(load_seq)
            if store_seq is not None and store_seq in in_region:
                lines.append(
                    f"  n{store_seq} -> n{load_seq} "
                    "[style=dashed color=red constraint=false];"
                )

    lines.append("}")
    return "\n".join(lines)
