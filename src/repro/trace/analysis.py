"""Trace analytics: the measurements used to validate workloads.

Everything here is purely observational — handy when calibrating a
synthetic workload against a target program profile, or when debugging
why a policy behaves unexpectedly on a trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.isa.opcodes import OpClass
from repro.trace.dependences import compute_true_dependences
from repro.trace.events import Trace


@dataclass
class TraceProfile:
    """A full statistical profile of one trace."""

    name: str
    instructions: int
    load_fraction: float
    store_fraction: float
    branch_fraction: float
    fp_fraction: float
    #: Fraction of loads with a true dependence within 128 instructions.
    dependent_load_fraction: float
    #: Histogram of load-to-store dependence distances, bucketed.
    dependence_distance_buckets: Dict[str, int]
    #: Distinct 32-byte blocks touched by data accesses.
    data_working_set_blocks: int
    #: Distinct instruction blocks (static footprint).
    code_working_set_blocks: int
    #: Distinct static PCs per op class.
    static_pcs: Dict[OpClass, int] = field(default_factory=dict)

    def render(self) -> str:
        lines = [
            f"trace profile: {self.name}",
            f"  instructions        {self.instructions:,}",
            f"  loads               {self.load_fraction:.1%}",
            f"  stores              {self.store_fraction:.1%}",
            f"  branches            {self.branch_fraction:.1%}",
            f"  fp compute          {self.fp_fraction:.1%}",
            f"  dependent loads     {self.dependent_load_fraction:.1%}"
            " (producer within 128 instructions)",
            f"  data working set    {self.data_working_set_blocks:,}"
            " blocks (32B)",
            f"  code working set    {self.code_working_set_blocks:,}"
            " blocks (32B)",
            "  dependence distances:",
        ]
        for bucket, count in self.dependence_distance_buckets.items():
            lines.append(f"    {bucket:>8s}  {count}")
        return "\n".join(lines)


_FP_CLASSES = {
    OpClass.FADD, OpClass.FMUL_SP, OpClass.FMUL_DP,
    OpClass.FDIV_SP, OpClass.FDIV_DP,
}

_DISTANCE_BUCKETS: Tuple[Tuple[str, int], ...] = (
    ("<8", 8), ("8-31", 32), ("32-127", 128),
    ("128-511", 512), (">=512", 1 << 62),
)


def profile_trace(trace: Trace, window: int = 128) -> TraceProfile:
    """Compute a :class:`TraceProfile` for *trace*."""
    loads = stores = branches = fp_ops = 0
    data_blocks = set()
    code_blocks = set()
    static_pcs: Dict[OpClass, set] = {}
    for inst in trace:
        code_blocks.add(inst.pc >> 5)
        static_pcs.setdefault(inst.op, set()).add(inst.pc)
        if inst.is_load:
            loads += 1
            data_blocks.add(inst.addr >> 5)
        elif inst.is_store:
            stores += 1
            data_blocks.add(inst.addr >> 5)
        if inst.is_branch:
            branches += 1
        if inst.op in _FP_CLASSES:
            fp_ops += 1

    deps = compute_true_dependences(trace)
    buckets = {label: 0 for label, _ in _DISTANCE_BUCKETS}
    close = 0
    for load_seq, store_seq in deps.items():
        distance = load_seq - store_seq
        if distance <= window:
            close += 1
        for label, limit in _DISTANCE_BUCKETS:
            if distance < limit:
                buckets[label] += 1
                break

    total = len(trace)
    return TraceProfile(
        name=trace.name,
        instructions=total,
        load_fraction=loads / total if total else 0.0,
        store_fraction=stores / total if total else 0.0,
        branch_fraction=branches / total if total else 0.0,
        fp_fraction=fp_ops / total if total else 0.0,
        dependent_load_fraction=close / loads if loads else 0.0,
        dependence_distance_buckets=buckets,
        data_working_set_blocks=len(data_blocks),
        code_working_set_blocks=len(code_blocks),
        static_pcs={op: len(pcs) for op, pcs in static_pcs.items()},
    )


def compare_profiles(
    measured: TraceProfile, target_loads: float, target_stores: float
) -> Dict[str, float]:
    """Absolute calibration error of the headline fractions."""
    return {
        "loads": abs(measured.load_fraction - target_loads),
        "stores": abs(measured.store_fraction - target_stores),
    }
