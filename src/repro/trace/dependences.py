"""True memory-dependence extraction from a trace.

Used by the ORACLE policy (perfect a-priori dependence knowledge), by the
Table 3 false-dependence accounting, and by tests. Dependences are
computed at 4-byte word granularity: a load truly depends on the youngest
older store writing any word the load reads. All workloads in this repo
use word-aligned accesses, so word granularity is exact for them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.trace.events import Trace

_WORD_SHIFT = 2  # 4-byte words


@dataclass(frozen=True)
class DependenceInfo:
    """Full dependence record for one load.

    ``stale_equal`` says whether the value the load would obtain by
    reading memory *before* its producing store writes equals the correct
    value (a silent store) — the case where an address-scheduled machine
    (AS/NAV) need not squash because no wrong value can propagate.
    """

    store_seq: int
    stale_equal: bool


def _words(addr: int, size: int) -> range:
    first = addr >> _WORD_SHIFT
    last = (addr + size - 1) >> _WORD_SHIFT
    return range(first, last + 1)


def compute_true_dependences(trace: Trace) -> Dict[int, int]:
    """Map each load's seq to the seq of the youngest older conflicting store.

    Loads with no older conflicting store in the trace are absent from the
    returned mapping.
    """
    last_store_for_word: Dict[int, int] = {}
    deps: Dict[int, int] = {}
    for inst in trace:
        if inst.is_store:
            for word in _words(inst.addr, inst.size):
                last_store_for_word[word] = inst.seq
        elif inst.is_load:
            youngest: Optional[int] = None
            for word in _words(inst.addr, inst.size):
                store_seq = last_store_for_word.get(word)
                if store_seq is not None and (
                    youngest is None or store_seq > youngest
                ):
                    youngest = store_seq
            if youngest is not None:
                deps[inst.seq] = youngest
    return deps


def compute_dependence_info(trace: Trace) -> Dict[int, DependenceInfo]:
    """Like :func:`compute_true_dependences`, plus stale-value equality.

    While scanning, the pre-write value of every stored word is recorded
    so each dependent load can be tagged with whether a premature read
    would have returned the correct value anyway.
    """
    memory: Dict[int, int] = {}
    last_store_for_word: Dict[int, int] = {}
    pre_write_value: Dict[int, int] = {}  # store seq -> value it replaced
    info: Dict[int, DependenceInfo] = {}
    for inst in trace:
        if inst.is_store:
            word = inst.addr >> _WORD_SHIFT
            pre_write_value[inst.seq] = memory.get(word, 0)
            for w in _words(inst.addr, inst.size):
                last_store_for_word[w] = inst.seq
                memory[w] = inst.value if inst.value is not None else 0
        elif inst.is_load:
            youngest: Optional[int] = None
            for w in _words(inst.addr, inst.size):
                store_seq = last_store_for_word.get(w)
                if store_seq is not None and (
                    youngest is None or store_seq > youngest
                ):
                    youngest = store_seq
            if youngest is not None:
                stale = pre_write_value.get(youngest, 0)
                correct = inst.value if inst.value is not None else 0
                info[inst.seq] = DependenceInfo(
                    store_seq=youngest,
                    stale_equal=(stale == correct),
                )
    return info


def dependence_distance_histogram(trace: Trace) -> Dict[int, int]:
    """Histogram of load-to-producing-store distances (in instructions).

    Useful for checking that a synthetic workload has the in-window
    dependence profile it was calibrated for.
    """
    deps = compute_true_dependences(trace)
    histogram: Dict[int, int] = {}
    for load_seq, store_seq in deps.items():
        distance = load_seq - store_seq
        histogram[distance] = histogram.get(distance, 0) + 1
    return histogram


def loads_with_dependence_within(trace: Trace, window: int) -> float:
    """Fraction of loads whose producing store is within *window* instrs."""
    deps = compute_true_dependences(trace)
    loads = sum(1 for inst in trace if inst.is_load)
    if not loads:
        return 0.0
    close = sum(
        1 for load, store in deps.items() if load - store <= window
    )
    return close / loads


def static_dependence_pairs(trace: Trace) -> Dict[tuple, int]:
    """(load PC, store PC) -> dynamic occurrence count.

    The stability of this mapping is what makes MDPT-style prediction
    (NAS/SYNC) work; tests use it to verify the synthetic workloads give
    predictors something learnable.
    """
    deps = compute_true_dependences(trace)
    pairs: Dict[tuple, int] = {}
    for load_seq, store_seq in deps.items():
        key = (trace[load_seq].pc, trace[store_seq].pc)
        pairs[key] = pairs.get(key, 0) + 1
    return pairs
