"""PC-indexed set-associative predictor table with saturating counters.

Section 3.5: "In both memory dependence speculation schemes we used a 4K,
2-way set associative memory dependence predictor. ... Both predictors use
2-bit saturating counter-based confidence automatons. It takes 3
miss-speculations on a specific load or store before the existence of a
dependence is predicted. All counters are reset every 1 million cycles to
allow adapting back."
"""

from __future__ import annotations

from typing import List, Optional


class TwoBitPredictorTable:
    """Set-associative table of (pc tag -> 2-bit counter), LRU replaced."""

    def __init__(
        self,
        entries: int = 4096,
        assoc: int = 2,
        threshold: int = 3,
        counter_max: int = 3,
    ) -> None:
        if entries % assoc:
            raise ValueError("entries must divide by associativity")
        sets = entries // assoc
        if sets & (sets - 1):
            raise ValueError("set count must be a power of two")
        if not 0 < threshold <= counter_max:
            raise ValueError("threshold must be within counter range")
        self._sets = sets
        self._assoc = assoc
        self._threshold = threshold
        self._counter_max = counter_max
        # Each set: list of [tag, counter] in LRU order (front = MRU).
        self._table: List[List[List[int]]] = [[] for _ in range(sets)]
        self.allocations = 0
        self.evictions = 0

    def _set_of(self, pc: int) -> int:
        return (pc >> 2) & (self._sets - 1)

    def _find(self, pc: int) -> Optional[List[int]]:
        ways = self._table[self._set_of(pc)]
        tag = pc >> 2
        for i, way in enumerate(ways):
            if way[0] == tag:
                if i:
                    ways.insert(0, ways.pop(i))
                return way
        return None

    def predicts_dependence(self, pc: int) -> bool:
        """True if *pc*'s counter has reached the confidence threshold."""
        way = self._find(pc)
        return way is not None and way[1] >= self._threshold

    def record_misspeculation(self, pc: int) -> None:
        """Strengthen the dependence prediction for *pc*."""
        way = self._find(pc)
        if way is None:
            ways = self._table[self._set_of(pc)]
            ways.insert(0, [pc >> 2, 1])
            self.allocations += 1
            if len(ways) > self._assoc:
                ways.pop()
                self.evictions += 1
        elif way[1] < self._counter_max:
            way[1] += 1

    def record_good_speculation(self, pc: int) -> None:
        """Weaken the prediction for *pc* (not used by the paper's
        configuration, which adapts back only via periodic resets, but
        exposed for ablations)."""
        way = self._find(pc)
        if way is not None and way[1] > 0:
            way[1] -= 1

    def flush(self) -> None:
        """Reset every counter (the paper's periodic adaptation)."""
        for ways in self._table:
            ways.clear()

    def occupancy(self) -> int:
        return sum(len(ways) for ways in self._table)
