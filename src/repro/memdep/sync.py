"""Memory dependence prediction table (MDPT) with synonym indirection.

Section 3.6: "a 4K, 2-way set associative MDPT in which separate entries
are allocated for stores and loads. Dependences are represented using
synonyms, i.e., a level of indirection. No confidence mechanism is
associated with each MDPT entry; once an entry is allocated,
synchronization is always enforced. However, we flush the MDPT every one
million cycles to reduce the frequency of false dependences."

A miss-speculation between (load PC, store PC) allocates both sides with
a common *synonym*. At dispatch, a store whose PC hits marks itself the
producer of its synonym; a load whose PC hits waits on the closest older
in-window producer of the same synonym and may issue one cycle after that
store issues.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional


@dataclass(frozen=True)
class SynchronizationPrediction:
    """What the MDPT says about a dispatching load or store."""

    synonym: int


class _Side:
    """One set-associative side (loads or stores) mapping pc -> synonym."""

    def __init__(self, entries: int, assoc: int) -> None:
        sets = entries // assoc
        if sets & (sets - 1):
            raise ValueError("set count must be a power of two")
        self._sets = sets
        self._assoc = assoc
        self._table: List[List[List[int]]] = [[] for _ in range(sets)]

    def lookup(self, pc: int) -> Optional[int]:
        ways = self._table[(pc >> 2) & (self._sets - 1)]
        tag = pc >> 2
        for i, way in enumerate(ways):
            if way[0] == tag:
                if i:
                    ways.insert(0, ways.pop(i))
                return way[1]
        return None

    def insert(self, pc: int, synonym: int) -> None:
        ways = self._table[(pc >> 2) & (self._sets - 1)]
        tag = pc >> 2
        for i, way in enumerate(ways):
            if way[0] == tag:
                way[1] = synonym
                if i:
                    ways.insert(0, ways.pop(i))
                return
        ways.insert(0, [tag, synonym])
        if len(ways) > self._assoc:
            ways.pop()

    def flush(self) -> None:
        for ways in self._table:
            ways.clear()

    def occupancy(self) -> int:
        return sum(len(ways) for ways in self._table)


class MDPT:
    """The speculation/synchronization predictor (load and store sides)."""

    def __init__(self, entries: int = 4096, assoc: int = 2) -> None:
        # Separate entries for loads and stores: split the capacity.
        self._loads = _Side(entries // 2, assoc)
        self._stores = _Side(entries // 2, assoc)
        self._next_synonym = 1
        self.allocated_pairs = 0

    def record_violation(self, load_pc: int, store_pc: int) -> int:
        """Allocate (or re-link) entries for a miss-speculated pair.

        If either side already has a synonym, reuse it so several static
        stores can feed one load (and vice versa); otherwise mint a fresh
        synonym. Returns the synonym used.
        """
        existing = self._loads.lookup(load_pc)
        if existing is None:
            existing = self._stores.lookup(store_pc)
        if existing is None:
            existing = self._next_synonym
            self._next_synonym += 1
            self.allocated_pairs += 1
        self._loads.insert(load_pc, existing)
        self._stores.insert(store_pc, existing)
        return existing

    def predict_load(self, pc: int) -> Optional[SynchronizationPrediction]:
        """Synchronization prediction for a dispatching load, if any."""
        synonym = self._loads.lookup(pc)
        if synonym is None:
            return None
        return SynchronizationPrediction(synonym)

    def predict_store(self, pc: int) -> Optional[SynchronizationPrediction]:
        """Synchronization prediction for a dispatching store, if any."""
        synonym = self._stores.lookup(pc)
        if synonym is None:
            return None
        return SynchronizationPrediction(synonym)

    def flush(self) -> None:
        """Periodic flush (reduces false synchronization)."""
        self._loads.flush()
        self._stores.flush()

    def occupancy(self) -> int:
        return self._loads.occupancy() + self._stores.occupancy()
