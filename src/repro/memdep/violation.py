"""Memory dependence violation detection.

Section 3.3: "All speculative load accesses are recorded in a separate
structure, so that preceding stores can detect whether a true memory
dependence was violated by a speculatively issued load."

Implementation note: a hardware detector compares addresses
associatively. Because the simulator is trace-driven it already knows
each load's producing store (the youngest older conflicting one), so the
detector indexes speculative loads *by that store* — an exact-output
shortcut for the associative search: a load read prematurely if and only
if it read at or before the cycle its producing store wrote (any older
conflicting store's write is, by youngest-ness, no later a correct value
than the producing store's).
"""

from __future__ import annotations

from typing import Dict, List


class ViolationDetector:
    """Speculative-load table, indexed by producing store seq."""

    def __init__(self) -> None:
        self._by_store: Dict[int, List] = {}
        self.registered = 0

    def register_load(self, load_entry, store_seq: int) -> None:
        """Record a dependent load entering the window."""
        self._by_store.setdefault(store_seq, []).append(load_entry)
        self.registered += 1

    def loads_violating(self, store_seq: int, write_cycle: int) -> List:
        """Dependent loads that read memory at or before *write_cycle*.

        Loads that have not accessed memory yet, were squashed, or read
        after the store's write are not violations.
        """
        violators = []
        for load in self._by_store.get(store_seq, ()):
            if load.squashed:
                continue
            if load.mem_issue_cycle is None:
                continue
            if load.mem_issue_cycle <= write_cycle:
                violators.append(load)
        return violators

    def dependent_loads(self, store_seq: int) -> List:
        """All live dependent loads registered against *store_seq*."""
        return [
            load for load in self._by_store.get(store_seq, ())
            if not load.squashed
        ]

    def squash(self, from_seq: int) -> None:
        """Drop records of loads with seq >= *from_seq*."""
        for store_seq, loads in list(self._by_store.items()):
            kept = [ld for ld in loads if ld.seq < from_seq]
            if kept:
                self._by_store[store_seq] = kept
            else:
                del self._by_store[store_seq]

    def retire_store(self, store_seq: int) -> None:
        """A store committed; its record is no longer needed."""
        self._by_store.pop(store_seq, None)
