"""Memory dependence speculation machinery — the paper's contribution.

This package provides the predictors and bookkeeping the core consults
when deciding whether a load may access memory:

* :class:`TwoBitPredictorTable` — the 4K 2-way PC-indexed confidence
  table used by selective (NAS/SEL) and store-barrier (NAS/STORE)
  speculation;
* :class:`MDPT` — the memory dependence prediction table with synonym
  indirection used by speculation/synchronization (NAS/SYNC);
* :class:`OracleDisambiguator` — perfect a-priori dependence knowledge
  (NAS/ORACLE), built from the trace;
* :class:`AddressScheduler` — posted-address tracking for the AS models,
  with configurable extra latency;
* :class:`ViolationDetector` — the speculative-load table stores check
  when they write.
"""

from repro.memdep.tables import TwoBitPredictorTable
from repro.memdep.sync import MDPT, SynchronizationPrediction
from repro.memdep.oracle import OracleDisambiguator
from repro.memdep.addr_scheduler import AddressScheduler
from repro.memdep.violation import ViolationDetector

__all__ = [
    "TwoBitPredictorTable",
    "MDPT",
    "SynchronizationPrediction",
    "OracleDisambiguator",
    "AddressScheduler",
    "ViolationDetector",
]
