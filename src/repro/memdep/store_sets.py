"""Store-set memory dependence predictor (Chrysos & Emer, ISCA 1998).

The paper's reference [4] and the mechanism that later became standard
in real processors. Implemented here as an *extension* policy so it can
be compared head-to-head with the paper's speculation/synchronization
(MDPT + synonyms) scheme:

* **SSIT** (store-set identifier table): PC-indexed, maps loads *and*
  stores to a store-set ID (SSID).
* **LFST** (last fetched store table): SSID-indexed, tracks the most
  recently dispatched store instance of each set.

On a miss-speculation the load and store are assigned to a common set
(merging rules below). At dispatch a store looks up its SSID, replaces
the LFST entry, and — when the set already had a live store — inherits
an ordering dependence on it (store-to-store ordering within a set). A
load looks up its SSID and waits for the LFST's store instance.

Merging on violation, per the original paper's "simplified merge":
* neither has a set -> allocate a fresh SSID for both;
* one has a set -> the other joins it;
* both have sets -> the store moves to the load's set.
"""

from __future__ import annotations

from typing import List, Optional


class StoreSetPredictor:
    """SSIT + LFST. Window-entry bookkeeping stays in the core."""

    def __init__(self, ssit_entries: int = 4096,
                 lfst_entries: int = 256) -> None:
        if ssit_entries & (ssit_entries - 1):
            raise ValueError("SSIT entries must be a power of two")
        if lfst_entries & (lfst_entries - 1):
            raise ValueError("LFST entries must be a power of two")
        self._ssit_mask = ssit_entries - 1
        self._lfst_mask = lfst_entries - 1
        #: SSIT: pc-index -> SSID or None. Loads and stores share it
        #: (the original design tags by PC, unified).
        self._ssit: List[Optional[int]] = [None] * ssit_entries
        #: LFST: SSID -> window entry of the last fetched store.
        self._lfst: List = [None] * lfst_entries
        self._next_ssid = 0
        self.merges = 0
        self.allocations = 0

    def _index(self, pc: int) -> int:
        return (pc >> 2) & self._ssit_mask

    def _ssid_slot(self, ssid: int) -> int:
        return ssid & self._lfst_mask

    # -- prediction --------------------------------------------------------

    def ssid_of(self, pc: int) -> Optional[int]:
        return self._ssit[self._index(pc)]

    def store_dispatched(self, entry) -> Optional[object]:
        """A store entered the window. Returns the previous last-fetched
        store of its set (ordering dependence), or None."""
        ssid = self.ssid_of(entry.inst.pc)
        if ssid is None:
            return None
        slot = self._ssid_slot(ssid)
        previous = self._lfst[slot]
        self._lfst[slot] = entry
        if previous is not None and previous.squashed:
            previous = None
        return previous

    def load_dispatched(self, entry) -> Optional[object]:
        """A load entered the window. Returns the store instance it must
        wait for (the set's last fetched store), or None."""
        ssid = self.ssid_of(entry.inst.pc)
        if ssid is None:
            return None
        store = self._lfst[self._ssid_slot(ssid)]
        if store is None or store.squashed or store.seq >= entry.seq:
            return None
        return store

    def store_retired(self, entry) -> None:
        """Invalidate the LFST slot if it still names *entry*."""
        ssid = self.ssid_of(entry.inst.pc)
        if ssid is None:
            return
        slot = self._ssid_slot(ssid)
        if self._lfst[slot] is entry:
            self._lfst[slot] = None

    def squash(self, from_seq: int) -> None:
        for slot, store in enumerate(self._lfst):
            if store is not None and (
                store.squashed or store.seq >= from_seq
            ):
                self._lfst[slot] = None

    # -- training ------------------------------------------------------------

    def record_violation(self, load_pc: int, store_pc: int) -> int:
        """Assign the pair to a common store set; returns the SSID."""
        load_idx = self._index(load_pc)
        store_idx = self._index(store_pc)
        load_ssid = self._ssit[load_idx]
        store_ssid = self._ssit[store_idx]
        if load_ssid is None and store_ssid is None:
            ssid = self._next_ssid
            self._next_ssid += 1
            self.allocations += 1
        elif load_ssid is None:
            ssid = store_ssid
            self.merges += 1
        else:
            # Load keeps its set; the store joins it (simplified merge).
            ssid = load_ssid
            self.merges += 1
        self._ssit[load_idx] = ssid
        self._ssit[store_idx] = ssid
        return ssid

    def flush(self) -> None:
        """Periodic invalidation (cyclic clearing in the original)."""
        for i in range(len(self._ssit)):
            self._ssit[i] = None
        for i in range(len(self._lfst)):
            self._lfst[i] = None

    def occupancy(self) -> int:
        return sum(1 for s in self._ssit if s is not None)
