"""Address-based load/store scheduler (the AS configurations).

Stores post their addresses as soon as their base register is available;
loads, before accessing memory, search the posted addresses of older
in-window stores. The scheduler's latency parameter (0, 1 or 2 cycles —
Figure 3's sweep) delays every search and post, modelling the cost of a
real associative structure.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Optional


class _PostedStore:
    __slots__ = ("seq", "addr", "size", "posted_cycle", "entry")

    def __init__(self, seq: int, addr: int, size: int,
                 posted_cycle: int, entry) -> None:
        self.seq = seq
        self.addr = addr
        self.size = size
        self.posted_cycle = posted_cycle
        self.entry = entry


class AddressScheduler:
    """Posted-address bookkeeping for in-window stores."""

    def __init__(self, latency: int = 0) -> None:
        if latency < 0:
            raise ValueError("latency must be non-negative")
        self.latency = latency
        #: Store seqs dispatched but whose address is not yet posted,
        #: kept sorted (dispatch is in program order; squash truncates).
        self._unposted: List[int] = []
        #: seq -> posted record, for posted in-window stores.
        self._posted: Dict[int, _PostedStore] = {}
        #: Posted seqs kept sorted for youngest-older-match searches.
        self._posted_seqs: List[int] = []
        self.posts = 0
        self.searches = 0

    # -- store lifecycle -----------------------------------------------------

    def on_store_dispatch(self, seq: int) -> None:
        """A store entered the window; its address is not yet known."""
        if self._unposted and seq <= self._unposted[-1]:
            raise ValueError("stores must dispatch in program order")
        self._unposted.append(seq)

    def post_address(self, entry, cycle: int) -> int:
        """Post a store's computed address; returns its visibility cycle."""
        seq = entry.seq
        index = bisect.bisect_left(self._unposted, seq)
        if index < len(self._unposted) and self._unposted[index] == seq:
            self._unposted.pop(index)
        visible = cycle + self.latency
        record = _PostedStore(
            seq, entry.inst.addr, entry.inst.size, visible, entry
        )
        self._posted[seq] = record
        bisect.insort(self._posted_seqs, seq)
        self.posts += 1
        return visible

    def remove_store(self, seq: int) -> None:
        """A store left the window (commit)."""
        if seq in self._posted:
            del self._posted[seq]
            index = bisect.bisect_left(self._posted_seqs, seq)
            if (index < len(self._posted_seqs)
                    and self._posted_seqs[index] == seq):
                self._posted_seqs.pop(index)

    def squash(self, from_seq: int) -> None:
        """Drop every store with seq >= *from_seq*."""
        cut = bisect.bisect_left(self._unposted, from_seq)
        del self._unposted[cut:]
        cut = bisect.bisect_left(self._posted_seqs, from_seq)
        for seq in self._posted_seqs[cut:]:
            del self._posted[seq]
        del self._posted_seqs[cut:]

    # -- load-side queries -----------------------------------------------------

    def all_older_posted(self, seq: int, cycle: int) -> bool:
        """True when every older store's address is visible at *cycle*."""
        if self._unposted and self._unposted[0] < seq:
            return False
        # Posted but not yet visible (scheduler latency) also blocks.
        for older_seq in self._posted_seqs:
            if older_seq >= seq:
                break
            if self._posted[older_seq].posted_cycle > cycle:
                return False
        return True

    def youngest_older_match(
        self, seq: int, addr: int, size: int, cycle: int
    ):
        """Youngest older *visible* posted store overlapping the access.

        Returns the store's window entry, or None.
        """
        self.searches += 1
        index = bisect.bisect_left(self._posted_seqs, seq)
        for i in range(index - 1, -1, -1):
            record = self._posted[self._posted_seqs[i]]
            if record.posted_cycle > cycle:
                continue
            if record.addr < addr + size and addr < record.addr + record.size:
                return record.entry
        return None

    def oldest_unposted(self) -> Optional[int]:
        return self._unposted[0] if self._unposted else None
