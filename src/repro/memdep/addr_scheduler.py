"""Address-based load/store scheduler (the AS configurations).

Stores post their addresses as soon as their base register is available;
loads, before accessing memory, search the posted addresses of older
in-window stores. The scheduler's latency parameter (0, 1 or 2 cycles —
Figure 3's sweep) delays every search and post, modelling the cost of a
real associative structure.
"""

from __future__ import annotations

import bisect
from typing import List, Optional


class _PostedStore:
    __slots__ = ("seq", "addr", "size", "posted_cycle", "entry")

    def __init__(self, seq: int, addr: int, size: int,
                 posted_cycle: int, entry) -> None:
        self.seq = seq
        self.addr = addr
        self.size = size
        self.posted_cycle = posted_cycle
        self.entry = entry


class AddressScheduler:
    """Posted-address bookkeeping for in-window stores."""

    def __init__(self, latency: int = 0, observer=None) -> None:
        if latency < 0:
            raise ValueError("latency must be non-negative")
        self.latency = latency
        #: Optional observability bus (repro.observe): post counts and
        #: posted-record occupancy high-water.
        self.observer = observer
        #: Store seqs dispatched but whose address is not yet posted,
        #: kept sorted (dispatch is in program order; squash truncates).
        self._unposted: List[int] = []
        #: Posted records, seq-sorted, with a parallel seq list so the
        #: per-load queries bisect and scan without dict lookups.
        self._posted_seqs: List[int] = []
        self._records: List[_PostedStore] = []
        #: Count of posted stores covering each 8-byte block. Most load
        #: searches find no overlapping store; this filter answers those
        #: in O(1) (block-granular: a hit only means "scan to be sure").
        self._blocks: dict = {}
        #: Upper bound on every record's ``posted_cycle``. May be stale
        #: high after removals — that only disables a fast path, never
        #: a correct answer.
        self._max_visible = -1
        self.posts = 0
        self.searches = 0

    # -- store lifecycle -----------------------------------------------------

    def on_store_dispatch(self, seq: int) -> None:
        """A store entered the window; its address is not yet known."""
        if self._unposted and seq <= self._unposted[-1]:
            raise ValueError("stores must dispatch in program order")
        self._unposted.append(seq)

    def post_address(self, entry, cycle: int) -> int:
        """Post a store's computed address; returns its visibility cycle."""
        seq = entry.seq
        index = bisect.bisect_left(self._unposted, seq)
        if index < len(self._unposted) and self._unposted[index] == seq:
            self._unposted.pop(index)
        visible = cycle + self.latency
        addr = entry.inst.addr
        size = entry.inst.size
        record = _PostedStore(seq, addr, size, visible, entry)
        index = bisect.bisect_left(self._posted_seqs, seq)
        self._posted_seqs.insert(index, seq)
        self._records.insert(index, record)
        blocks = self._blocks
        for block in range(addr >> 3, ((addr + size - 1) >> 3) + 1):
            blocks[block] = blocks.get(block, 0) + 1
        if visible > self._max_visible:
            self._max_visible = visible
        self.posts += 1
        if self.observer is not None:
            self.observer.note("addr-sched.post")
            self.observer.note_depth("addr-sched", len(self._records))
        return visible

    def _uncover(self, record: _PostedStore) -> None:
        blocks = self._blocks
        for block in range(
            record.addr >> 3, ((record.addr + record.size - 1) >> 3) + 1
        ):
            count = blocks[block] - 1
            if count:
                blocks[block] = count
            else:
                del blocks[block]

    def remove_store(self, seq: int) -> None:
        """A store left the window (commit)."""
        seqs = self._posted_seqs
        index = bisect.bisect_left(seqs, seq)
        if index < len(seqs) and seqs[index] == seq:
            self._uncover(self._records[index])
            del seqs[index]
            del self._records[index]

    def squash(self, from_seq: int) -> None:
        """Drop every store with seq >= *from_seq*."""
        cut = bisect.bisect_left(self._unposted, from_seq)
        del self._unposted[cut:]
        cut = bisect.bisect_left(self._posted_seqs, from_seq)
        for record in self._records[cut:]:
            self._uncover(record)
        del self._posted_seqs[cut:]
        del self._records[cut:]

    # -- load-side queries -----------------------------------------------------

    def all_older_posted(self, seq: int, cycle: int) -> bool:
        """True when every older store's address is visible at *cycle*."""
        if self._unposted and self._unposted[0] < seq:
            return False
        # Posted but not yet visible (scheduler latency) also blocks.
        # Visibility lags a post by at most a few cycles, so the bound
        # check answers almost every query without the scan.
        if self._max_visible <= cycle:
            return True
        for record in self._records:
            if record.seq >= seq:
                break
            if record.posted_cycle > cycle:
                return False
        return True

    def youngest_older_match(
        self, seq: int, addr: int, size: int, cycle: int
    ):
        """Youngest older *visible* posted store overlapping the access.

        Returns the store's window entry, or None.
        """
        self.searches += 1
        blocks = self._blocks
        end = addr + size
        for block in range(addr >> 3, ((end - 1) >> 3) + 1):
            if block in blocks:
                break
        else:
            return None
        records = self._records
        for i in range(bisect.bisect_left(self._posted_seqs, seq) - 1,
                       -1, -1):
            record = records[i]
            if record.posted_cycle > cycle:
                continue
            if record.addr < end and addr < record.addr + record.size:
                return record.entry
        return None

    def oldest_unposted(self) -> Optional[int]:
        return self._unposted[0] if self._unposted else None
