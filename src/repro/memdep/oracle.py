"""Oracle disambiguation: perfect a-priori memory dependence knowledge.

Section 3.2's NAS/ORACLE configuration "identifies load-store dependences
as soon as instructions are entered into the instruction window". Being
trace-driven, we extract exactly that information from the trace itself.

Note the paper's caveat (Section 3.4.1): the oracle still makes stores
wait for both address and data operands before issuing, so a dependent
load observes the store's address-calculation latency — which is why a
0-cycle address-based scheduler occasionally beats the "oracle".
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.trace.dependences import DependenceInfo, compute_dependence_info
from repro.trace.events import Trace


class OracleDisambiguator:
    """O(1) queries over a trace's true memory dependences."""

    def __init__(self, trace: Trace,
                 info: Optional[Dict[int, DependenceInfo]] = None) -> None:
        self._info = (
            info if info is not None else compute_dependence_info(trace)
        )

    def producing_store(self, load_seq: int) -> Optional[int]:
        """Seq of the youngest older conflicting store, or None."""
        record = self._info.get(load_seq)
        return record.store_seq if record else None

    def stale_equal(self, load_seq: int) -> bool:
        """True if a premature read returns the correct value anyway."""
        record = self._info.get(load_seq)
        return record.stale_equal if record else True

    def has_dependence(self, load_seq: int) -> bool:
        return load_seq in self._info

    def dependent_load_count(self) -> int:
        return len(self._info)
