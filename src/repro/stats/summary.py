"""Aggregate statistics across benchmarks."""

from __future__ import annotations

import math
from typing import Dict, Iterable, Mapping, Sequence, Tuple

from repro.core.result import SimResult


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean (the conventional mean for speedup ratios)."""
    values = list(values)
    if not values:
        raise ValueError("geometric mean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def average_speedup(
    results: Mapping[str, SimResult], baselines: Mapping[str, SimResult]
) -> float:
    """Geometric-mean speedup of *results* over *baselines* (same keys)."""
    ratios = [
        results[name].ipc / baselines[name].ipc for name in results
    ]
    return geometric_mean(ratios)


def mean_and_spread(values: Sequence[float]) -> Tuple[float, float]:
    """Arithmetic mean and sample standard deviation.

    Used for multi-seed runs: report IPC as mean ± spread. A single
    sample has zero spread by convention.
    """
    values = list(values)
    if not values:
        raise ValueError("no samples")
    mean = sum(values) / len(values)
    if len(values) == 1:
        return mean, 0.0
    variance = sum((v - mean) ** 2 for v in values) / (len(values) - 1)
    return mean, math.sqrt(variance)


def percentile(values: Sequence[float], fraction: float) -> float:
    """Linear-interpolated percentile of *values*.

    *fraction* is in ``[0, 1]`` (0.5 = median). Used by the experiment
    telemetry summaries for shard wall-time distributions.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be within [0, 1]")
    ordered = sorted(values)
    if not ordered:
        raise ValueError("no samples")
    if len(ordered) == 1:
        return ordered[0]
    rank = fraction * (len(ordered) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return ordered[low]
    weight = rank - low
    return ordered[low] * (1.0 - weight) + ordered[high] * weight


def suite_speedups(
    results: Mapping[str, SimResult],
    baselines: Mapping[str, SimResult],
    suites: Mapping[str, str],
) -> Dict[str, float]:
    """Per-suite ('int'/'fp') geometric-mean speedups."""
    by_suite: Dict[str, list] = {}
    for name, result in results.items():
        suite = suites.get(name, "all")
        by_suite.setdefault(suite, []).append(
            result.ipc / baselines[name].ipc
        )
    return {
        suite: geometric_mean(ratios)
        for suite, ratios in by_suite.items()
    }
