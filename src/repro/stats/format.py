"""Plain-text table rendering for the experiment harness."""

from __future__ import annotations

from typing import List, Sequence


def format_percent(value: float, digits: int = 1) -> str:
    """0.0731 -> '7.3%'."""
    return f"{value * 100:.{digits}f}%"


def format_ratio(value: float, digits: int = 2) -> str:
    """1.197 -> '1.20x'."""
    return f"{value:.{digits}f}x"


def render_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Render an aligned monospace table."""
    cells: List[List[str]] = [[str(h) for h in headers]]
    for row in rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        cells.append([str(c) for c in row])
    widths = [
        max(len(row[col]) for row in cells)
        for col in range(len(headers))
    ]
    lines = []
    for i, row in enumerate(cells):
        line = "  ".join(
            cell.ljust(width) if col == 0 else cell.rjust(width)
            for col, (cell, width) in enumerate(zip(row, widths))
        )
        lines.append(line.rstrip())
        if i == 0:
            lines.append("-" * len(lines[0]))
    return "\n".join(lines)
