"""Statistics helpers: aggregation, geometric means, table rendering."""

from repro.stats.summary import (
    geometric_mean,
    average_speedup,
    mean_and_spread,
    percentile,
    suite_speedups,
)
from repro.stats.format import render_table, format_percent, format_ratio
from repro.stats.bars import render_bars

__all__ = [
    "geometric_mean",
    "average_speedup",
    "mean_and_spread",
    "percentile",
    "suite_speedups",
    "render_table",
    "format_percent",
    "format_ratio",
    "render_bars",
]
