"""ASCII bar charts — textual renderings of the paper's figures."""

from __future__ import annotations

from typing import Mapping, Optional


def render_bars(
    values: Mapping[str, float],
    width: int = 48,
    unit: str = "",
    baseline: Optional[float] = None,
    fmt: str = "{:.2f}",
) -> str:
    """Horizontal bar chart of label -> value.

    With *baseline*, bars are drawn from the baseline (values below it
    extend left with ``-`` marks; above with ``#``) — useful for
    relative-speedup figures whose bars straddle 1.0.
    """
    if not values:
        raise ValueError("nothing to plot")
    label_width = max(len(label) for label in values)
    lines = []
    if baseline is None:
        peak = max(values.values()) or 1.0
        for label, value in values.items():
            bar = "#" * max(1 if value > 0 else 0,
                            round(width * value / peak))
            lines.append(
                f"{label.ljust(label_width)} |{bar.ljust(width)}| "
                f"{fmt.format(value)}{unit}"
            )
        return "\n".join(lines)

    spread = max(
        abs(value - baseline) for value in values.values()
    ) or 1.0
    half = width // 2
    for label, value in values.items():
        magnitude = round(half * abs(value - baseline) / spread)
        if value >= baseline:
            bar = " " * half + "#" * magnitude
        else:
            bar = " " * (half - magnitude) + "-" * magnitude
        lines.append(
            f"{label.ljust(label_width)} |{bar.ljust(width)}| "
            f"{fmt.format(value)}{unit}"
        )
    return "\n".join(lines)
