"""Cost-aware admission scheduling for the experiment service.

Every job gets a **cost estimate** — seconds of simulation, derived
from its trace length and cell count and calibrated against the
committed KIPS baselines (``benchmarks/BENCH_core.json`` /
``BENCH_vector.json``) — and an **effective priority**::

    effective(job, now) = priority
                        + aging_rate * (now - enqueued_at)
                        - cost_weight * log1p(cost_estimate)

The cost term makes a one-cell interactive query outrank an equal-
priority 250-cell sweep the moment both are queued; the waiting-time
term grows without bound, so any queued job eventually outranks every
freshly-submitted job no matter how cheap — the scheduler cannot
starve (property-tested in ``tests/test_service_scheduler.py``).

Admission picks the highest effective priority *strictly*: when the
top job does not fit the remaining **compute budget** (the sum of
running jobs' cost estimates), nothing is admitted until capacity
frees up. Backfilling a cheaper job past the head would re-open the
starvation hole the aging term closes. A job larger than the whole
budget still runs — alone — once it reaches the head and the machine
drains.

Per-client **token buckets** bound the submission rate, so one
misbehaving client cannot monopolise the queue; rejected submissions
raise :class:`RateLimited` (HTTP 429 at the API layer).

The scheduler is synchronous and clock-injected: the asyncio app
drives it from worker tasks, and the tests drive it from a fake
clock.
"""

from __future__ import annotations

import json
import math
import os
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

#: Fallbacks when no benchmark baseline file is readable: the
#: committed BENCH_core/BENCH_vector geomeans as of PR 7, rounded
#: down (pessimistic costs only delay admission, never break it).
DEFAULT_KIPS = {"reference": 40.0, "vector": 90.0}


def _bench_root() -> str:
    here = os.path.dirname(os.path.abspath(__file__))
    return os.path.join(
        os.path.dirname(os.path.dirname(os.path.dirname(here))),
        "benchmarks",
    )


@dataclass(frozen=True)
class CostModel:
    """Estimated simulation seconds per job, from calibrated KIPS."""

    kips: Dict[str, float] = field(
        default_factory=lambda: dict(DEFAULT_KIPS)
    )

    @classmethod
    def from_bench_files(cls, root: Optional[str] = None) -> "CostModel":
        """Calibrate from the committed KIPS baselines.

        Reads ``BENCH_core.json`` (reference backend) and
        ``BENCH_vector.json`` (vector backend) under *root* (default:
        the repo's ``benchmarks/``). Unreadable or malformed files
        fall back to :data:`DEFAULT_KIPS` — a service node must boot
        off-repo too.
        """
        root = root or _bench_root()
        kips = dict(DEFAULT_KIPS)
        for backend, filename in (
            ("reference", "BENCH_core.json"),
            ("vector", "BENCH_vector.json"),
        ):
            value = _geomean_kips(os.path.join(root, filename))
            if value:
                kips[backend] = value
        return cls(kips=kips)

    def kips_for(self, backend: Optional[str]) -> float:
        return self.kips.get(backend or "reference",
                             self.kips["reference"])

    def estimate(self, spec) -> float:
        """Seconds to simulate *spec* cold (no caches).

        ``trace_length × n_cells / KIPS``; an upper bound in practice
        (store and memo hits only make jobs cheaper), which is the
        right bias for admission control.
        """
        instructions = (spec.timing + spec.warmup) * spec.n_cells
        return instructions / (1000.0 * self.kips_for(spec.backend))


def _geomean_kips(path: str) -> Optional[float]:
    """Geometric-mean KIPS over a BENCH file's baseline cells."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            doc = json.load(handle)
        cells = doc["baseline"]["cells"]
        values = [
            float(cell["kips"]) for cell in cells.values()
            if float(cell.get("kips", 0)) > 0
        ]
    except (OSError, ValueError, KeyError, TypeError, AttributeError):
        return None
    if not values:
        return None
    return math.exp(sum(math.log(v) for v in values) / len(values))


class RateLimited(Exception):
    """A client exceeded its submission rate limit."""

    def __init__(self, client: str, retry_after: float) -> None:
        super().__init__(
            f"client {client!r} rate-limited; retry in "
            f"{retry_after:.1f}s"
        )
        self.client = client
        self.retry_after = retry_after


class _TokenBucket:
    """Classic token bucket: *rate* tokens/s, *burst* capacity."""

    def __init__(self, rate: float, burst: float, now: float) -> None:
        self.rate = rate
        self.burst = burst
        self.tokens = burst
        self.updated = now

    def try_take(self, now: float) -> Optional[float]:
        """``None`` on success, else seconds until a token exists."""
        self.tokens = min(
            self.burst, self.tokens + (now - self.updated) * self.rate
        )
        self.updated = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return None
        return (1.0 - self.tokens) / self.rate if self.rate else 60.0


class AdmissionScheduler:
    """Effective-priority admission under a compute budget.

    Jobs are any objects with ``id``, ``priority``, ``client``,
    ``cost_estimate`` and ``enqueued_at`` attributes
    (:class:`repro.service.jobs.Job` in production, stubs in tests).
    """

    def __init__(
        self,
        *,
        compute_budget: float = 60.0,
        aging_rate: float = 0.5,
        cost_weight: float = 1.0,
        rate: Optional[float] = None,
        burst: float = 10.0,
        clock=time.monotonic,
    ) -> None:
        if compute_budget <= 0:
            raise ValueError("compute_budget must be positive")
        if aging_rate <= 0:
            # A zero aging rate voids the no-starvation guarantee;
            # refuse rather than silently degrade.
            raise ValueError("aging_rate must be positive")
        self.compute_budget = compute_budget
        self.aging_rate = aging_rate
        self.cost_weight = cost_weight
        self.rate = rate
        self.burst = burst
        self.clock = clock
        self._queue: List = []
        self._running: Dict[str, float] = {}
        self._buckets: Dict[str, _TokenBucket] = {}
        self.admitted = 0
        self.rejected = 0

    # -- submission ----------------------------------------------------------

    def check_rate(self, client: str) -> None:
        """Charge one submission to *client*'s bucket.

        Raises :class:`RateLimited` when the bucket is empty. With no
        configured rate the check is free.
        """
        if self.rate is None:
            return
        now = self.clock()
        bucket = self._buckets.get(client)
        if bucket is None:
            bucket = self._buckets[client] = _TokenBucket(
                self.rate, self.burst, now
            )
        retry_after = bucket.try_take(now)
        if retry_after is not None:
            self.rejected += 1
            raise RateLimited(client, retry_after)

    def submit(self, job) -> None:
        """Queue *job* for admission (rate checks are separate)."""
        if job.enqueued_at is None:
            job.enqueued_at = self.clock()
        self._queue.append(job)

    def withdraw(self, job) -> bool:
        """Remove a queued job (coalesced away or cancelled)."""
        try:
            self._queue.remove(job)
            return True
        except ValueError:
            return False

    # -- admission -----------------------------------------------------------

    def effective_priority(self, job, now: Optional[float] = None) -> float:
        now = self.clock() if now is None else now
        enqueued = job.enqueued_at if job.enqueued_at is not None else now
        waiting = max(0.0, now - enqueued)
        return (
            job.priority
            + self.aging_rate * waiting
            - self.cost_weight * math.log1p(max(0.0, job.cost_estimate))
        )

    @property
    def running_cost(self) -> float:
        return sum(self._running.values())

    def next_admissible(self):
        """Pop and return the job to run now, or ``None``.

        Strict head-of-line: the highest effective priority either
        fits ``compute_budget - running_cost`` (or the machine is
        idle) and is admitted, or nothing is.
        """
        if not self._queue:
            return None
        now = self.clock()
        head = max(
            self._queue, key=lambda job: self.effective_priority(job, now)
        )
        fits = (
            not self._running
            or self.running_cost + head.cost_estimate
            <= self.compute_budget
        )
        if not fits:
            return None
        self._queue.remove(head)
        self._running[head.id] = head.cost_estimate
        self.admitted += 1
        return head

    def release(self, job) -> None:
        """A previously-admitted job finished; free its budget."""
        self._running.pop(job.id, None)

    # -- introspection -------------------------------------------------------

    def queue_depth(self) -> int:
        return len(self._queue)

    def queued(self) -> Iterable:
        return tuple(self._queue)

    def running_count(self) -> int:
        return len(self._running)

    def snapshot(self) -> dict:
        now = self.clock()
        return {
            "queue_depth": len(self._queue),
            "running": len(self._running),
            "running_cost": self.running_cost,
            "compute_budget": self.compute_budget,
            "admitted": self.admitted,
            "rate_rejected": self.rejected,
            "queued": [
                {
                    "id": job.id,
                    "effective_priority": self.effective_priority(
                        job, now
                    ),
                    "cost_estimate": job.cost_estimate,
                }
                for job in self._queue
            ],
        }
