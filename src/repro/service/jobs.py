"""Job lifecycle, execution and queue persistence.

A :class:`Job` wraps a :class:`~repro.service.protocol.JobSpec` with
scheduling state (timestamps, cost estimate), an append-only progress
event buffer (the job's private telemetry stream, long-polled by
clients) and its terminal payload or error.

Execution rides entirely on the existing harness:

* :func:`probe` answers a job instantly when **every** cell is
  already in the in-process memo or the persistent result store —
  such jobs never touch the scheduler.
* :func:`execute` drives :func:`~repro.experiments.runner.run_benchmark`
  for cells and :func:`~repro.experiments.parallel.run_matrix_parallel`
  for sweeps (inheriting its shard timeout/retry/serial-fallback
  fault tolerance), forwarding every telemetry event into the job's
  buffer via :class:`CallbackWriter`.

Result payloads are ``{"results": {config_label: {benchmark:
record}}}`` where each record is the store's lossless
:func:`~repro.experiments.export.result_to_record` form, stamped with
the serving job's id. The stamp lives only on the wire copy — cached
and stored results are never mutated, so the store's content keys and
the bit-identical-to-CLI guarantee are untouched.

The registry persists **queued** work on drain (``queue.json``,
atomic write) and resubmits it on the next boot — a SIGTERM'd node
loses nothing but its in-flight progress streams.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
import uuid
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.experiments.telemetry import TelemetryWriter
from repro.service.protocol import JobSpec


class JobState:
    """Lifecycle states (terminal: DONE / FAILED)."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    COALESCED = "coalesced"

    ALL = (QUEUED, RUNNING, DONE, FAILED, COALESCED)
    TERMINAL = (DONE, FAILED)


def new_job_id() -> str:
    return f"job-{uuid.uuid4().hex[:12]}"


@dataclass
class Job:
    """One submission's full lifecycle."""

    spec: JobSpec
    id: str = field(default_factory=new_job_id)
    state: str = JobState.QUEUED
    cost_estimate: float = 0.0
    #: Mutable copy of the spec's priority: coalescing may boost a
    #: queued primary to its hottest follower's priority.
    priority: float = 0.0
    submitted_at: float = field(default_factory=time.time)
    #: Monotonic clock reading used by the scheduler's aging term.
    enqueued_at: Optional[float] = None
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    #: Where the payload came from: "store", "executed", "coalesced".
    served_from: Optional[str] = None
    coalesced_into: Optional[str] = None
    error: Optional[str] = None
    result: Optional[dict] = None
    events: List[dict] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.priority = self.spec.priority

    @property
    def client(self) -> str:
        return self.spec.client

    def push_event(self, record: dict) -> None:
        self.events.append(record)

    def status_wire(self) -> dict:
        """The job-status wire document (``schemas/…`` "status")."""
        return {
            "id": self.id,
            "state": self.state,
            "spec": self.spec.to_wire(),
            "priority": self.priority,
            "client": self.client,
            "cost_estimate": self.cost_estimate,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "served_from": self.served_from,
            "coalesced_into": self.coalesced_into,
            "error": self.error,
            "events": len(self.events),
        }


class JobRegistry:
    """Every job this service process has seen, by id."""

    def __init__(self) -> None:
        self._jobs: Dict[str, Job] = {}

    def add(self, job: Job) -> Job:
        self._jobs[job.id] = job
        return job

    def get(self, job_id: str) -> Optional[Job]:
        return self._jobs.get(job_id)

    def jobs(self) -> List[Job]:
        return list(self._jobs.values())

    def by_state(self, state: str) -> List[Job]:
        return [j for j in self._jobs.values() if j.state == state]

    def counts(self) -> Dict[str, int]:
        counts = {state: 0 for state in JobState.ALL}
        for job in self._jobs.values():
            counts[job.state] = counts.get(job.state, 0) + 1
        return counts

    # -- persistence ---------------------------------------------------------

    def persist_queue(self, path: str) -> int:
        """Atomically write every queued job's spec to *path*.

        Returns how many were persisted. Coalesced followers whose
        primary has not finished are persisted too (their promised
        execution dies with this process); terminal and running jobs
        are not — running work completes before drain finishes.
        """
        entries = []
        for job in self._jobs.values():
            if job.state == JobState.QUEUED or (
                job.state == JobState.COALESCED
                and job.result is None and job.error is None
            ):
                entries.append({"id": job.id, "spec": job.spec.to_wire()})
        doc = {"version": 1, "queued": entries}
        directory = os.path.dirname(path) or "."
        os.makedirs(directory, exist_ok=True)
        fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(doc, handle, indent=2, sort_keys=True)
                handle.write("\n")
            os.replace(tmp_path, path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
        return len(entries)

    @staticmethod
    def load_queue(path: str) -> List[Job]:
        """Recover persisted jobs (empty on missing/corrupt file).

        The file is consumed: a successfully-read queue is unlinked
        so a crash loop cannot double-submit recovered work.
        """
        try:
            with open(path, "r", encoding="utf-8") as handle:
                doc = json.load(handle)
            entries = doc["queued"]
        except (OSError, ValueError, KeyError, TypeError):
            return []
        jobs = []
        for entry in entries:
            try:
                spec = JobSpec.from_wire(entry["spec"])
                jobs.append(Job(spec=spec, id=entry["id"]))
            except Exception:
                # One rotten entry must not poison recovery.
                continue
        try:
            os.unlink(path)
        except OSError:
            pass
        return jobs


# -- execution ----------------------------------------------------------------


class CallbackWriter(TelemetryWriter):
    """A telemetry writer that hands events to a callback.

    Dropped into ``run_matrix_parallel(telemetry=...)`` so a sweep
    job's shard lifecycle streams straight into the job's event
    buffer (and from there to long-polling clients) instead of a
    file.
    """

    def __init__(self, callback: Callable[[dict], None]) -> None:
        super().__init__(None)
        self._callback = callback

    def emit(self, event: str, **fields) -> None:
        record = {"event": event, "ts": time.time()}
        record.update(fields)
        self._callback(record)


def _stamped(result, job_id: str) -> dict:
    """Wire record of *result* carrying the serving job's id.

    ``result_to_record`` copies ``extra``, so the stamp never touches
    the cached/stored object (mirroring how ``extra["backend"]`` and
    ``extra["served_by"]`` are only written on fresh simulations).
    """
    from repro.experiments.export import result_to_record

    record = result_to_record(result)
    record["extra"]["job_id"] = job_id
    return record


def probe(spec: JobSpec, job_id: str) -> Optional[dict]:
    """The full payload if **every** cell is cached, else ``None``.

    Consults the in-process memo first, then the persistent store —
    the same lookup order as ``run_benchmark`` — but never simulates,
    so it is safe to call on the submission path.
    """
    from repro.experiments import runner as _runner
    from repro.experiments.store import active_store

    settings = spec.settings()
    store = active_store()
    results: Dict[str, Dict[str, dict]] = {}
    for label, config in spec.labelled_configs().items():
        row = results.setdefault(label, {})
        config_key = _runner._config_key(config)
        for name in spec.benchmarks:
            key = (name, settings, config_key)
            cached = _runner._result_cache.get(key)
            if cached is None and store is not None:
                cached = store.load(name, settings, config_key)
                if cached is not None:
                    _runner._result_cache[key] = cached
            if cached is None:
                return None
            row[name] = _stamped(cached, job_id)
    return {"results": results}


def execute(
    spec: JobSpec,
    job_id: str,
    emit: Callable[[dict], None],
    *,
    default_backend: Optional[str] = None,
    max_workers: Optional[int] = None,
) -> dict:
    """Run *spec* to completion, streaming telemetry through *emit*.

    Cells run through ``run_benchmark`` (store-aware, memoized);
    sweeps run through ``run_matrix_parallel`` with the spec's worker
    count (capped by *max_workers*) and inherit its timeout/retry/
    serial-fallback fault tolerance. Raises on total failure — e.g. a
    sweep whose every shard died — so the caller can fail the job.
    """
    from repro.experiments.parallel import run_matrix_parallel
    from repro.experiments.runner import run_benchmark

    settings = spec.settings()
    labelled = spec.labelled_configs()
    backend = spec.backend or default_backend
    writer = CallbackWriter(emit)

    if spec.kind == "cell":
        (label, config), = labelled.items()
        (name,) = spec.benchmarks
        writer.emit("cell_start", benchmark=name, config=label)
        result = run_benchmark(name, config, settings, backend)
        writer.emit("cell_finish", benchmark=name, config=label,
                    cycles=result.cycles, ipc=result.ipc)
        return {"results": {label: {name: _stamped(result, job_id)}}}

    workers = spec.workers
    if max_workers is not None:
        workers = min(workers, max_workers)
    out = run_matrix_parallel(
        list(spec.benchmarks), labelled, settings,
        workers=workers, telemetry=writer, backend=backend,
    )
    if not any(cells for cells in out.values()):
        raise RuntimeError("sweep produced no results (all shards failed)")
    return {
        "results": {
            label: {
                name: _stamped(result, job_id)
                for name, result in cells.items()
            }
            for label, cells in out.items()
        }
    }
