"""Always-on experiment service (``repro serve`` / ``repro submit``).

The batch CLI answers one sweep per invocation; this package turns
the same machinery into a long-running multi-tenant service. Jobs —
single (benchmark, configuration) cells or whole sweeps — arrive over
a stdlib-only HTTP/JSON API and flow through three layers:

* :mod:`repro.service.scheduler` — cost-aware admission: each job's
  compute cost is estimated from its trace length and cell count
  (calibrated against the committed KIPS baselines), and an effective
  priority blending client priority, cost and waiting time decides
  what runs next under a configurable compute budget. Cheap
  interactive queries overtake bulk sweeps; the waiting-time term
  guarantees no admitted job starves.
* :mod:`repro.service.coalesce` — identical in-flight jobs (same
  content key as the persistent result store) deduplicate to one
  execution whose result fans out to every submitter; cells already
  in the store are served instantly without touching the scheduler.
* :mod:`repro.service.jobs` — execution on the existing
  :func:`~repro.experiments.runner.run_benchmark` /
  :func:`~repro.experiments.parallel.run_matrix_parallel` machinery,
  streaming per-shard progress to clients as
  :mod:`repro.experiments.telemetry` events.

:mod:`repro.service.app` hosts it all on an asyncio server with
graceful SIGTERM drain (running shards finish, the queue persists to
disk and is recovered on restart); :mod:`repro.service.client` is the
matching blocking client used by ``repro submit`` / ``repro jobs``
and the CI smoke test. See ``docs/SERVICE.md``.
"""

from repro.service.coalesce import CoalesceTable
from repro.service.jobs import Job, JobRegistry, JobState
from repro.service.protocol import (
    JobSpec,
    ProtocolError,
    validate_spec,
    validate_status,
)
from repro.service.scheduler import (
    AdmissionScheduler,
    CostModel,
    RateLimited,
)

__all__ = [
    "AdmissionScheduler",
    "CoalesceTable",
    "CostModel",
    "Job",
    "JobRegistry",
    "JobSpec",
    "JobState",
    "ProtocolError",
    "RateLimited",
    "validate_spec",
    "validate_status",
]
