"""Wire format of the experiment service.

One JSON document type per direction:

* a **job spec** (client → server) names the work: a single cell or a
  sweep, as ``benchmarks × configs`` under one
  :class:`~repro.experiments.runner.ExperimentSettings`;
* a **job status** (server → client) is the spec plus lifecycle state,
  timestamps, cost estimate and provenance (store hit / coalesced /
  executed).

Both shapes are described by ``schemas/service_job.schema.json`` and
validated with the dependency-free subset validator from
:mod:`repro.observe.export` — the same contract mechanism CI already
uses for observe summaries. :meth:`JobSpec.from_wire` additionally
canonicalises sugar (a ``cell`` job may say ``benchmark``/``config``
singular) and resolves names against the real config factories, so a
typo'd policy fails at submission, not mid-execution.

The spec's :meth:`~JobSpec.digest` is the coalescing key: two jobs
with the same digest describe byte-identical work (same benchmarks,
same canonical configs, same settings, same backend) and may share one
execution. Priority, client and worker count are deliberately outside
the digest — they shape *scheduling*, not *results*.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.config import (
    SchedulingModel,
    SpeculationPolicy,
    continuous_window_64,
    continuous_window_128,
)
from repro.config.processor import ProcessorConfig
from repro.experiments.runner import ExperimentSettings

#: Supported window presets (mirrors the observe/check CLIs).
_WINDOW_FACTORIES = {64: continuous_window_64, 128: continuous_window_128}

#: Default wire settings (the CLI's ``--quick`` lengths: the service
#: favours interactive latency; callers opt into longer runs).
DEFAULT_TIMING = 6_000
DEFAULT_WARMUP = 4_000


class ProtocolError(ValueError):
    """A job document that cannot describe valid work."""


def _schema_path() -> str:
    here = os.path.dirname(os.path.abspath(__file__))
    return os.path.join(
        os.path.dirname(os.path.dirname(os.path.dirname(here))),
        "schemas", "service_job.schema.json",
    )


def _load_schema(section: str) -> Optional[dict]:
    """One section of the checked-in schema, or ``None`` off-repo."""
    path = os.environ.get("REPRO_SERVICE_SCHEMA") or _schema_path()
    try:
        with open(path, "r", encoding="utf-8") as handle:
            doc = json.load(handle)
        return doc["properties"][section]
    except (OSError, ValueError, KeyError):
        return None


def validate_spec(instance) -> List[str]:
    """Schema errors for a canonical job-spec document (may be [])."""
    return _validate(instance, "spec")


def validate_status(instance) -> List[str]:
    """Schema errors for a job-status document (may be [])."""
    return _validate(instance, "status")


def _validate(instance, section: str) -> List[str]:
    from repro.observe.export import validate_summary

    schema = _load_schema(section)
    if schema is None:
        # Schema file unavailable (installed package outside the
        # repo): semantic checks in from_wire still apply.
        return []
    return validate_summary(instance, schema)


def _canonical_config(doc: dict) -> dict:
    """Normalise and semantically check one config description."""
    if not isinstance(doc, dict):
        raise ProtocolError(f"config must be an object, got {doc!r}")
    unknown = set(doc) - {"scheduling", "policy", "window", "latency"}
    if unknown:
        raise ProtocolError(
            f"unknown config fields: {', '.join(sorted(unknown))}"
        )
    scheduling = doc.get("scheduling", "NAS")
    policy = doc.get("policy", "NAV")
    window = doc.get("window", 128)
    latency = doc.get("latency", 0)
    try:
        SchedulingModel(scheduling)
        SpeculationPolicy(policy)
    except ValueError as exc:
        raise ProtocolError(str(exc)) from None
    if window not in _WINDOW_FACTORIES:
        raise ProtocolError(
            f"unsupported window {window!r} (expected one of "
            f"{sorted(_WINDOW_FACTORIES)})"
        )
    if not isinstance(latency, int) or latency < 0:
        raise ProtocolError(f"latency must be a non-negative int, "
                            f"got {latency!r}")
    return {
        "scheduling": scheduling, "policy": policy,
        "window": window, "latency": latency,
    }


def resolve_config(doc: dict) -> ProcessorConfig:
    """A canonical config dict → the matching preset machine."""
    doc = _canonical_config(doc)
    return _WINDOW_FACTORIES[doc["window"]](
        SchedulingModel(doc["scheduling"]),
        SpeculationPolicy(doc["policy"]),
        addr_scheduler_latency=doc["latency"],
    )


def config_label(doc: dict) -> str:
    """Display label, e.g. ``NAS/NAV@128`` or ``AS/NO+1cy@64``."""
    latency = f"+{doc['latency']}cy" if doc.get("latency") else ""
    return (f"{doc['scheduling']}/{doc['policy']}{latency}"
            f"@{doc['window']}")


@dataclass(frozen=True)
class JobSpec:
    """Canonical description of one service job's work."""

    kind: str = "cell"
    benchmarks: Tuple[str, ...] = ()
    configs: Tuple[dict, ...] = field(default_factory=tuple)
    timing: int = DEFAULT_TIMING
    warmup: int = DEFAULT_WARMUP
    seed: int = 0
    priority: float = 0.0
    client: str = "anon"
    backend: Optional[str] = None
    workers: int = 1

    # -- construction --------------------------------------------------------

    @classmethod
    def from_wire(cls, doc) -> "JobSpec":
        """Parse + canonicalise a submitted job document.

        Raises :class:`ProtocolError` on anything that cannot run:
        unknown fields, unknown benchmarks/policies/backends, empty
        work, non-numeric settings.
        """
        if not isinstance(doc, dict):
            raise ProtocolError("job spec must be a JSON object")
        allowed = {
            "kind", "benchmark", "benchmarks", "config", "configs",
            "settings", "priority", "client", "backend", "workers",
        }
        unknown = set(doc) - allowed
        if unknown:
            raise ProtocolError(
                f"unknown spec fields: {', '.join(sorted(unknown))}"
            )
        kind = doc.get("kind", "cell")
        if kind not in ("cell", "sweep"):
            raise ProtocolError(f"unknown job kind {kind!r}")

        benchmarks = doc.get("benchmarks")
        if benchmarks is None:
            single = doc.get("benchmark")
            benchmarks = [single] if single is not None else []
        if not benchmarks or not all(
            isinstance(b, str) and b for b in benchmarks
        ):
            raise ProtocolError("job names no benchmarks")
        if kind == "cell" and len(benchmarks) != 1:
            raise ProtocolError("a cell job takes exactly one benchmark")

        configs = doc.get("configs")
        if configs is None:
            configs = [doc.get("config") or {}]
        if not configs:
            raise ProtocolError("job names no configurations")
        if kind == "cell" and len(configs) != 1:
            raise ProtocolError("a cell job takes exactly one config")
        configs = tuple(_canonical_config(c) for c in configs)

        settings = doc.get("settings") or {}
        if not isinstance(settings, dict):
            raise ProtocolError("settings must be an object")
        timing = settings.get("timing", DEFAULT_TIMING)
        warmup = settings.get("warmup", DEFAULT_WARMUP)
        seed = settings.get("seed", 0)
        for name, value in (("timing", timing), ("warmup", warmup),
                            ("seed", seed)):
            if not isinstance(value, int) or value < 0:
                raise ProtocolError(
                    f"settings.{name} must be a non-negative int, "
                    f"got {value!r}"
                )
        if timing <= 0:
            raise ProtocolError("settings.timing must be positive")

        backend = doc.get("backend")
        if backend is not None:
            from repro.core.backend import available_backends

            if backend not in available_backends():
                raise ProtocolError(
                    f"unknown backend {backend!r} (available: "
                    f"{', '.join(available_backends())})"
                )

        priority = doc.get("priority", 0.0)
        if not isinstance(priority, (int, float)):
            raise ProtocolError("priority must be a number")
        workers = doc.get("workers", 1)
        if not isinstance(workers, int) or workers < 1:
            raise ProtocolError("workers must be a positive int")
        client = doc.get("client", "anon")
        if not isinstance(client, str) or not client:
            raise ProtocolError("client must be a non-empty string")

        spec = cls(
            kind=kind,
            benchmarks=tuple(benchmarks),
            configs=configs,
            timing=timing,
            warmup=warmup,
            seed=seed,
            priority=float(priority),
            client=client,
            backend=backend,
            workers=workers,
        )
        # Benchmarks resolve lazily at run time in the catalog; check
        # now so a typo is a 400, not a failed job later.
        from repro.workloads.spec95 import ALL_BENCHMARKS
        from repro.workloads.catalog import KERNEL_NAMES

        known = set(ALL_BENCHMARKS) | set(KERNEL_NAMES)
        known |= {name.split(".", 1)[0] for name in ALL_BENCHMARKS}
        for name in spec.benchmarks:
            if name not in known:
                raise ProtocolError(f"unknown benchmark {name!r}")
        return spec

    # -- wire ----------------------------------------------------------------

    def to_wire(self) -> dict:
        """The canonical JSON document (validates against the schema)."""
        return {
            "kind": self.kind,
            "benchmarks": list(self.benchmarks),
            "configs": [dict(c) for c in self.configs],
            "settings": {
                "timing": self.timing,
                "warmup": self.warmup,
                "seed": self.seed,
            },
            "priority": self.priority,
            "client": self.client,
            "backend": self.backend,
            "workers": self.workers,
        }

    # -- derived -------------------------------------------------------------

    @property
    def n_cells(self) -> int:
        return len(self.benchmarks) * len(self.configs)

    def settings(self) -> ExperimentSettings:
        return ExperimentSettings(
            timing_instructions=self.timing,
            warmup_instructions=self.warmup,
            seed=self.seed,
        )

    def labelled_configs(self) -> Dict[str, ProcessorConfig]:
        return {
            config_label(doc): resolve_config(doc)
            for doc in self.configs
        }

    def digest(self) -> str:
        """Coalescing key: SHA-256 over the work (not the scheduling).

        Jobs sharing a digest would produce byte-identical results —
        same cells, same settings, same backend (backends are
        bit-identical, but the *record* they produce stamps its
        producer, so backend stays inside the key).
        """
        identity = [
            self.kind, list(self.benchmarks),
            [sorted(c.items()) for c in self.configs],
            self.timing, self.warmup, self.seed, self.backend,
        ]
        return hashlib.sha256(
            json.dumps(identity, sort_keys=True,
                       separators=(",", ":")).encode("utf-8")
        ).hexdigest()
