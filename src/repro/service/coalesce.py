"""In-flight request coalescing.

The persistent result store already makes *repeated* queries O(1);
this table closes the remaining window — two clients asking for the
same cell **while it is still computing**. The first submission
becomes the *primary* and runs; identical submissions (same
:meth:`~repro.service.protocol.JobSpec.digest`, which for a cell job
is exactly the store's content identity) attach as *followers* and
never reach the scheduler. When the primary finishes, its payload
fans out to every follower; if it fails, the failure fans out too —
a follower is a promise of the primary's outcome, not of a retry.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple


class CoalesceTable:
    """Digest → (primary job id, follower job ids) for in-flight work."""

    def __init__(self) -> None:
        self._inflight: Dict[str, Tuple[str, List[str]]] = {}
        #: Submissions that attached to an existing execution.
        self.hits = 0
        #: Executions that ran on behalf of at least one follower.
        self.fanouts = 0

    def claim(self, key: str, job_id: str) -> Optional[str]:
        """Register *job_id* under *key*.

        Returns ``None`` when *job_id* became the primary (caller
        must schedule it and eventually :meth:`release` the key), or
        the primary's id when it attached as a follower.
        """
        entry = self._inflight.get(key)
        if entry is None:
            self._inflight[key] = (job_id, [])
            return None
        primary, followers = entry
        followers.append(job_id)
        self.hits += 1
        return primary

    def primary(self, key: str) -> Optional[str]:
        entry = self._inflight.get(key)
        return entry[0] if entry else None

    def followers(self, key: str) -> Tuple[str, ...]:
        entry = self._inflight.get(key)
        return tuple(entry[1]) if entry else ()

    def release(self, key: str) -> Tuple[str, ...]:
        """The primary finished: forget *key*, return its followers."""
        entry = self._inflight.pop(key, None)
        if entry is None:
            return ()
        followers = tuple(entry[1])
        if followers:
            self.fanouts += 1
        return followers

    def depth(self) -> int:
        return len(self._inflight)

    def stats(self) -> dict:
        return {
            "inflight": len(self._inflight),
            "coalesce_hits": self.hits,
            "coalesce_fanouts": self.fanouts,
        }
