"""CLI subcommands for the experiment service.

Dispatched from :mod:`repro.experiments.cli` so they are reachable as
``repro serve`` / ``repro submit`` / ``repro jobs`` (and equally
through the legacy ``repro-experiments`` name)::

    repro serve --port 7365 --workers 2 --store ~/.cache/repro-results
    repro submit 126.gcc --policy SYNC --priority 5 --wait
    repro submit --benchmarks 126.gcc 099.go --policies NO NAV ORACLE
    repro jobs                      # recent jobs on the node
    repro jobs JOB_ID --follow      # stream one job's progress
    repro jobs --status             # queue depth / coalesce / budget
    repro jobs --drain              # ask the node to drain
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Optional

#: Default TCP port (chosen to be memorable: 0x1CC5 % 10000).
DEFAULT_PORT = 7365


def service_main(argv) -> int:
    command, rest = argv[0], argv[1:]
    if command == "serve":
        return _serve_main(rest)
    if command == "submit":
        return _submit_main(rest)
    if command == "jobs":
        return _jobs_main(rest)
    print(f"unknown service command {command!r}", file=sys.stderr)
    return 2


def _endpoint_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--host", default="127.0.0.1", help="service host"
    )
    parser.add_argument(
        "--port", type=int, default=DEFAULT_PORT,
        help=f"service port (default {DEFAULT_PORT})",
    )


def _serve_main(argv) -> int:
    import asyncio

    from repro.service.app import ExperimentService, default_state_dir

    parser = argparse.ArgumentParser(
        prog="repro serve",
        description=(
            "Run the always-on experiment service: jobs arrive over "
            "HTTP/JSON, are admitted by a cost-aware scheduler, "
            "coalesce with identical in-flight work, and stream "
            "progress as telemetry events (docs/SERVICE.md)."
        ),
    )
    _endpoint_args(parser)
    parser.add_argument(
        "--state-dir", default=None,
        help="queue persistence + telemetry directory (default: "
             "$REPRO_SERVICE_STATE or ~/.cache/repro-service)",
    )
    parser.add_argument(
        "--workers", type=int, default=2,
        help="concurrent job executions (default 2)",
    )
    parser.add_argument(
        "--sweep-workers", type=int, default=2,
        help="process-pool width available to each sweep job "
             "(default 2)",
    )
    parser.add_argument(
        "--budget", type=float, default=60.0, metavar="SECONDS",
        help="compute budget: max summed cost estimate of running "
             "jobs (default 60)",
    )
    parser.add_argument(
        "--aging-rate", type=float, default=0.5,
        help="effective-priority gain per second of queue waiting "
             "(default 0.5)",
    )
    parser.add_argument(
        "--cost-weight", type=float, default=1.0,
        help="effective-priority penalty weight on log1p(cost) "
             "(default 1.0)",
    )
    parser.add_argument(
        "--rate", type=float, default=None, metavar="PER_SECOND",
        help="per-client submission rate limit (default: unlimited)",
    )
    parser.add_argument(
        "--burst", type=float, default=10.0,
        help="per-client submission burst size (default 10)",
    )
    parser.add_argument(
        "--backend", default=None,
        help="default simulator backend for executed jobs",
    )
    parser.add_argument(
        "--store", metavar="DIR", default=None,
        help="persistent result store (default: $REPRO_RESULT_STORE)",
    )
    parser.add_argument(
        "--trace-store", metavar="DIR", default=None,
        help="persistent trace store (default: $REPRO_TRACE_STORE)",
    )
    parser.add_argument(
        "--telemetry", metavar="FILE", default=None,
        help="service telemetry JSONL (default: "
             "STATE_DIR/service.jsonl; readable with 'repro status')",
    )
    args = parser.parse_args(argv)

    if args.store:
        from repro.experiments.store import set_store

        set_store(args.store)
    if args.trace_store:
        from repro.trace.tracestore import set_trace_store

        set_trace_store(args.trace_store)
    if args.backend:
        from repro.core.backend import resolve_backend

        resolve_backend(args.backend)  # fail fast on typos

    service = ExperimentService(
        args.host, args.port,
        state_dir=args.state_dir,
        workers=args.workers,
        sweep_workers=args.sweep_workers,
        compute_budget=args.budget,
        aging_rate=args.aging_rate,
        cost_weight=args.cost_weight,
        rate=args.rate,
        burst=args.burst,
        backend=args.backend,
        telemetry=args.telemetry,
    )

    async def _main() -> None:
        await service.start()
        print(
            f"repro service listening on "
            f"http://{service.host}:{service.port} "
            f"(state: {service.state_dir}, "
            f"recovered {service.recovered} queued jobs)",
            flush=True,
        )
        import signal

        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(
                    sig,
                    lambda s=sig: asyncio.ensure_future(
                        service.drain(reason=signal.Signals(s).name)
                    ),
                )
            except (NotImplementedError, ValueError, RuntimeError):
                break
        await service.wait_closed()
        print("repro service drained cleanly", flush=True)

    asyncio.run(_main())
    return 0


def _spec_from_args(args) -> dict:
    configs = []
    policies = args.policies or [args.policy]
    for policy in policies:
        configs.append({
            "scheduling": args.scheduling,
            "policy": policy,
            "window": args.window,
            "latency": args.latency,
        })
    benchmarks = args.benchmarks or ([args.benchmark]
                                     if args.benchmark else [])
    kind = (
        "sweep" if len(benchmarks) > 1 or len(configs) > 1 else "cell"
    )
    spec = {
        "kind": kind,
        "benchmarks": benchmarks,
        "configs": configs,
        "settings": {
            "timing": args.timing, "warmup": args.warmup,
            "seed": args.seed,
        },
        "priority": args.priority,
        "client": args.client,
        "workers": args.workers,
    }
    if args.backend:
        spec["backend"] = args.backend
    return spec


def _submit_main(argv) -> int:
    from repro.service.client import ServiceClient, ServiceError

    parser = argparse.ArgumentParser(
        prog="repro submit",
        description="Submit one cell or a sweep to a running service.",
    )
    parser.add_argument(
        "benchmark", nargs="?", default=None,
        help="benchmark for a single-cell job (e.g. 126.gcc)",
    )
    parser.add_argument(
        "--benchmarks", nargs="+", default=None,
        help="benchmarks for a sweep job",
    )
    parser.add_argument(
        "--scheduling", choices=("NAS", "AS"), default="NAS",
    )
    parser.add_argument(
        "--policy", default="NAV",
        choices=("NO", "NAV", "SEL", "STORE", "SYNC", "ORACLE", "SSET"),
    )
    parser.add_argument(
        "--policies", nargs="+", default=None,
        choices=("NO", "NAV", "SEL", "STORE", "SYNC", "ORACLE", "SSET"),
        help="several policies → a sweep over configs",
    )
    parser.add_argument("--window", type=int, choices=(64, 128),
                        default=128)
    parser.add_argument("--latency", type=int, default=0)
    parser.add_argument("--timing", type=int, default=6_000)
    parser.add_argument("--warmup", type=int, default=4_000)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--priority", type=float, default=0.0)
    parser.add_argument("--client", default="cli")
    parser.add_argument("--backend", default=None)
    parser.add_argument(
        "--workers", type=int, default=1,
        help="sweep process-pool width request (server may cap)",
    )
    parser.add_argument(
        "--wait", action="store_true",
        help="block until the job is terminal, then print the result",
    )
    parser.add_argument(
        "--timeout", type=float, default=600.0,
        help="--wait timeout in seconds (default 600)",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="print raw JSON documents instead of a summary",
    )
    _endpoint_args(parser)
    args = parser.parse_args(argv)
    if not args.benchmark and not args.benchmarks:
        parser.error("name a benchmark (positional) or --benchmarks")

    client = ServiceClient(args.host, args.port)
    spec = _spec_from_args(args)
    try:
        status = client.submit(spec)
    except ServiceError as exc:
        print(f"submit failed: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(
            f"cannot reach service at {args.host}:{args.port}: {exc}",
            file=sys.stderr,
        )
        return 1
    if args.json:
        print(json.dumps(status, indent=2, sort_keys=True))
    else:
        print(_summarize_status(status))
    if not args.wait:
        return 0
    try:
        final = client.wait(status["id"], timeout=args.timeout)
    except TimeoutError as exc:
        print(str(exc), file=sys.stderr)
        return 1
    if final["state"] != "done":
        print(f"job {final['id']} {final['state']}: "
              f"{final.get('error')}", file=sys.stderr)
        return 1
    result = client.result(final["id"])
    if args.json:
        print(json.dumps(result, indent=2, sort_keys=True))
    else:
        print(_summarize_result(result))
    return 0


def _summarize_status(status: dict) -> str:
    spec = status.get("spec", {})
    cells = (
        len(spec.get("benchmarks", ())) * len(spec.get("configs", ()))
    )
    served = {
        "store": "served instantly from the result store",
        "executed": "done (executed)",
        "coalesced": "done (result shared from coalesced primary)",
    }
    note = {
        "done": served.get(status.get("served_from"), "done"),
        "coalesced": (
            f"coalesced into {status.get('coalesced_into')}"
        ),
        "queued": "queued for admission",
        "running": "running",
    }.get(status["state"], status["state"])
    return (
        f"{status['id']}: {spec.get('kind', '?')} "
        f"({cells} cells, cost ~{status.get('cost_estimate', 0):.2f}s, "
        f"priority {status.get('priority', 0):g}) — {note}"
    )


def _summarize_result(result: dict) -> str:
    lines = []
    for label, cells in sorted(result.get("results", {}).items()):
        for name, record in sorted(cells.items()):
            cycles = record.get("cycles", 0)
            committed = record.get("committed", 0)
            ipc = committed / cycles if cycles else 0.0
            lines.append(
                f"{name:14s} {label:18s} cycles {cycles:>9,} "
                f"IPC {ipc:.3f}"
            )
    return "\n".join(lines) or "(empty result)"


def _jobs_main(argv) -> int:
    from repro.service.client import ServiceClient, ServiceError

    parser = argparse.ArgumentParser(
        prog="repro jobs",
        description="Inspect a running service's jobs and queue.",
    )
    parser.add_argument(
        "job_id", nargs="?", default=None,
        help="show one job (default: list recent jobs)",
    )
    parser.add_argument(
        "--state", default=None,
        help="filter the listing by state (queued/running/done/…)",
    )
    parser.add_argument("--limit", type=int, default=20)
    parser.add_argument(
        "--follow", action="store_true",
        help="stream the job's progress events until it finishes",
    )
    parser.add_argument(
        "--status", action="store_true", dest="server_status",
        help="show the node's status (queue depth, coalesce, budget)",
    )
    parser.add_argument(
        "--drain", action="store_true",
        help="ask the node to drain gracefully",
    )
    parser.add_argument("--json", action="store_true")
    _endpoint_args(parser)
    args = parser.parse_args(argv)

    client = ServiceClient(args.host, args.port)
    try:
        if args.drain:
            doc = client.drain()
            print(json.dumps(doc, indent=2, sort_keys=True))
            return 0
        if args.server_status:
            doc = client.status()
            if args.json:
                print(json.dumps(doc, indent=2, sort_keys=True))
            else:
                sched = doc["scheduler"]
                coal = doc["coalesce"]
                print(
                    f"uptime {doc['uptime']:.0f}s  "
                    f"workers {doc['workers']}  "
                    f"draining {doc['draining']}"
                )
                print(
                    f"queue depth {sched['queue_depth']}  "
                    f"running {sched['running']} "
                    f"({sched['running_cost']:.1f}s of "
                    f"{sched['compute_budget']:.0f}s budget)"
                )
                print(
                    f"jobs {doc['jobs']}  store-instant "
                    f"{doc['store_instant_hits']}  coalesce hits "
                    f"{coal['coalesce_hits']}"
                )
            return 0
        if args.job_id and args.follow:
            for event in client.stream_events(args.job_id):
                print(json.dumps(event, sort_keys=True))
            final = client.job(args.job_id)
            print(_summarize_status(final))
            return 0 if final["state"] == "done" else 1
        if args.job_id:
            doc = client.job(args.job_id)
            if args.json:
                print(json.dumps(doc, indent=2, sort_keys=True))
            else:
                print(_summarize_status(doc))
            return 0
        jobs = client.jobs(state=args.state, limit=args.limit)
        if args.json:
            print(json.dumps(jobs, indent=2, sort_keys=True))
            return 0
        if not jobs:
            print("no jobs")
            return 0
        for status in jobs:
            age = time.time() - status["submitted_at"]
            print(f"{status['id']}  {status['state']:9s} "
                  f"{age:7.1f}s ago  {_summarize_status(status)}")
        return 0
    except ServiceError as exc:
        print(str(exc), file=sys.stderr)
        return 1
    except OSError as exc:
        print(
            f"cannot reach service at {args.host}:{args.port}: {exc}",
            file=sys.stderr,
        )
        return 1
